#include "index/rtree3.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <limits>
#include <utility>

#include "index/soa_kernel.h"
#include "storage/memory_storage_manager.h"

namespace modb::index {

using geo::Box3;
using storage::kInvalidPageId;

/// Plumbing form of one node entry, used where entries travel between
/// nodes (orphan reinsertion, bulk-load levels). Inside a node, entries
/// live in the structure-of-arrays layout below, not as `Entry` objects.
struct RTree3::Entry {
  Box3 box;
  Value value = 0;
  NodeId child = kInvalidPageId;  // kInvalidPageId for leaf entries
};

/// Node in structure-of-arrays layout: six coordinate arrays plus the word
/// array (`word[i]` is the value of leaf entry `i`, or the child NodeId of
/// internal entry `i`). `child_ptr[i]` caches the resident-mode child
/// pointer so lock-free readers traverse without touching the buffer pool;
/// it is nullptr for leaf entries and outside resident mode.
struct RTree3::Node {
  std::uint32_t level = 0;  // 0 == leaf
  std::vector<double> min_x, min_y, min_t;
  std::vector<double> max_x, max_y, max_t;
  std::vector<std::uint64_t> word;
  std::vector<const Node*> child_ptr;

  bool IsLeaf() const { return level == 0; }
  std::size_t count() const { return word.size(); }

  Box3 BoxAt(std::size_t i) const {
    return Box3(min_x[i], min_y[i], min_t[i], max_x[i], max_y[i], max_t[i]);
  }

  void SetBoxAt(std::size_t i, const Box3& box) {
    min_x[i] = box.min[0];
    min_y[i] = box.min[1];
    min_t[i] = box.min[2];
    max_x[i] = box.max[0];
    max_y[i] = box.max[1];
    max_t[i] = box.max[2];
  }

  void PushEntry(const Box3& box, std::uint64_t w, const Node* ptr) {
    min_x.push_back(box.min[0]);
    min_y.push_back(box.min[1]);
    min_t.push_back(box.min[2]);
    max_x.push_back(box.max[0]);
    max_y.push_back(box.max[1]);
    max_t.push_back(box.max[2]);
    word.push_back(w);
    child_ptr.push_back(ptr);
  }

  void EraseAt(std::size_t i) {
    const auto at = static_cast<std::ptrdiff_t>(i);
    min_x.erase(min_x.begin() + at);
    min_y.erase(min_y.begin() + at);
    min_t.erase(min_t.begin() + at);
    max_x.erase(max_x.begin() + at);
    max_y.erase(max_y.begin() + at);
    max_t.erase(max_t.begin() + at);
    word.erase(word.begin() + at);
    child_ptr.erase(child_ptr.begin() + at);
  }

  void ClearEntries() {
    min_x.clear();
    min_y.clear();
    min_t.clear();
    max_x.clear();
    max_y.clear();
    max_t.clear();
    word.clear();
    child_ptr.clear();
  }

  Box3 ComputeBox() const {
    Box3 box;
    for (std::size_t i = 0; i < count(); ++i) box.Expand(BoxAt(i));
    return box;
  }
};

/// A buffer-pool pin paired with the materialised node it resolves to.
/// Invalid (`node == nullptr`) when the fetch failed — the tree is poisoned
/// by then and the caller bails out.
struct RTree3::Pinned {
  storage::BufferPool::Handle handle;
  Node* node = nullptr;

  explicit operator bool() const { return node != nullptr; }
  void Release() {
    handle.Release();
    node = nullptr;
  }
};

namespace {

constexpr std::size_t kNoSlot = std::numeric_limits<std::size_t>::max();

bool SameBox(const Box3& a, const Box3& b) {
  for (int d = 0; d < 3; ++d) {
    if (a.min[d] != b.min[d] || a.max[d] != b.max[d]) return false;
  }
  return true;
}

// Node page layout (little-endian), unchanged from the array-of-structs
// node representation so old page files decode as-is:
//   u32 level | u64 parent | u32 count |
//   count x { f64 min[3], f64 max[3], u64 word }
// where `word` is the value for leaf entries and the child NodeId for
// internal ones (distinguished by `level`). The parent field is a fossil —
// nodes no longer track parents (mutations carry explicit root-to-leaf
// paths) — so encode writes kInvalidPageId and decode ignores it.
constexpr std::size_t kNodeHeaderBytes = 16;
constexpr std::size_t kEntryBytes = 6 * 8 + 8;

void PutU32(std::string* out, std::uint32_t v) {
  char buf[4];
  buf[0] = static_cast<char>(v & 0xff);
  buf[1] = static_cast<char>((v >> 8) & 0xff);
  buf[2] = static_cast<char>((v >> 16) & 0xff);
  buf[3] = static_cast<char>((v >> 24) & 0xff);
  out->append(buf, 4);
}

void PutU64(std::string* out, std::uint64_t v) {
  PutU32(out, static_cast<std::uint32_t>(v & 0xffffffffu));
  PutU32(out, static_cast<std::uint32_t>(v >> 32));
}

void PutF64(std::string* out, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

std::uint32_t GetU32(std::string_view data, std::size_t pos) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) |
        static_cast<std::uint8_t>(data[pos + static_cast<std::size_t>(i)]);
  }
  return v;
}

std::uint64_t GetU64(std::string_view data, std::size_t pos) {
  const std::uint64_t lo = GetU32(data, pos);
  const std::uint64_t hi = GetU32(data, pos + 4);
  return (hi << 32) | lo;
}

double GetF64(std::string_view data, std::size_t pos) {
  const std::uint64_t bits = GetU64(data, pos);
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

}  // namespace

util::Status RTree3::EncodeNode(const void* object, std::string* out) {
  const auto* node = static_cast<const Node*>(object);
  out->clear();
  out->reserve(kNodeHeaderBytes + node->count() * kEntryBytes);
  PutU32(out, node->level);
  PutU64(out, kInvalidPageId);  // fossil parent field (see layout comment)
  PutU32(out, static_cast<std::uint32_t>(node->count()));
  for (std::size_t i = 0; i < node->count(); ++i) {
    PutF64(out, node->min_x[i]);
    PutF64(out, node->min_y[i]);
    PutF64(out, node->min_t[i]);
    PutF64(out, node->max_x[i]);
    PutF64(out, node->max_y[i]);
    PutF64(out, node->max_t[i]);
    PutU64(out, node->word[i]);
  }
  return util::Status::Ok();
}

util::Result<std::shared_ptr<void>> RTree3::DecodeNode(
    std::string_view bytes) {
  if (bytes.size() < kNodeHeaderBytes) {
    return util::Status::Internal("node page truncated: " +
                                  std::to_string(bytes.size()) + " bytes");
  }
  auto node = std::make_shared<Node>();
  node->level = GetU32(bytes, 0);
  const std::uint32_t count = GetU32(bytes, 12);
  if (bytes.size() != kNodeHeaderBytes + std::size_t{count} * kEntryBytes) {
    return util::Status::Internal(
        "node page size mismatch: " + std::to_string(bytes.size()) +
        " bytes for " + std::to_string(count) + " entries");
  }
  std::size_t pos = kNodeHeaderBytes;
  for (std::uint32_t i = 0; i < count; ++i, pos += kEntryBytes) {
    const Box3 box(GetF64(bytes, pos), GetF64(bytes, pos + 8),
                   GetF64(bytes, pos + 16), GetF64(bytes, pos + 24),
                   GetF64(bytes, pos + 32), GetF64(bytes, pos + 40));
    node->PushEntry(box, GetU64(bytes, pos + 48), nullptr);
  }
  return std::shared_ptr<void>(std::move(node));
}

storage::PageCodec RTree3::NodeCodec() {
  storage::PageCodec codec;
  codec.encode = &RTree3::EncodeNode;
  codec.decode = &RTree3::DecodeNode;
  return codec;
}

RTree3::RTree3() : RTree3(Options{}) {}

RTree3::RTree3(Options options)
    : options_(std::move(options)), ctl_(std::make_shared<ControlBlock>()) {
  assert(options_.max_entries >= 4);
  assert(options_.min_entries >= 2);
  assert(options_.min_entries <= options_.max_entries / 2);

  auto storage = storage::OpenStorage(options_.storage);
  if (storage.ok()) {
    storage_ = std::move(*storage);
  } else {
    Poison(storage.status());
    // Inert backing so the poisoned tree stays safely callable.
    storage_ = std::make_unique<storage::MemoryStorageManager>();
  }
  storage::BufferPoolOptions pool_options;
  pool_options.capacity_pages = options_.storage.pool_pages;
  pool_ = std::make_unique<storage::BufferPool>(storage_.get(), NodeCodec(),
                                                pool_options);
  // An overfull node (max_entries + 1, transiently held between an insert
  // and its split) must still fit a page: it can be evicted and written
  // back while unpinned.
  const std::size_t required =
      kNodeHeaderBytes + (options_.max_entries + 1) * kEntryBytes;
  if (healthy() && storage_->page_payload_size() < required) {
    Poison(util::Status::InvalidArgument(
        "page payload of " + std::to_string(storage_->page_payload_size()) +
        " bytes cannot hold fan-out " + std::to_string(options_.max_entries) +
        " (needs " + std::to_string(required) + ")"));
  }
  // Resident mode requires storage that can neither evict nor fail: node
  // addresses must stay stable for the lifetime of a reader epoch.
  resident_ = options_.concurrent_reads &&
              options_.storage.kind == storage::StorageKind::kMemory &&
              options_.storage.pool_pages == 0 && healthy();
  if (resident_) epochs_ = std::make_unique<epoch::EpochManager>();
  if (healthy()) {
    Pinned root = AllocNode(0);
    if (root) root_ = root.handle.id();
  }
  MaybePublish();
}

RTree3::~RTree3() = default;

RTree3::RTree3(RTree3&& other) noexcept
    : options_(std::move(other.options_)),
      storage_(std::move(other.storage_)),
      pool_(std::move(other.pool_)),
      root_(other.root_),
      size_(other.size_.load(std::memory_order_relaxed)),
      splits_(other.splits_.load(std::memory_order_relaxed)),
      ctl_(std::move(other.ctl_)),
      instruments_(other.instruments_),
      resident_(other.resident_),
      pub_root_(other.pub_root_.load(std::memory_order_relaxed)),
      epochs_(std::move(other.epochs_)),
      fresh_(std::move(other.fresh_)),
      pending_retire_(std::move(other.pending_retire_)),
      retired_(std::move(other.retired_)),
      batch_depth_(other.batch_depth_) {
  other.root_ = kInvalidPageId;
  other.resident_ = false;
  other.pub_root_.store(nullptr, std::memory_order_relaxed);
  other.instruments_ = Instruments{};
}

RTree3& RTree3::operator=(RTree3&& other) noexcept {
  if (this == &other) return *this;
  options_ = std::move(other.options_);
  storage_ = std::move(other.storage_);
  pool_ = std::move(other.pool_);
  root_ = other.root_;
  size_.store(other.size_.load(std::memory_order_relaxed),
              std::memory_order_relaxed);
  splits_.store(other.splits_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
  ctl_ = std::move(other.ctl_);
  instruments_ = other.instruments_;
  resident_ = other.resident_;
  pub_root_.store(other.pub_root_.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
  epochs_ = std::move(other.epochs_);
  fresh_ = std::move(other.fresh_);
  pending_retire_ = std::move(other.pending_retire_);
  retired_ = std::move(other.retired_);
  batch_depth_ = other.batch_depth_;
  other.root_ = kInvalidPageId;
  other.resident_ = false;
  other.pub_root_.store(nullptr, std::memory_order_relaxed);
  other.instruments_ = Instruments{};
  return *this;
}

util::Status RTree3::storage_status() const {
  std::lock_guard<std::mutex> lock(ctl_->mu);
  return ctl_->status;
}

bool RTree3::healthy() const {
  std::lock_guard<std::mutex> lock(ctl_->mu);
  return ctl_->status.ok();
}

void RTree3::Poison(const util::Status& status) const {
  if (status.ok()) return;
  std::lock_guard<std::mutex> lock(ctl_->mu);
  if (ctl_->status.ok()) ctl_->status = status;  // first error wins
  ctl_->poisoned.store(true, std::memory_order_relaxed);
}

RTree3::Pinned RTree3::Pin(NodeId id) const {
  Pinned pinned;
  if (id == kInvalidPageId) {
    Poison(util::Status::Internal("pin of invalid node id"));
    return pinned;
  }
  auto handle = pool_->Fetch(id);
  if (!handle.ok()) {
    Poison(handle.status());
    return pinned;
  }
  pinned.handle = std::move(*handle);
  pinned.node = static_cast<Node*>(pinned.handle.get());
  return pinned;
}

RTree3::Pinned RTree3::AllocNode(std::uint32_t level) {
  Pinned pinned;
  auto node = std::make_shared<Node>();
  node->level = level;
  Node* raw = node.get();
  auto handle = pool_->Create(std::move(node));
  if (!handle.ok()) {
    Poison(handle.status());
    return pinned;
  }
  pinned.handle = std::move(*handle);
  pinned.node = raw;
  if (resident_) fresh_.insert(pinned.handle.id());
  return pinned;
}

void RTree3::RetireOrFree(NodeId id) {
  if (resident_) {
    const auto it = fresh_.find(id);
    if (it == fresh_.end()) {
      // Published: a reader may still traverse it — defer to the epoch
      // scheme (tagged and reclaimed at the next publication).
      pending_retire_.push_back(id);
      return;
    }
    fresh_.erase(it);  // never published; free immediately
  }
  if (util::Status s = pool_->Free(id); !s.ok()) Poison(s);
}

bool RTree3::AppendEntry(Node* node, const Box3& box, std::uint64_t w) {
  const Node* ptr = nullptr;
  if (resident_ && node->level > 0) {
    Pinned child = Pin(static_cast<NodeId>(w));
    if (!child) return false;
    ptr = child.node;
  }
  node->PushEntry(box, w, ptr);
  return true;
}

std::size_t RTree3::FindChildSlot(const Node& node, NodeId child) const {
  for (std::size_t i = 0; i < node.count(); ++i) {
    if (node.word[i] == child) return i;
  }
  Poison(util::Status::Internal("child id missing from parent node"));
  return kNoSlot;
}

void RTree3::Insert(const Box3& box, Value value) {
  assert(!box.Empty());
  if (!healthy()) return;
  Entry entry;
  entry.box = box;
  entry.value = value;
  InsertEntryAtLevel(entry, 0);
  if (healthy()) size_.fetch_add(1, std::memory_order_relaxed);
  MaybePublish();
  SyncMetrics();
}

void RTree3::InsertEntryAtLevel(const Entry& entry, std::size_t level) {
  std::vector<NodeId> path = ChoosePath(entry.box, level);
  if (path.empty()) return;
  MakePathWritable(&path);
  if (!healthy()) return;
  const std::size_t depth = path.size() - 1;
  bool overflow = false;
  {
    Pinned p = Pin(path[depth]);
    if (!p) return;
    if (!AppendEntry(p.node,
                     entry.box,
                     p.node->IsLeaf() ? entry.value : entry.child)) {
      return;
    }
    p.handle.MarkDirty();
    overflow = p.node->count() > options_.max_entries;
  }
  if (overflow) {
    SplitAlongPath(path, depth);
  } else {
    AdjustPathBoxes(path, depth);
  }
}

std::vector<RTree3::NodeId> RTree3::ChoosePath(
    const Box3& box, std::size_t target_level) const {
  std::vector<NodeId> path;
  NodeId id = root_;
  Pinned p = Pin(id);
  if (!p) return {};
  path.push_back(id);
  while (p.node->level > target_level) {
    const Node* node = p.node;
    assert(node->count() > 0);
    const bool children_are_leaves = node->level == 1;
    std::size_t best = 0;
    double best_primary = std::numeric_limits<double>::infinity();
    double best_secondary = std::numeric_limits<double>::infinity();
    double best_tertiary = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < node->count(); ++i) {
      const Box3 ebox = node->BoxAt(i);
      const Box3 grown = ebox.Union(box);
      double primary;
      if (children_are_leaves) {
        // R*: minimise overlap enlargement at the leaf level.
        double overlap_before = 0.0;
        double overlap_after = 0.0;
        for (std::size_t j = 0; j < node->count(); ++j) {
          if (j == i) continue;
          const Box3 other = node->BoxAt(j);
          overlap_before += ebox.OverlapVolume(other);
          overlap_after += grown.OverlapVolume(other);
        }
        primary = overlap_after - overlap_before;
      } else {
        primary = 0.0;  // fall through to volume enlargement
      }
      const double secondary = grown.Volume() - ebox.Volume();
      const double tertiary = ebox.Volume();
      if (primary < best_primary ||
          (primary == best_primary && secondary < best_secondary) ||
          (primary == best_primary && secondary == best_secondary &&
           tertiary < best_tertiary)) {
        best = i;
        best_primary = primary;
        best_secondary = secondary;
        best_tertiary = tertiary;
      }
    }
    id = static_cast<NodeId>(node->word[best]);
    p = Pin(id);
    if (!p) return {};
    path.push_back(id);
  }
  return path;
}

void RTree3::MakePathWritable(std::vector<NodeId>* path) {
  if (!resident_) return;
  for (std::size_t d = 0; d < path->size(); ++d) {
    const NodeId id = (*path)[d];
    if (fresh_.count(id) != 0) continue;  // already private to this write
    Pinned old = Pin(id);
    if (!old) return;
    Pinned clone = AllocNode(old.node->level);
    if (!clone) return;
    const NodeId clone_id = clone.handle.id();
    *clone.node = *old.node;  // copies the SoA arrays and child pointers
    old.Release();
    if (d == 0) {
      root_ = clone_id;
    } else {
      // The parent was processed in an earlier iteration, so it is fresh
      // and safe to patch in place.
      Pinned parent = Pin((*path)[d - 1]);
      if (!parent) return;
      const std::size_t slot = FindChildSlot(*parent.node, id);
      if (slot == kNoSlot) return;
      parent.node->word[slot] = clone_id;
      parent.node->child_ptr[slot] = clone.node;
      parent.handle.MarkDirty();
    }
    pending_retire_.push_back(id);
    (*path)[d] = clone_id;
  }
}

void RTree3::SplitAlongPath(std::vector<NodeId>& path, std::size_t depth) {
  struct SplitEntry {
    Box3 box;
    std::uint64_t word = 0;
    const Node* child_ptr = nullptr;
  };
  while (healthy()) {
    splits_.fetch_add(1, std::memory_order_relaxed);
    const NodeId node_id = path[depth];
    bool parent_overflow = false;
    {
      Pinned p = Pin(node_id);
      if (!p) return;
      Node* node = p.node;

      // R* split: choose the axis with the minimal total margin over all
      // candidate distributions, then the distribution with minimal overlap
      // (ties broken by total volume).
      const std::size_t total = node->count();
      const std::size_t min_e = options_.min_entries;
      assert(total > options_.max_entries);

      std::vector<SplitEntry> all(total);
      for (std::size_t i = 0; i < total; ++i) {
        all[i] = {node->BoxAt(i), node->word[i], node->child_ptr[i]};
      }

      std::vector<std::size_t> order(total);
      std::vector<std::size_t> best_order;
      std::size_t best_split_at = min_e;
      double best_margin_for_axis = std::numeric_limits<double>::infinity();

      // For each axis and each of the two sortings (by min, by max),
      // evaluate every legal split position.
      for (int axis = 0; axis < 3; ++axis) {
        for (int by_max = 0; by_max < 2; ++by_max) {
          for (std::size_t i = 0; i < total; ++i) order[i] = i;
          std::sort(order.begin(), order.end(),
                    [&](std::size_t a, std::size_t b) {
                      const Box3& ba = all[a].box;
                      const Box3& bb = all[b].box;
                      return by_max ? ba.max[axis] < bb.max[axis]
                                    : ba.min[axis] < bb.min[axis];
                    });
          // Prefix / suffix boxes for O(n) margin evaluation per sorting.
          std::vector<Box3> prefix(total);
          std::vector<Box3> suffix(total);
          Box3 acc;
          for (std::size_t i = 0; i < total; ++i) {
            acc.Expand(all[order[i]].box);
            prefix[i] = acc;
          }
          acc = Box3();
          for (std::size_t i = total; i-- > 0;) {
            acc.Expand(all[order[i]].box);
            suffix[i] = acc;
          }
          double margin_sum = 0.0;
          double axis_best_overlap = std::numeric_limits<double>::infinity();
          double axis_best_volume = std::numeric_limits<double>::infinity();
          std::size_t axis_best_split = min_e;
          for (std::size_t k = min_e; k + min_e <= total; ++k) {
            const Box3& left = prefix[k - 1];
            const Box3& right = suffix[k];
            margin_sum += left.Margin() + right.Margin();
            const double overlap = left.OverlapVolume(right);
            const double volume = left.Volume() + right.Volume();
            if (overlap < axis_best_overlap ||
                (overlap == axis_best_overlap &&
                 volume < axis_best_volume)) {
              axis_best_overlap = overlap;
              axis_best_volume = volume;
              axis_best_split = k;
            }
          }
          if (margin_sum < best_margin_for_axis) {
            best_margin_for_axis = margin_sum;
            best_order = order;
            best_split_at = axis_best_split;
          }
        }
      }

      // Move the second group into a fresh sibling.
      Pinned sibling = AllocNode(node->level);
      if (!sibling) return;
      const NodeId sibling_id = sibling.handle.id();
      node->ClearEntries();
      for (std::size_t i = 0; i < total; ++i) {
        const SplitEntry& e = all[best_order[i]];
        Node* target = i < best_split_at ? node : sibling.node;
        target->PushEntry(e.box, e.word, e.child_ptr);
      }
      p.handle.MarkDirty();  // sibling was created dirty

      if (depth == 0) {
        // Split of the root: grow the tree by one level.
        Pinned new_root = AllocNode(node->level + 1);
        if (!new_root) return;
        new_root.node->PushEntry(node->ComputeBox(), node_id,
                                 resident_ ? node : nullptr);
        new_root.node->PushEntry(sibling.node->ComputeBox(), sibling_id,
                                 resident_ ? sibling.node : nullptr);
        root_ = new_root.handle.id();
        return;
      }

      // Refresh the split node's entry box in the parent and add the
      // sibling. The parent is on the (already writable) path.
      Pinned parent = Pin(path[depth - 1]);
      if (!parent) return;
      const std::size_t slot = FindChildSlot(*parent.node, node_id);
      if (slot == kNoSlot) return;
      parent.node->SetBoxAt(slot, node->ComputeBox());
      parent.node->PushEntry(sibling.node->ComputeBox(), sibling_id,
                             resident_ ? sibling.node : nullptr);
      parent.handle.MarkDirty();
      parent_overflow = parent.node->count() > options_.max_entries;
    }
    if (parent_overflow) {
      --depth;
      continue;
    }
    AdjustPathBoxes(path, depth - 1);
    return;
  }
}

void RTree3::AdjustPathBoxes(const std::vector<NodeId>& path,
                             std::size_t depth) {
  // Refresh the stored bounding box of every path node from `depth` up in
  // its parent (path[d-1] is always the parent of path[d]).
  for (std::size_t d = depth; d >= 1 && healthy(); --d) {
    Box3 box;
    {
      Pinned p = Pin(path[d]);
      if (!p) return;
      box = p.node->ComputeBox();
    }
    Pinned parent = Pin(path[d - 1]);
    if (!parent) return;
    const std::size_t slot = FindChildSlot(*parent.node, path[d]);
    if (slot == kNoSlot) return;
    parent.node->SetBoxAt(slot, box);
    parent.handle.MarkDirty();
  }
}

bool RTree3::FindRemovePath(NodeId id, const Box3& box, Value value,
                            std::vector<NodeId>* path,
                            std::size_t* entry_index) const {
  path->push_back(id);
  {
    Pinned p = Pin(id);
    if (p) {
      if (p.node->IsLeaf()) {
        for (std::size_t i = 0; i < p.node->count(); ++i) {
          if (p.node->word[i] == value && SameBox(p.node->BoxAt(i), box)) {
            *entry_index = i;
            return true;
          }
        }
      } else {
        // Collect matching children first so the recursion below runs with
        // this node's pin released (tiny paged pools hold few frames).
        std::vector<NodeId> matches;
        for (std::size_t i = 0; i < p.node->count(); ++i) {
          if (p.node->BoxAt(i).Intersects(box)) {
            matches.push_back(static_cast<NodeId>(p.node->word[i]));
          }
        }
        p.Release();
        for (const NodeId child : matches) {
          if (FindRemovePath(child, box, value, path, entry_index)) {
            return true;
          }
        }
      }
    }
  }
  path->pop_back();
  return false;
}

bool RTree3::Remove(const Box3& box, Value value) {
  if (!healthy()) return false;
  std::vector<NodeId> path;
  std::size_t entry_index = 0;
  if (!FindRemovePath(root_, box, value, &path, &entry_index)) return false;
  if (!healthy()) return false;

  MakePathWritable(&path);
  if (!healthy()) return false;
  {
    Pinned leaf = Pin(path.back());
    if (!leaf) return false;
    leaf.node->EraseAt(entry_index);
    leaf.handle.MarkDirty();
  }
  size_.fetch_sub(1, std::memory_order_relaxed);

  std::vector<Entry> orphans;
  CondenseAlongPath(path, &orphans);

  // Shrink the root while it has a single child.
  while (healthy()) {
    NodeId child_id = kInvalidPageId;
    {
      Pinned root = Pin(root_);
      if (!root) break;
      if (root.node->IsLeaf() || root.node->count() != 1) break;
      child_id = static_cast<NodeId>(root.node->word[0]);
    }
    const NodeId old_root = root_;
    root_ = child_id;
    RetireOrFree(old_root);
  }

  // Reinsert orphaned subtrees / leaf entries at their original level.
  for (const Entry& orphan : orphans) {
    if (!healthy()) break;
    std::size_t level = 0;
    if (orphan.child != kInvalidPageId) {
      Pinned child = Pin(orphan.child);
      if (!child) break;
      level = child.node->level + 1;
    }
    InsertEntryAtLevel(orphan, level);
  }
  MaybePublish();
  SyncMetrics();
  return true;
}

void RTree3::CondenseAlongPath(const std::vector<NodeId>& path,
                               std::vector<Entry>* orphans) {
  // Bottom-up along the recorded (writable) path; the root never condenses.
  for (std::size_t d = path.size(); d-- > 1;) {
    if (!healthy()) return;
    const NodeId id = path[d];
    bool underfull = false;
    Box3 box;
    {
      Pinned p = Pin(id);
      if (!p) return;
      underfull = p.node->count() < options_.min_entries;
      if (underfull) {
        // Orphan the whole underfull node's entries for reinsertion.
        for (std::size_t i = 0; i < p.node->count(); ++i) {
          Entry e;
          e.box = p.node->BoxAt(i);
          if (p.node->IsLeaf()) {
            e.value = p.node->word[i];
          } else {
            e.child = static_cast<NodeId>(p.node->word[i]);
          }
          orphans->push_back(e);
        }
      } else {
        box = p.node->ComputeBox();
      }
    }
    {
      Pinned parent = Pin(path[d - 1]);
      if (!parent) return;
      const std::size_t slot = FindChildSlot(*parent.node, id);
      if (slot == kNoSlot) return;
      if (underfull) {
        parent.node->EraseAt(slot);
      } else {
        parent.node->SetBoxAt(slot, box);
      }
      parent.handle.MarkDirty();
    }
    if (underfull) RetireOrFree(id);
  }
}

RTree3::NodeId RTree3::BuildPacked(std::vector<Entry>* level_entries) {
  // Pack one level of entries into nodes using Sort-Tile-Recursive: sort
  // by x-center into vertical slices, each slice by y-center into runs,
  // each run by t-center, then chunk into nodes of max_entries.
  std::uint32_t level = 0;
  while (healthy()) {
    const std::size_t n = level_entries->size();
    if (n <= options_.max_entries) {
      // The remaining entries fit in the root.
      Pinned root = AllocNode(level);
      if (!root) return kInvalidPageId;
      for (const Entry& e : *level_entries) {
        if (!AppendEntry(root.node, e.box, level == 0 ? e.value : e.child)) {
          return kInvalidPageId;
        }
      }
      return root.handle.id();
    }

    const std::size_t num_nodes =
        (n + options_.max_entries - 1) / options_.max_entries;
    const auto tiles = static_cast<std::size_t>(
        std::ceil(std::cbrt(static_cast<double>(num_nodes))));
    const std::size_t slice_x = (n + tiles - 1) / tiles;

    auto center_less = [&](int dim) {
      return [dim](const Entry& a, const Entry& b) {
        return a.box.CenterDim(dim) < b.box.CenterDim(dim);
      };
    };
    std::sort(level_entries->begin(), level_entries->end(), center_less(0));
    for (std::size_t x0 = 0; x0 < n; x0 += slice_x) {
      const std::size_t x1 = std::min(x0 + slice_x, n);
      std::sort(level_entries->begin() + static_cast<std::ptrdiff_t>(x0),
                level_entries->begin() + static_cast<std::ptrdiff_t>(x1),
                center_less(1));
      const std::size_t slice_y = (x1 - x0 + tiles - 1) / tiles;
      for (std::size_t y0 = x0; y0 < x1; y0 += slice_y) {
        const std::size_t y1 = std::min(y0 + slice_y, x1);
        std::sort(level_entries->begin() + static_cast<std::ptrdiff_t>(y0),
                  level_entries->begin() + static_cast<std::ptrdiff_t>(y1),
                  center_less(2));
      }
    }

    // Chunk into nodes; rebalance the tail so no node is underfull.
    std::vector<Entry> next_level;
    next_level.reserve(num_nodes);
    std::size_t pos = 0;
    while (pos < n) {
      std::size_t take = std::min(options_.max_entries, n - pos);
      const std::size_t remaining_after = n - pos - take;
      if (remaining_after > 0 && remaining_after < options_.min_entries) {
        // Shrink this node so the final one meets the minimum.
        take -= options_.min_entries - remaining_after;
      }
      Pinned node = AllocNode(level);
      if (!node) return kInvalidPageId;
      const NodeId node_id = node.handle.id();
      for (std::size_t i = 0; i < take; ++i, ++pos) {
        const Entry& e = (*level_entries)[pos];
        if (!AppendEntry(node.node, e.box, level == 0 ? e.value : e.child)) {
          return kInvalidPageId;
        }
      }
      Entry parent_entry;
      parent_entry.box = node.node->ComputeBox();
      parent_entry.child = node_id;
      next_level.push_back(parent_entry);
    }
    *level_entries = std::move(next_level);
    ++level;
  }
  return kInvalidPageId;
}

void RTree3::BulkLoad(std::vector<std::pair<Box3, Value>> entries) {
  if (resident_ && healthy()) {
    if (entries.empty()) {
      Clear();
      return;
    }
    // Build the packed tree entirely aside (every node fresh), then swap
    // it in with one publication: readers see old contents or new, never
    // a partial load.
    std::vector<Entry> leaf_entries;
    leaf_entries.reserve(entries.size());
    for (auto& [box, value] : entries) {
      Entry e;
      e.box = box;
      e.value = value;
      leaf_entries.push_back(e);
    }
    const NodeId new_root = BuildPacked(&leaf_entries);
    if (new_root == kInvalidPageId || !healthy()) return;
    RetireReachable();
    root_ = new_root;
    size_.store(entries.size(), std::memory_order_relaxed);
    MaybePublish();
    SyncMetrics();
    return;
  }

  Clear();
  if (!healthy() || entries.empty()) return;
  size_.store(entries.size(), std::memory_order_relaxed);
  // Clear() allocated a fresh empty leaf root; the packed tree replaces it.
  const NodeId placeholder_root = root_;
  root_ = kInvalidPageId;
  RetireOrFree(placeholder_root);

  std::vector<Entry> leaf_entries;
  leaf_entries.reserve(entries.size());
  for (auto& [box, value] : entries) {
    Entry e;
    e.box = box;
    e.value = value;
    leaf_entries.push_back(e);
  }
  const NodeId new_root = BuildPacked(&leaf_entries);
  if (new_root != kInvalidPageId) root_ = new_root;
  SyncMetrics();
}

void RTree3::RetireReachable() {
  if (root_ == kInvalidPageId) return;
  std::vector<NodeId> stack = {root_};
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    {
      Pinned p = Pin(id);
      if (!p) return;
      if (!p.node->IsLeaf()) {
        for (std::size_t i = 0; i < p.node->count(); ++i) {
          stack.push_back(static_cast<NodeId>(p.node->word[i]));
        }
      }
    }
    RetireOrFree(id);
  }
  root_ = kInvalidPageId;
}

void RTree3::Publish() {
  if (!resident_) return;
  const Node* root_ptr = nullptr;
  if (healthy() && root_ != kInvalidPageId) {
    Pinned root = Pin(root_);
    if (root) root_ptr = root.node;
  }
  // Order matters (see epoch.h): publish the new root, then tag the pages
  // the write unlinked with the pre-advance epoch, then advance. A reader
  // announcing the advanced epoch is guaranteed to observe this root; a
  // reader still on an older epoch pins MinActive() at or below the tag.
  pub_root_.store(root_ptr, std::memory_order_seq_cst);
  const std::uint64_t tag = epochs_->current();
  retired_.reserve(retired_.size() + pending_retire_.size());
  for (const NodeId id : pending_retire_) retired_.push_back({tag, id});
  pending_retire_.clear();
  fresh_.clear();
  epochs_->Advance();
  ReclaimRetired();
}

void RTree3::MaybePublish() {
  if (resident_ && batch_depth_ == 0) Publish();
}

void RTree3::ReclaimRetired() {
  if (retired_.empty()) return;
  const std::uint64_t min_active = epochs_->MinActive();
  std::size_t kept = 0;
  for (const RetiredPage& page : retired_) {
    if (page.tag < min_active) {
      if (util::Status s = pool_->Free(page.id); !s.ok()) Poison(s);
    } else {
      retired_[kept++] = page;
    }
  }
  retired_.resize(kept);
}

void RTree3::BeginWriteBatch() {
  if (resident_) ++batch_depth_;
}

void RTree3::EndWriteBatch() {
  if (!resident_) return;
  assert(batch_depth_ > 0);
  if (batch_depth_ > 0) --batch_depth_;
  if (batch_depth_ == 0) Publish();
}

void RTree3::Search(const Box3& query, const Visitor& visitor) const {
  // An empty query intersects nothing (Box3::Intersects) — also the
  // kernel's precondition that the query box is non-empty.
  if (query.Empty()) return;
  if (resident_) {
    SearchResident(query, visitor);
  } else {
    SearchPaged(query, visitor);
  }
}

void RTree3::SearchResident(const Box3& query, const Visitor& visitor) const {
  if (ctl_->poisoned.load(std::memory_order_relaxed)) return;
  epoch::ReadGuard guard(*epochs_);
  const Node* root = pub_root_.load(std::memory_order_seq_cst);
  if (root == nullptr) return;
  // Iterative DFS over the immutable snapshot — no locks, no pool, no
  // metrics push (the writer publishes those).
  std::vector<std::uint32_t> hits(options_.max_entries + 1);
  std::vector<const Node*> stack = {root};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    const std::size_t num_hits = soa::IntersectBoxes(
        node->min_x.data(), node->min_y.data(), node->min_t.data(),
        node->max_x.data(), node->max_y.data(), node->max_t.data(),
        node->count(), query, hits.data());
    if (node->IsLeaf()) {
      for (std::size_t h = 0; h < num_hits; ++h) {
        const std::uint32_t i = hits[h];
        visitor(node->BoxAt(i), node->word[i]);
      }
    } else {
      for (std::size_t h = 0; h < num_hits; ++h) {
        stack.push_back(node->child_ptr[hits[h]]);
      }
    }
  }
}

void RTree3::SearchPaged(const Box3& query, const Visitor& visitor) const {
  if (size() == 0 || !healthy()) return;
  // Iterative DFS to avoid recursion-depth concerns on adversarial trees.
  std::vector<std::uint32_t> hits(options_.max_entries + 1);
  std::vector<NodeId> stack = {root_};
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    Pinned p = Pin(id);
    if (!p) return;
    const Node* node = p.node;
    const std::size_t num_hits = soa::IntersectBoxes(
        node->min_x.data(), node->min_y.data(), node->min_t.data(),
        node->max_x.data(), node->max_y.data(), node->max_t.data(),
        node->count(), query, hits.data());
    if (node->IsLeaf()) {
      for (std::size_t h = 0; h < num_hits; ++h) {
        const std::uint32_t i = hits[h];
        visitor(node->BoxAt(i), node->word[i]);
      }
    } else {
      for (std::size_t h = 0; h < num_hits; ++h) {
        stack.push_back(static_cast<NodeId>(node->word[hits[h]]));
      }
    }
  }
  SyncMetrics();
}

std::vector<RTree3::Value> RTree3::SearchValues(const Box3& query) const {
  std::vector<Value> out;
  Search(query, [&out](const Box3&, Value v) { out.push_back(v); });
  return out;
}

std::size_t RTree3::height() const {
  if (!healthy()) return 0;
  Pinned root = Pin(root_);
  if (!root) return 0;
  return root.node->level + 1;
}

std::size_t RTree3::num_nodes() const {
  if (!healthy()) return 0;
  std::size_t count = 0;
  std::vector<NodeId> stack = {root_};
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    Pinned p = Pin(id);
    if (!p) return count;
    ++count;
    if (!p.node->IsLeaf()) {
      for (std::size_t i = 0; i < p.node->count(); ++i) {
        stack.push_back(static_cast<NodeId>(p.node->word[i]));
      }
    }
  }
  return count;
}

void RTree3::Clear() {
  if (resident_ && healthy()) {
    // Copy-on-write clear: retire the whole reachable tree and publish a
    // fresh empty root — safe under concurrent readers.
    RetireReachable();
    size_.store(0, std::memory_order_relaxed);
    Pinned root = AllocNode(0);
    if (root) root_ = root.handle.id();
    MaybePublish();
    SyncMetrics();
    return;
  }
  // Storage-reset clear, which is also the recovery path out of a poison.
  // This drops every page (including ones a reader might hold), so it
  // requires quiesced readers.
  pub_root_.store(nullptr, std::memory_order_seq_cst);
  fresh_.clear();
  pending_retire_.clear();
  retired_.clear();
  if (util::Status s = pool_->DropAll(); !s.ok()) {
    Poison(s);
    return;
  }
  if (util::Status s = storage_->Reset(); !s.ok()) {
    Poison(s);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(ctl_->mu);
    ctl_->status = util::Status::Ok();
    ctl_->poisoned.store(false, std::memory_order_relaxed);
  }
  root_ = kInvalidPageId;
  size_.store(0, std::memory_order_relaxed);
  Pinned root = AllocNode(0);
  if (root) root_ = root.handle.id();
  MaybePublish();
  SyncMetrics();
}

util::Status RTree3::FlushStorage() {
  if (util::Status s = storage_status(); !s.ok()) return s;
  util::Status s = pool_->FlushDirty();
  if (!s.ok()) Poison(s);
  SyncMetrics();
  return s;
}

void RTree3::SetMetrics(util::MetricsRegistry* registry,
                        const std::string& prefix) {
  if (registry == nullptr) {
    // Withdraw this tree's contribution from the (possibly shared) frames
    // gauge so the registry's sums stay correct.
    if (instruments_.frames != nullptr) {
      std::lock_guard<std::mutex> lock(ctl_->mu);
      instruments_.frames->Add(-ctl_->pushed.frames);
      ctl_->pushed.frames = 0;
    }
    instruments_ = Instruments{};
    return;
  }
  instruments_.splits = registry->GetCounter(prefix + "splits");
  instruments_.hits = registry->GetCounter(prefix + "pages.hits");
  instruments_.misses = registry->GetCounter(prefix + "pages.misses");
  instruments_.evictions = registry->GetCounter(prefix + "pages.evictions");
  instruments_.writebacks = registry->GetCounter(prefix + "pages.writebacks");
  instruments_.reads = registry->GetCounter(prefix + "pages.reads");
  instruments_.writes = registry->GetCounter(prefix + "pages.writes");
  instruments_.frames = registry->GetGauge(prefix + "pages.frames");
  SyncMetrics();
}

void RTree3::SyncMetrics() const {
  if (instruments_.splits == nullptr) return;
  const storage::BufferPoolStats pool_stats = pool_->stats();
  const storage::StorageStats storage_stats = storage_->stats();
  const auto frames = static_cast<std::int64_t>(pool_->num_frames());
  const std::uint64_t splits = splits_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(ctl_->mu);
  Pushed& last = ctl_->pushed;
  instruments_.splits->Increment(splits - last.splits);
  last.splits = splits;
  instruments_.hits->Increment(pool_stats.hits - last.hits);
  last.hits = pool_stats.hits;
  instruments_.misses->Increment(pool_stats.misses - last.misses);
  last.misses = pool_stats.misses;
  instruments_.evictions->Increment(pool_stats.evictions - last.evictions);
  last.evictions = pool_stats.evictions;
  instruments_.writebacks->Increment(pool_stats.writebacks - last.writebacks);
  last.writebacks = pool_stats.writebacks;
  instruments_.reads->Increment(storage_stats.page_reads - last.reads);
  last.reads = storage_stats.page_reads;
  instruments_.writes->Increment(storage_stats.page_writes - last.writes);
  last.writes = storage_stats.page_writes;
  instruments_.frames->Add(frames - last.frames);
  last.frames = frames;
}

util::Status RTree3::CheckInvariants() const {
  if (util::Status s = storage_status(); !s.ok()) return s;
  std::size_t leaf_entries = 0;
  util::Status status = util::Status::Ok();

  std::function<void(NodeId, bool)> visit = [&](NodeId id, bool is_root) {
    if (!status.ok()) return;
    Pinned p = Pin(id);
    if (!p) {
      status = storage_status();
      if (status.ok()) status = util::Status::Internal("unpinnable node");
      return;
    }
    const Node* node = p.node;
    if (node->min_x.size() != node->count() ||
        node->min_y.size() != node->count() ||
        node->min_t.size() != node->count() ||
        node->max_x.size() != node->count() ||
        node->max_y.size() != node->count() ||
        node->max_t.size() != node->count() ||
        node->child_ptr.size() != node->count()) {
      status = util::Status::Internal("ragged SoA arrays");
      return;
    }
    if (!is_root && node->count() < options_.min_entries) {
      status = util::Status::Internal("underfull node");
      return;
    }
    if (node->count() > options_.max_entries) {
      status = util::Status::Internal("overfull node");
      return;
    }
    for (std::size_t i = 0; i < node->count(); ++i) {
      if (node->IsLeaf()) {
        ++leaf_entries;
        continue;
      }
      const auto child_id = static_cast<NodeId>(node->word[i]);
      if (child_id == kInvalidPageId) {
        status = util::Status::Internal("missing child");
        return;
      }
      {
        Pinned child = Pin(child_id);
        if (!child) {
          status = storage_status();
          if (status.ok()) status = util::Status::Internal("unpinnable node");
          return;
        }
        if (child.node->level + 1 != node->level) {
          status = util::Status::Internal("level mismatch");
          return;
        }
        if (!SameBox(node->BoxAt(i), child.node->ComputeBox())) {
          status = util::Status::Internal("stale bounding box");
          return;
        }
        if (resident_ && node->child_ptr[i] != child.node) {
          status = util::Status::Internal("stale resident child pointer");
          return;
        }
      }
      visit(child_id, false);
      if (!status.ok()) return;
    }
  };
  visit(root_, true);
  if (status.ok() && leaf_entries != size()) {
    status = util::Status::Internal("size mismatch");
  }
  return status;
}

}  // namespace modb::index
