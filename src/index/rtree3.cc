#include "index/rtree3.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace modb::index {

using geo::Box3;

struct RTree3::Entry {
  Box3 box;
  Value value = 0;
  std::unique_ptr<Node> child;  // null for leaf entries

  bool IsLeafEntry() const { return child == nullptr; }
};

struct RTree3::Node {
  std::size_t level = 0;  // 0 == leaf
  Node* parent = nullptr;
  std::vector<Entry> entries;

  bool IsLeaf() const { return level == 0; }

  Box3 ComputeBox() const {
    Box3 box;
    for (const Entry& e : entries) box.Expand(e.box);
    return box;
  }
};

namespace {

bool SameBox(const Box3& a, const Box3& b) {
  for (int d = 0; d < 3; ++d) {
    if (a.min[d] != b.min[d] || a.max[d] != b.max[d]) return false;
  }
  return true;
}

}  // namespace

RTree3::RTree3() : RTree3(Options{}) {}

RTree3::RTree3(Options options) : options_(options) {
  assert(options_.max_entries >= 4);
  assert(options_.min_entries >= 2);
  assert(options_.min_entries <= options_.max_entries / 2);
  root_ = std::make_unique<Node>();
}

RTree3::~RTree3() = default;
RTree3::RTree3(RTree3&&) noexcept = default;
RTree3& RTree3::operator=(RTree3&&) noexcept = default;

void RTree3::Insert(const Box3& box, Value value) {
  assert(!box.Empty());
  Entry entry;
  entry.box = box;
  entry.value = value;
  InsertEntryAtLevel(std::move(entry), 0);
  ++size_;
}

void RTree3::InsertEntryAtLevel(Entry entry, std::size_t level) {
  Node* node = ChooseSubtree(entry.box, level);
  if (entry.child != nullptr) entry.child->parent = node;
  node->entries.push_back(std::move(entry));
  if (node->entries.size() > options_.max_entries) {
    SplitNode(node);
  } else {
    AdjustUpward(node);
  }
}

RTree3::Node* RTree3::ChooseSubtree(const Box3& box,
                                    std::size_t target_level) const {
  Node* node = root_.get();
  while (node->level > target_level) {
    assert(!node->entries.empty());
    const bool children_are_leaves = node->level == 1;
    std::size_t best = 0;
    double best_primary = std::numeric_limits<double>::infinity();
    double best_secondary = std::numeric_limits<double>::infinity();
    double best_tertiary = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < node->entries.size(); ++i) {
      const Box3& ebox = node->entries[i].box;
      const Box3 grown = ebox.Union(box);
      double primary;
      if (children_are_leaves) {
        // R*: minimise overlap enlargement at the leaf level.
        double overlap_before = 0.0;
        double overlap_after = 0.0;
        for (std::size_t j = 0; j < node->entries.size(); ++j) {
          if (j == i) continue;
          const Box3& other = node->entries[j].box;
          overlap_before += ebox.OverlapVolume(other);
          overlap_after += grown.OverlapVolume(other);
        }
        primary = overlap_after - overlap_before;
      } else {
        primary = 0.0;  // fall through to volume enlargement
      }
      const double secondary = grown.Volume() - ebox.Volume();
      const double tertiary = ebox.Volume();
      if (primary < best_primary ||
          (primary == best_primary && secondary < best_secondary) ||
          (primary == best_primary && secondary == best_secondary &&
           tertiary < best_tertiary)) {
        best = i;
        best_primary = primary;
        best_secondary = secondary;
        best_tertiary = tertiary;
      }
    }
    node = node->entries[best].child.get();
  }
  return node;
}

void RTree3::SplitNode(Node* node) {
  // R* split: choose the axis with the minimal total margin over all
  // candidate distributions, then the distribution with minimal overlap
  // (ties broken by total volume).
  const std::size_t total = node->entries.size();
  const std::size_t min_e = options_.min_entries;
  assert(total > options_.max_entries);

  std::vector<std::size_t> order(total);
  std::vector<std::size_t> best_order;
  std::size_t best_split_at = min_e;
  double best_margin_for_axis = std::numeric_limits<double>::infinity();

  // For each axis and each of the two sortings (by min, by max), evaluate
  // every legal split position.
  for (int axis = 0; axis < 3; ++axis) {
    for (int by_max = 0; by_max < 2; ++by_max) {
      for (std::size_t i = 0; i < total; ++i) order[i] = i;
      std::sort(order.begin(), order.end(),
                [&](std::size_t a, std::size_t b) {
                  const Box3& ba = node->entries[a].box;
                  const Box3& bb = node->entries[b].box;
                  return by_max ? ba.max[axis] < bb.max[axis]
                                : ba.min[axis] < bb.min[axis];
                });
      // Prefix / suffix boxes for O(n) margin evaluation per sorting.
      std::vector<Box3> prefix(total);
      std::vector<Box3> suffix(total);
      Box3 acc;
      for (std::size_t i = 0; i < total; ++i) {
        acc.Expand(node->entries[order[i]].box);
        prefix[i] = acc;
      }
      acc = Box3();
      for (std::size_t i = total; i-- > 0;) {
        acc.Expand(node->entries[order[i]].box);
        suffix[i] = acc;
      }
      double margin_sum = 0.0;
      double axis_best_overlap = std::numeric_limits<double>::infinity();
      double axis_best_volume = std::numeric_limits<double>::infinity();
      std::size_t axis_best_split = min_e;
      for (std::size_t k = min_e; k + min_e <= total; ++k) {
        const Box3& left = prefix[k - 1];
        const Box3& right = suffix[k];
        margin_sum += left.Margin() + right.Margin();
        const double overlap = left.OverlapVolume(right);
        const double volume = left.Volume() + right.Volume();
        if (overlap < axis_best_overlap ||
            (overlap == axis_best_overlap && volume < axis_best_volume)) {
          axis_best_overlap = overlap;
          axis_best_volume = volume;
          axis_best_split = k;
        }
      }
      if (margin_sum < best_margin_for_axis) {
        best_margin_for_axis = margin_sum;
        best_order = order;
        best_split_at = axis_best_split;
      }
    }
  }

  // Move the second group into a fresh sibling.
  auto sibling = std::make_unique<Node>();
  sibling->level = node->level;
  std::vector<Entry> left_entries;
  left_entries.reserve(best_split_at);
  for (std::size_t i = 0; i < total; ++i) {
    Entry& e = node->entries[best_order[i]];
    if (i < best_split_at) {
      left_entries.push_back(std::move(e));
    } else {
      if (e.child != nullptr) e.child->parent = sibling.get();
      sibling->entries.push_back(std::move(e));
    }
  }
  node->entries = std::move(left_entries);
  for (Entry& e : node->entries) {
    if (e.child != nullptr) e.child->parent = node;
  }

  if (node->parent == nullptr) {
    // Split of the root: grow the tree by one level.
    auto new_root = std::make_unique<Node>();
    new_root->level = node->level + 1;
    Entry left;
    left.box = node->ComputeBox();
    left.child = std::move(root_);
    left.child->parent = new_root.get();
    Entry right;
    right.box = sibling->ComputeBox();
    right.child = std::move(sibling);
    right.child->parent = new_root.get();
    new_root->entries.push_back(std::move(left));
    new_root->entries.push_back(std::move(right));
    root_ = std::move(new_root);
    return;
  }

  Node* parent = node->parent;
  // Refresh the split node's entry box and add the sibling.
  for (Entry& e : parent->entries) {
    if (e.child.get() == node) {
      e.box = node->ComputeBox();
      break;
    }
  }
  Entry sibling_entry;
  sibling_entry.box = sibling->ComputeBox();
  sibling_entry.child = std::move(sibling);
  sibling_entry.child->parent = parent;
  parent->entries.push_back(std::move(sibling_entry));
  if (parent->entries.size() > options_.max_entries) {
    SplitNode(parent);
  } else {
    AdjustUpward(parent);
  }
}

void RTree3::AdjustUpward(Node* node) {
  while (node->parent != nullptr) {
    Node* parent = node->parent;
    for (Entry& e : parent->entries) {
      if (e.child.get() == node) {
        e.box = node->ComputeBox();
        break;
      }
    }
    node = parent;
  }
}

bool RTree3::Remove(const Box3& box, Value value) {
  std::vector<Entry> orphans;
  const bool removed = RemoveRec(root_.get(), box, value, &orphans);
  if (!removed) return false;
  --size_;
  // Shrink the root when it has a single child.
  while (!root_->IsLeaf() && root_->entries.size() == 1) {
    std::unique_ptr<Node> child = std::move(root_->entries[0].child);
    child->parent = nullptr;
    root_ = std::move(child);
  }
  if (root_->IsLeaf() && root_->entries.empty()) {
    root_ = std::make_unique<Node>();
  }
  // Reinsert orphaned subtrees / leaf entries at their original level.
  for (Entry& orphan : orphans) {
    const std::size_t level = orphan.child ? orphan.child->level + 1 : 0;
    InsertEntryAtLevel(std::move(orphan), level);
  }
  return true;
}

bool RTree3::RemoveRec(Node* node, const Box3& box, Value value,
                       std::vector<Entry>* orphans) {
  if (node->IsLeaf()) {
    for (std::size_t i = 0; i < node->entries.size(); ++i) {
      const Entry& e = node->entries[i];
      if (e.value == value && SameBox(e.box, box)) {
        node->entries.erase(node->entries.begin() +
                            static_cast<std::ptrdiff_t>(i));
        CondenseAfterRemove(node, orphans);
        return true;
      }
    }
    return false;
  }
  for (std::size_t i = 0; i < node->entries.size(); ++i) {
    if (!node->entries[i].box.Contains(box) &&
        !node->entries[i].box.Intersects(box)) {
      continue;
    }
    if (RemoveRec(node->entries[i].child.get(), box, value, orphans)) {
      return true;
    }
  }
  return false;
}

void RTree3::CondenseAfterRemove(Node* node, std::vector<Entry>* orphans) {
  while (node->parent != nullptr) {
    Node* parent = node->parent;
    if (node->entries.size() < options_.min_entries) {
      // Orphan the whole underfull node and delete its parent entry.
      for (std::size_t i = 0; i < parent->entries.size(); ++i) {
        if (parent->entries[i].child.get() == node) {
          for (Entry& e : node->entries) orphans->push_back(std::move(e));
          parent->entries.erase(parent->entries.begin() +
                                static_cast<std::ptrdiff_t>(i));
          break;
        }
      }
    } else {
      for (Entry& e : parent->entries) {
        if (e.child.get() == node) {
          e.box = node->ComputeBox();
          break;
        }
      }
    }
    node = parent;
  }
}

void RTree3::BulkLoad(std::vector<std::pair<Box3, Value>> entries) {
  Clear();
  if (entries.empty()) return;
  size_ = entries.size();

  // Leaf entries.
  std::vector<Entry> level_entries;
  level_entries.reserve(entries.size());
  for (auto& [box, value] : entries) {
    Entry e;
    e.box = box;
    e.value = value;
    level_entries.push_back(std::move(e));
  }

  // Pack one level of entries into nodes using Sort-Tile-Recursive: sort
  // by x-center into vertical slices, each slice by y-center into runs,
  // each run by t-center, then chunk into nodes of max_entries.
  std::size_t level = 0;
  while (true) {
    const std::size_t n = level_entries.size();
    if (n <= options_.max_entries) {
      // The remaining entries fit in the root.
      auto root = std::make_unique<Node>();
      root->level = level;
      for (Entry& e : level_entries) {
        if (e.child != nullptr) e.child->parent = root.get();
        root->entries.push_back(std::move(e));
      }
      root_ = std::move(root);
      return;
    }

    const std::size_t num_nodes =
        (n + options_.max_entries - 1) / options_.max_entries;
    const auto tiles = static_cast<std::size_t>(
        std::ceil(std::cbrt(static_cast<double>(num_nodes))));
    const std::size_t slice_x = (n + tiles - 1) / tiles;

    auto center_less = [&](int dim) {
      return [dim](const Entry& a, const Entry& b) {
        return a.box.CenterDim(dim) < b.box.CenterDim(dim);
      };
    };
    std::sort(level_entries.begin(), level_entries.end(), center_less(0));
    for (std::size_t x0 = 0; x0 < n; x0 += slice_x) {
      const std::size_t x1 = std::min(x0 + slice_x, n);
      std::sort(level_entries.begin() + static_cast<std::ptrdiff_t>(x0),
                level_entries.begin() + static_cast<std::ptrdiff_t>(x1),
                center_less(1));
      const std::size_t slice_y = (x1 - x0 + tiles - 1) / tiles;
      for (std::size_t y0 = x0; y0 < x1; y0 += slice_y) {
        const std::size_t y1 = std::min(y0 + slice_y, x1);
        std::sort(level_entries.begin() + static_cast<std::ptrdiff_t>(y0),
                  level_entries.begin() + static_cast<std::ptrdiff_t>(y1),
                  center_less(2));
      }
    }

    // Chunk into nodes; rebalance the tail so no node is underfull.
    std::vector<Entry> next_level;
    next_level.reserve(num_nodes);
    std::size_t pos = 0;
    while (pos < n) {
      std::size_t take = std::min(options_.max_entries, n - pos);
      const std::size_t remaining_after = n - pos - take;
      if (remaining_after > 0 && remaining_after < options_.min_entries) {
        // Shrink this node so the final one meets the minimum.
        take -= options_.min_entries - remaining_after;
      }
      auto node = std::make_unique<Node>();
      node->level = level;
      for (std::size_t i = 0; i < take; ++i, ++pos) {
        Entry& e = level_entries[pos];
        if (e.child != nullptr) e.child->parent = node.get();
        node->entries.push_back(std::move(e));
      }
      Entry parent_entry;
      parent_entry.box = node->ComputeBox();
      parent_entry.child = std::move(node);
      next_level.push_back(std::move(parent_entry));
    }
    level_entries = std::move(next_level);
    ++level;
  }
}

void RTree3::Search(const Box3& query, const Visitor& visitor) const {
  if (size_ == 0) return;
  // Iterative DFS to avoid recursion-depth concerns on adversarial trees.
  std::vector<const Node*> stack = {root_.get()};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    for (const Entry& e : node->entries) {
      if (!e.box.Intersects(query)) continue;
      if (node->IsLeaf()) {
        visitor(e.box, e.value);
      } else {
        stack.push_back(e.child.get());
      }
    }
  }
}

std::vector<RTree3::Value> RTree3::SearchValues(const Box3& query) const {
  std::vector<Value> out;
  Search(query, [&out](const Box3&, Value v) { out.push_back(v); });
  return out;
}

std::size_t RTree3::height() const { return root_->level + 1; }

std::size_t RTree3::num_nodes() const {
  std::size_t count = 0;
  std::vector<const Node*> stack = {root_.get()};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    ++count;
    if (!node->IsLeaf()) {
      for (const Entry& e : node->entries) stack.push_back(e.child.get());
    }
  }
  return count;
}

void RTree3::Clear() {
  root_ = std::make_unique<Node>();
  size_ = 0;
}

util::Status RTree3::CheckInvariants() const {
  std::size_t leaf_entries = 0;
  util::Status status = util::Status::Ok();

  std::function<void(const Node*, const Node*)> visit =
      [&](const Node* node, const Node* parent) {
        if (!status.ok()) return;
        if (node->parent != parent) {
          status = util::Status::Internal("bad parent pointer");
          return;
        }
        const bool is_root = parent == nullptr;
        if (!is_root && node->entries.size() < options_.min_entries) {
          status = util::Status::Internal("underfull node");
          return;
        }
        if (node->entries.size() > options_.max_entries) {
          status = util::Status::Internal("overfull node");
          return;
        }
        for (const Entry& e : node->entries) {
          if (node->IsLeaf()) {
            if (e.child != nullptr) {
              status = util::Status::Internal("child in leaf entry");
              return;
            }
            ++leaf_entries;
          } else {
            if (e.child == nullptr) {
              status = util::Status::Internal("missing child");
              return;
            }
            if (e.child->level + 1 != node->level) {
              status = util::Status::Internal("level mismatch");
              return;
            }
            if (!SameBox(e.box, e.child->ComputeBox())) {
              status = util::Status::Internal("stale bounding box");
              return;
            }
            visit(e.child.get(), node);
          }
        }
      };
  visit(root_.get(), nullptr);
  if (status.ok() && leaf_entries != size_) {
    status = util::Status::Internal("size mismatch");
  }
  return status;
}

}  // namespace modb::index
