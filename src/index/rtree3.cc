#include "index/rtree3.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <limits>

#include "storage/memory_storage_manager.h"

namespace modb::index {

using geo::Box3;
using storage::kInvalidPageId;

struct RTree3::Entry {
  Box3 box;
  Value value = 0;
  NodeId child = kInvalidPageId;  // kInvalidPageId for leaf entries

  bool IsLeafEntry() const { return child == kInvalidPageId; }
};

struct RTree3::Node {
  std::uint32_t level = 0;  // 0 == leaf
  NodeId parent = kInvalidPageId;
  std::vector<Entry> entries;

  bool IsLeaf() const { return level == 0; }

  Box3 ComputeBox() const {
    Box3 box;
    for (const Entry& e : entries) box.Expand(e.box);
    return box;
  }
};

/// A buffer-pool pin paired with the materialised node it resolves to.
/// Invalid (`node == nullptr`) when the fetch failed — the tree is poisoned
/// by then and the caller bails out.
struct RTree3::Pinned {
  storage::BufferPool::Handle handle;
  Node* node = nullptr;

  explicit operator bool() const { return node != nullptr; }
  void Release() {
    handle.Release();
    node = nullptr;
  }
};

namespace {

bool SameBox(const Box3& a, const Box3& b) {
  for (int d = 0; d < 3; ++d) {
    if (a.min[d] != b.min[d] || a.max[d] != b.max[d]) return false;
  }
  return true;
}

// Node page layout (little-endian):
//   u32 level | u64 parent | u32 count |
//   count x { f64 min[3], f64 max[3], u64 word }
// where `word` is the value for leaf entries and the child NodeId for
// internal ones (distinguished by `level`).
constexpr std::size_t kNodeHeaderBytes = 16;
constexpr std::size_t kEntryBytes = 6 * 8 + 8;

void PutU32(std::string* out, std::uint32_t v) {
  char buf[4];
  buf[0] = static_cast<char>(v & 0xff);
  buf[1] = static_cast<char>((v >> 8) & 0xff);
  buf[2] = static_cast<char>((v >> 16) & 0xff);
  buf[3] = static_cast<char>((v >> 24) & 0xff);
  out->append(buf, 4);
}

void PutU64(std::string* out, std::uint64_t v) {
  PutU32(out, static_cast<std::uint32_t>(v & 0xffffffffu));
  PutU32(out, static_cast<std::uint32_t>(v >> 32));
}

void PutF64(std::string* out, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

std::uint32_t GetU32(std::string_view data, std::size_t pos) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) |
        static_cast<std::uint8_t>(data[pos + static_cast<std::size_t>(i)]);
  }
  return v;
}

std::uint64_t GetU64(std::string_view data, std::size_t pos) {
  const std::uint64_t lo = GetU32(data, pos);
  const std::uint64_t hi = GetU32(data, pos + 4);
  return (hi << 32) | lo;
}

double GetF64(std::string_view data, std::size_t pos) {
  const std::uint64_t bits = GetU64(data, pos);
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

}  // namespace

util::Status RTree3::EncodeNode(const void* object, std::string* out) {
  const auto* node = static_cast<const Node*>(object);
  out->clear();
  out->reserve(kNodeHeaderBytes + node->entries.size() * kEntryBytes);
  PutU32(out, node->level);
  PutU64(out, node->parent);
  PutU32(out, static_cast<std::uint32_t>(node->entries.size()));
  for (const auto& e : node->entries) {
    for (int d = 0; d < 3; ++d) PutF64(out, e.box.min[d]);
    for (int d = 0; d < 3; ++d) PutF64(out, e.box.max[d]);
    PutU64(out, node->level == 0 ? e.value : e.child);
  }
  return util::Status::Ok();
}

util::Result<std::shared_ptr<void>> RTree3::DecodeNode(
    std::string_view bytes) {
  if (bytes.size() < kNodeHeaderBytes) {
    return util::Status::Internal("node page truncated: " +
                                  std::to_string(bytes.size()) + " bytes");
  }
  auto node = std::make_shared<Node>();
  node->level = GetU32(bytes, 0);
  node->parent = GetU64(bytes, 4);
  const std::uint32_t count = GetU32(bytes, 12);
  if (bytes.size() != kNodeHeaderBytes + std::size_t{count} * kEntryBytes) {
    return util::Status::Internal(
        "node page size mismatch: " + std::to_string(bytes.size()) +
        " bytes for " + std::to_string(count) + " entries");
  }
  node->entries.resize(count);
  std::size_t pos = kNodeHeaderBytes;
  for (std::uint32_t i = 0; i < count; ++i, pos += kEntryBytes) {
    auto& e = node->entries[i];
    for (int d = 0; d < 3; ++d) e.box.min[d] = GetF64(bytes, pos + 8 * d);
    for (int d = 0; d < 3; ++d) e.box.max[d] = GetF64(bytes, pos + 24 + 8 * d);
    const std::uint64_t word = GetU64(bytes, pos + 48);
    if (node->level == 0) {
      e.value = word;
      e.child = kInvalidPageId;
    } else {
      e.value = 0;
      e.child = word;
    }
  }
  return std::shared_ptr<void>(std::move(node));
}

storage::PageCodec RTree3::NodeCodec() {
  storage::PageCodec codec;
  codec.encode = &RTree3::EncodeNode;
  codec.decode = &RTree3::DecodeNode;
  return codec;
}

RTree3::RTree3() : RTree3(Options{}) {}

RTree3::RTree3(Options options)
    : options_(std::move(options)), ctl_(std::make_shared<ControlBlock>()) {
  assert(options_.max_entries >= 4);
  assert(options_.min_entries >= 2);
  assert(options_.min_entries <= options_.max_entries / 2);

  auto storage = storage::OpenStorage(options_.storage);
  if (storage.ok()) {
    storage_ = std::move(*storage);
  } else {
    Poison(storage.status());
    // Inert backing so the poisoned tree stays safely callable.
    storage_ = std::make_unique<storage::MemoryStorageManager>();
  }
  storage::BufferPoolOptions pool_options;
  pool_options.capacity_pages = options_.storage.pool_pages;
  pool_ = std::make_unique<storage::BufferPool>(storage_.get(), NodeCodec(),
                                                pool_options);
  // An overfull node (max_entries + 1, transiently held between an insert
  // and its split) must still fit a page: it can be evicted and written
  // back while unpinned.
  const std::size_t required =
      kNodeHeaderBytes + (options_.max_entries + 1) * kEntryBytes;
  if (healthy() && storage_->page_payload_size() < required) {
    Poison(util::Status::InvalidArgument(
        "page payload of " + std::to_string(storage_->page_payload_size()) +
        " bytes cannot hold fan-out " + std::to_string(options_.max_entries) +
        " (needs " + std::to_string(required) + ")"));
  }
  if (healthy()) {
    Pinned root = AllocNode(0, kInvalidPageId);
    if (root) root_ = root.handle.id();
  }
}

RTree3::~RTree3() = default;
RTree3::RTree3(RTree3&&) noexcept = default;
RTree3& RTree3::operator=(RTree3&&) noexcept = default;

util::Status RTree3::storage_status() const {
  std::lock_guard<std::mutex> lock(ctl_->mu);
  return ctl_->status;
}

bool RTree3::healthy() const {
  std::lock_guard<std::mutex> lock(ctl_->mu);
  return ctl_->status.ok();
}

void RTree3::Poison(const util::Status& status) const {
  if (status.ok()) return;
  std::lock_guard<std::mutex> lock(ctl_->mu);
  if (ctl_->status.ok()) ctl_->status = status;  // first error wins
}

RTree3::Pinned RTree3::Pin(NodeId id) const {
  Pinned pinned;
  if (id == kInvalidPageId) {
    Poison(util::Status::Internal("pin of invalid node id"));
    return pinned;
  }
  auto handle = pool_->Fetch(id);
  if (!handle.ok()) {
    Poison(handle.status());
    return pinned;
  }
  pinned.handle = std::move(*handle);
  pinned.node = static_cast<Node*>(pinned.handle.get());
  return pinned;
}

RTree3::Pinned RTree3::AllocNode(std::uint32_t level, NodeId parent) {
  Pinned pinned;
  auto node = std::make_shared<Node>();
  node->level = level;
  node->parent = parent;
  Node* raw = node.get();
  auto handle = pool_->Create(std::move(node));
  if (!handle.ok()) {
    Poison(handle.status());
    return pinned;
  }
  pinned.handle = std::move(*handle);
  pinned.node = raw;
  return pinned;
}

void RTree3::FreeNode(NodeId id) {
  if (util::Status s = pool_->Free(id); !s.ok()) Poison(s);
}

void RTree3::Insert(const Box3& box, Value value) {
  assert(!box.Empty());
  if (!healthy()) return;
  Entry entry;
  entry.box = box;
  entry.value = value;
  InsertEntryAtLevel(entry, 0);
  if (healthy()) ++size_;
  SyncMetrics();
}

void RTree3::InsertEntryAtLevel(Entry entry, std::size_t level) {
  const NodeId node_id = ChooseSubtree(entry.box, level);
  if (node_id == kInvalidPageId) return;
  bool overflow = false;
  {
    Pinned p = Pin(node_id);
    if (!p) return;
    if (entry.child != kInvalidPageId) {
      Pinned child = Pin(entry.child);
      if (!child) return;
      child.node->parent = node_id;
      child.handle.MarkDirty();
    }
    p.node->entries.push_back(entry);
    p.handle.MarkDirty();
    overflow = p.node->entries.size() > options_.max_entries;
  }
  if (overflow) {
    SplitNode(node_id);
  } else {
    AdjustUpward(node_id);
  }
}

RTree3::NodeId RTree3::ChooseSubtree(const Box3& box,
                                     std::size_t target_level) const {
  NodeId id = root_;
  Pinned p = Pin(id);
  if (!p) return kInvalidPageId;
  while (p.node->level > target_level) {
    const Node* node = p.node;
    assert(!node->entries.empty());
    const bool children_are_leaves = node->level == 1;
    std::size_t best = 0;
    double best_primary = std::numeric_limits<double>::infinity();
    double best_secondary = std::numeric_limits<double>::infinity();
    double best_tertiary = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < node->entries.size(); ++i) {
      const Box3& ebox = node->entries[i].box;
      const Box3 grown = ebox.Union(box);
      double primary;
      if (children_are_leaves) {
        // R*: minimise overlap enlargement at the leaf level.
        double overlap_before = 0.0;
        double overlap_after = 0.0;
        for (std::size_t j = 0; j < node->entries.size(); ++j) {
          if (j == i) continue;
          const Box3& other = node->entries[j].box;
          overlap_before += ebox.OverlapVolume(other);
          overlap_after += grown.OverlapVolume(other);
        }
        primary = overlap_after - overlap_before;
      } else {
        primary = 0.0;  // fall through to volume enlargement
      }
      const double secondary = grown.Volume() - ebox.Volume();
      const double tertiary = ebox.Volume();
      if (primary < best_primary ||
          (primary == best_primary && secondary < best_secondary) ||
          (primary == best_primary && secondary == best_secondary &&
           tertiary < best_tertiary)) {
        best = i;
        best_primary = primary;
        best_secondary = secondary;
        best_tertiary = tertiary;
      }
    }
    id = node->entries[best].child;
    p = Pin(id);
    if (!p) return kInvalidPageId;
  }
  return id;
}

void RTree3::SplitNode(NodeId node_id) {
  if (!healthy()) return;
  ++splits_;
  NodeId parent_id = kInvalidPageId;
  bool parent_overflow = false;
  {
    Pinned p = Pin(node_id);
    if (!p) return;
    Node* node = p.node;

    // R* split: choose the axis with the minimal total margin over all
    // candidate distributions, then the distribution with minimal overlap
    // (ties broken by total volume).
    const std::size_t total = node->entries.size();
    const std::size_t min_e = options_.min_entries;
    assert(total > options_.max_entries);

    std::vector<std::size_t> order(total);
    std::vector<std::size_t> best_order;
    std::size_t best_split_at = min_e;
    double best_margin_for_axis = std::numeric_limits<double>::infinity();

    // For each axis and each of the two sortings (by min, by max), evaluate
    // every legal split position.
    for (int axis = 0; axis < 3; ++axis) {
      for (int by_max = 0; by_max < 2; ++by_max) {
        for (std::size_t i = 0; i < total; ++i) order[i] = i;
        std::sort(order.begin(), order.end(),
                  [&](std::size_t a, std::size_t b) {
                    const Box3& ba = node->entries[a].box;
                    const Box3& bb = node->entries[b].box;
                    return by_max ? ba.max[axis] < bb.max[axis]
                                  : ba.min[axis] < bb.min[axis];
                  });
        // Prefix / suffix boxes for O(n) margin evaluation per sorting.
        std::vector<Box3> prefix(total);
        std::vector<Box3> suffix(total);
        Box3 acc;
        for (std::size_t i = 0; i < total; ++i) {
          acc.Expand(node->entries[order[i]].box);
          prefix[i] = acc;
        }
        acc = Box3();
        for (std::size_t i = total; i-- > 0;) {
          acc.Expand(node->entries[order[i]].box);
          suffix[i] = acc;
        }
        double margin_sum = 0.0;
        double axis_best_overlap = std::numeric_limits<double>::infinity();
        double axis_best_volume = std::numeric_limits<double>::infinity();
        std::size_t axis_best_split = min_e;
        for (std::size_t k = min_e; k + min_e <= total; ++k) {
          const Box3& left = prefix[k - 1];
          const Box3& right = suffix[k];
          margin_sum += left.Margin() + right.Margin();
          const double overlap = left.OverlapVolume(right);
          const double volume = left.Volume() + right.Volume();
          if (overlap < axis_best_overlap ||
              (overlap == axis_best_overlap && volume < axis_best_volume)) {
            axis_best_overlap = overlap;
            axis_best_volume = volume;
            axis_best_split = k;
          }
        }
        if (margin_sum < best_margin_for_axis) {
          best_margin_for_axis = margin_sum;
          best_order = order;
          best_split_at = axis_best_split;
        }
      }
    }

    // Move the second group into a fresh sibling.
    Pinned sibling = AllocNode(node->level, node->parent);
    if (!sibling) return;
    const NodeId sibling_id = sibling.handle.id();
    std::vector<Entry> left_entries;
    left_entries.reserve(best_split_at);
    for (std::size_t i = 0; i < total; ++i) {
      const Entry& e = node->entries[best_order[i]];
      if (i < best_split_at) {
        left_entries.push_back(e);
      } else {
        if (e.child != kInvalidPageId) {
          Pinned child = Pin(e.child);
          if (!child) return;
          child.node->parent = sibling_id;
          child.handle.MarkDirty();
        }
        sibling.node->entries.push_back(e);
      }
    }
    node->entries = std::move(left_entries);
    p.handle.MarkDirty();  // sibling was created dirty

    if (node->parent == kInvalidPageId) {
      // Split of the root: grow the tree by one level.
      Pinned new_root = AllocNode(node->level + 1, kInvalidPageId);
      if (!new_root) return;
      const NodeId new_root_id = new_root.handle.id();
      Entry left;
      left.box = node->ComputeBox();
      left.child = node_id;
      Entry right;
      right.box = sibling.node->ComputeBox();
      right.child = sibling_id;
      new_root.node->entries.push_back(left);
      new_root.node->entries.push_back(right);
      node->parent = new_root_id;
      sibling.node->parent = new_root_id;
      root_ = new_root_id;
      return;
    }

    parent_id = node->parent;
    Pinned parent = Pin(parent_id);
    if (!parent) return;
    // Refresh the split node's entry box and add the sibling.
    for (Entry& e : parent.node->entries) {
      if (e.child == node_id) {
        e.box = node->ComputeBox();
        break;
      }
    }
    Entry sibling_entry;
    sibling_entry.box = sibling.node->ComputeBox();
    sibling_entry.child = sibling_id;
    parent.node->entries.push_back(sibling_entry);
    parent.handle.MarkDirty();
    parent_overflow = parent.node->entries.size() > options_.max_entries;
  }
  if (parent_overflow) {
    SplitNode(parent_id);
  } else {
    AdjustUpward(parent_id);
  }
}

void RTree3::AdjustUpward(NodeId node_id) {
  while (healthy()) {
    NodeId parent_id = kInvalidPageId;
    Box3 box;
    {
      Pinned p = Pin(node_id);
      if (!p) return;
      parent_id = p.node->parent;
      if (parent_id == kInvalidPageId) return;
      box = p.node->ComputeBox();
    }
    Pinned parent = Pin(parent_id);
    if (!parent) return;
    for (Entry& e : parent.node->entries) {
      if (e.child == node_id) {
        e.box = box;
        break;
      }
    }
    parent.handle.MarkDirty();
    node_id = parent_id;
  }
}

bool RTree3::Remove(const Box3& box, Value value) {
  if (!healthy()) return false;
  // Phase 1: locate and erase the matching leaf entry. Pins are scoped per
  // visited node — condensation below frees ancestors, which must not be
  // pinned by a traversal stack at that point.
  NodeId found_leaf = kInvalidPageId;
  std::vector<NodeId> stack = {root_};
  while (!stack.empty() && found_leaf == kInvalidPageId) {
    const NodeId id = stack.back();
    stack.pop_back();
    Pinned p = Pin(id);
    if (!p) return false;
    if (p.node->IsLeaf()) {
      for (std::size_t i = 0; i < p.node->entries.size(); ++i) {
        const Entry& e = p.node->entries[i];
        if (e.value == value && SameBox(e.box, box)) {
          p.node->entries.erase(p.node->entries.begin() +
                                static_cast<std::ptrdiff_t>(i));
          p.handle.MarkDirty();
          found_leaf = id;
          break;
        }
      }
    } else {
      for (const Entry& e : p.node->entries) {
        if (e.box.Intersects(box)) stack.push_back(e.child);
      }
    }
  }
  if (found_leaf == kInvalidPageId) return false;
  --size_;

  std::vector<Entry> orphans;
  CondenseAfterRemove(found_leaf, &orphans);

  // Shrink the root while it has a single child.
  while (healthy()) {
    NodeId child_id = kInvalidPageId;
    {
      Pinned root = Pin(root_);
      if (!root) break;
      if (root.node->IsLeaf() || root.node->entries.size() != 1) break;
      child_id = root.node->entries[0].child;
    }
    {
      Pinned child = Pin(child_id);
      if (!child) break;
      child.node->parent = kInvalidPageId;
      child.handle.MarkDirty();
    }
    const NodeId old_root = root_;
    root_ = child_id;
    FreeNode(old_root);
  }

  // Reinsert orphaned subtrees / leaf entries at their original level.
  for (const Entry& orphan : orphans) {
    std::size_t level = 0;
    if (orphan.child != kInvalidPageId) {
      Pinned child = Pin(orphan.child);
      if (!child) break;
      level = child.node->level + 1;
    }
    InsertEntryAtLevel(orphan, level);
  }
  SyncMetrics();
  return true;
}

void RTree3::CondenseAfterRemove(NodeId node_id, std::vector<Entry>* orphans) {
  while (healthy()) {
    NodeId parent_id = kInvalidPageId;
    bool underfull = false;
    Box3 box;
    {
      Pinned p = Pin(node_id);
      if (!p) return;
      parent_id = p.node->parent;
      if (parent_id == kInvalidPageId) return;
      underfull = p.node->entries.size() < options_.min_entries;
      if (underfull) {
        // Orphan the whole underfull node's entries for reinsertion.
        for (const Entry& e : p.node->entries) orphans->push_back(e);
        p.node->entries.clear();
        p.handle.MarkDirty();
      } else {
        box = p.node->ComputeBox();
      }
    }
    {
      Pinned parent = Pin(parent_id);
      if (!parent) return;
      auto& entries = parent.node->entries;
      if (underfull) {
        for (std::size_t i = 0; i < entries.size(); ++i) {
          if (entries[i].child == node_id) {
            entries.erase(entries.begin() + static_cast<std::ptrdiff_t>(i));
            break;
          }
        }
      } else {
        for (Entry& e : entries) {
          if (e.child == node_id) {
            e.box = box;
            break;
          }
        }
      }
      parent.handle.MarkDirty();
    }
    if (underfull) FreeNode(node_id);
    node_id = parent_id;
  }
}

void RTree3::BulkLoad(std::vector<std::pair<Box3, Value>> entries) {
  Clear();
  if (!healthy() || entries.empty()) return;
  size_ = entries.size();
  // Clear() allocated a fresh empty leaf root; the packed tree replaces it.
  const NodeId placeholder_root = root_;
  root_ = kInvalidPageId;
  FreeNode(placeholder_root);

  // Leaf entries.
  std::vector<Entry> level_entries;
  level_entries.reserve(entries.size());
  for (auto& [box, value] : entries) {
    Entry e;
    e.box = box;
    e.value = value;
    level_entries.push_back(e);
  }

  // Pack one level of entries into nodes using Sort-Tile-Recursive: sort
  // by x-center into vertical slices, each slice by y-center into runs,
  // each run by t-center, then chunk into nodes of max_entries.
  std::uint32_t level = 0;
  while (healthy()) {
    const std::size_t n = level_entries.size();
    if (n <= options_.max_entries) {
      // The remaining entries fit in the root.
      Pinned root = AllocNode(level, kInvalidPageId);
      if (!root) return;
      const NodeId root_id = root.handle.id();
      for (const Entry& e : level_entries) {
        if (e.child != kInvalidPageId) {
          Pinned child = Pin(e.child);
          if (!child) return;
          child.node->parent = root_id;
          child.handle.MarkDirty();
        }
        root.node->entries.push_back(e);
      }
      root_ = root_id;
      SyncMetrics();
      return;
    }

    const std::size_t num_nodes =
        (n + options_.max_entries - 1) / options_.max_entries;
    const auto tiles = static_cast<std::size_t>(
        std::ceil(std::cbrt(static_cast<double>(num_nodes))));
    const std::size_t slice_x = (n + tiles - 1) / tiles;

    auto center_less = [&](int dim) {
      return [dim](const Entry& a, const Entry& b) {
        return a.box.CenterDim(dim) < b.box.CenterDim(dim);
      };
    };
    std::sort(level_entries.begin(), level_entries.end(), center_less(0));
    for (std::size_t x0 = 0; x0 < n; x0 += slice_x) {
      const std::size_t x1 = std::min(x0 + slice_x, n);
      std::sort(level_entries.begin() + static_cast<std::ptrdiff_t>(x0),
                level_entries.begin() + static_cast<std::ptrdiff_t>(x1),
                center_less(1));
      const std::size_t slice_y = (x1 - x0 + tiles - 1) / tiles;
      for (std::size_t y0 = x0; y0 < x1; y0 += slice_y) {
        const std::size_t y1 = std::min(y0 + slice_y, x1);
        std::sort(level_entries.begin() + static_cast<std::ptrdiff_t>(y0),
                  level_entries.begin() + static_cast<std::ptrdiff_t>(y1),
                  center_less(2));
      }
    }

    // Chunk into nodes; rebalance the tail so no node is underfull.
    std::vector<Entry> next_level;
    next_level.reserve(num_nodes);
    std::size_t pos = 0;
    while (pos < n) {
      std::size_t take = std::min(options_.max_entries, n - pos);
      const std::size_t remaining_after = n - pos - take;
      if (remaining_after > 0 && remaining_after < options_.min_entries) {
        // Shrink this node so the final one meets the minimum.
        take -= options_.min_entries - remaining_after;
      }
      Pinned node = AllocNode(level, kInvalidPageId);
      if (!node) return;
      const NodeId node_id = node.handle.id();
      for (std::size_t i = 0; i < take; ++i, ++pos) {
        const Entry& e = level_entries[pos];
        if (e.child != kInvalidPageId) {
          Pinned child = Pin(e.child);
          if (!child) return;
          child.node->parent = node_id;
          child.handle.MarkDirty();
        }
        node.node->entries.push_back(e);
      }
      Entry parent_entry;
      parent_entry.box = node.node->ComputeBox();
      parent_entry.child = node_id;
      next_level.push_back(parent_entry);
    }
    level_entries = std::move(next_level);
    ++level;
  }
}

void RTree3::Search(const Box3& query, const Visitor& visitor) const {
  if (size_ == 0 || !healthy()) return;
  // Iterative DFS to avoid recursion-depth concerns on adversarial trees.
  std::vector<NodeId> stack = {root_};
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    Pinned p = Pin(id);
    if (!p) return;
    for (const Entry& e : p.node->entries) {
      if (!e.box.Intersects(query)) continue;
      if (p.node->IsLeaf()) {
        visitor(e.box, e.value);
      } else {
        stack.push_back(e.child);
      }
    }
  }
  SyncMetrics();
}

std::vector<RTree3::Value> RTree3::SearchValues(const Box3& query) const {
  std::vector<Value> out;
  Search(query, [&out](const Box3&, Value v) { out.push_back(v); });
  return out;
}

std::size_t RTree3::height() const {
  if (!healthy()) return 0;
  Pinned root = Pin(root_);
  if (!root) return 0;
  return root.node->level + 1;
}

std::size_t RTree3::num_nodes() const {
  if (!healthy()) return 0;
  std::size_t count = 0;
  std::vector<NodeId> stack = {root_};
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    Pinned p = Pin(id);
    if (!p) return count;
    ++count;
    if (!p.node->IsLeaf()) {
      for (const Entry& e : p.node->entries) stack.push_back(e.child);
    }
  }
  return count;
}

void RTree3::Clear() {
  if (util::Status s = pool_->DropAll(); !s.ok()) {
    Poison(s);
    return;
  }
  if (util::Status s = storage_->Reset(); !s.ok()) {
    Poison(s);
    return;
  }
  // A successful storage reset is the recovery path out of a poison.
  {
    std::lock_guard<std::mutex> lock(ctl_->mu);
    ctl_->status = util::Status::Ok();
  }
  root_ = kInvalidPageId;
  size_ = 0;
  Pinned root = AllocNode(0, kInvalidPageId);
  if (root) root_ = root.handle.id();
  SyncMetrics();
}

util::Status RTree3::FlushStorage() {
  if (util::Status s = storage_status(); !s.ok()) return s;
  util::Status s = pool_->FlushDirty();
  if (!s.ok()) Poison(s);
  SyncMetrics();
  return s;
}

void RTree3::SetMetrics(util::MetricsRegistry* registry,
                        const std::string& prefix) {
  if (registry == nullptr) {
    // Withdraw this tree's contribution from the (possibly shared) frames
    // gauge so the registry's sums stay correct.
    if (instruments_.frames != nullptr) {
      std::lock_guard<std::mutex> lock(ctl_->mu);
      instruments_.frames->Add(-ctl_->pushed.frames);
      ctl_->pushed.frames = 0;
    }
    instruments_ = Instruments{};
    return;
  }
  instruments_.splits = registry->GetCounter(prefix + "splits");
  instruments_.hits = registry->GetCounter(prefix + "pages.hits");
  instruments_.misses = registry->GetCounter(prefix + "pages.misses");
  instruments_.evictions = registry->GetCounter(prefix + "pages.evictions");
  instruments_.writebacks = registry->GetCounter(prefix + "pages.writebacks");
  instruments_.reads = registry->GetCounter(prefix + "pages.reads");
  instruments_.writes = registry->GetCounter(prefix + "pages.writes");
  instruments_.frames = registry->GetGauge(prefix + "pages.frames");
  SyncMetrics();
}

void RTree3::SyncMetrics() const {
  if (instruments_.splits == nullptr) return;
  const storage::BufferPoolStats pool_stats = pool_->stats();
  const storage::StorageStats storage_stats = storage_->stats();
  const auto frames = static_cast<std::int64_t>(pool_->num_frames());
  std::lock_guard<std::mutex> lock(ctl_->mu);
  Pushed& last = ctl_->pushed;
  instruments_.splits->Increment(splits_ - last.splits);
  last.splits = splits_;
  instruments_.hits->Increment(pool_stats.hits - last.hits);
  last.hits = pool_stats.hits;
  instruments_.misses->Increment(pool_stats.misses - last.misses);
  last.misses = pool_stats.misses;
  instruments_.evictions->Increment(pool_stats.evictions - last.evictions);
  last.evictions = pool_stats.evictions;
  instruments_.writebacks->Increment(pool_stats.writebacks - last.writebacks);
  last.writebacks = pool_stats.writebacks;
  instruments_.reads->Increment(storage_stats.page_reads - last.reads);
  last.reads = storage_stats.page_reads;
  instruments_.writes->Increment(storage_stats.page_writes - last.writes);
  last.writes = storage_stats.page_writes;
  instruments_.frames->Add(frames - last.frames);
  last.frames = frames;
}

util::Status RTree3::CheckInvariants() const {
  if (util::Status s = storage_status(); !s.ok()) return s;
  std::size_t leaf_entries = 0;
  util::Status status = util::Status::Ok();

  std::function<void(NodeId, NodeId)> visit = [&](NodeId id,
                                                  NodeId parent_id) {
    if (!status.ok()) return;
    Pinned p = Pin(id);
    if (!p) {
      status = storage_status();
      if (status.ok()) status = util::Status::Internal("unpinnable node");
      return;
    }
    const Node* node = p.node;
    if (node->parent != parent_id) {
      status = util::Status::Internal("bad parent id");
      return;
    }
    const bool is_root = parent_id == kInvalidPageId;
    if (!is_root && node->entries.size() < options_.min_entries) {
      status = util::Status::Internal("underfull node");
      return;
    }
    if (node->entries.size() > options_.max_entries) {
      status = util::Status::Internal("overfull node");
      return;
    }
    for (const Entry& e : node->entries) {
      if (node->IsLeaf()) {
        if (e.child != kInvalidPageId) {
          status = util::Status::Internal("child in leaf entry");
          return;
        }
        ++leaf_entries;
      } else {
        if (e.child == kInvalidPageId) {
          status = util::Status::Internal("missing child");
          return;
        }
        {
          Pinned child = Pin(e.child);
          if (!child) {
            status = storage_status();
            if (status.ok()) status = util::Status::Internal("unpinnable node");
            return;
          }
          if (child.node->level + 1 != node->level) {
            status = util::Status::Internal("level mismatch");
            return;
          }
          if (!SameBox(e.box, child.node->ComputeBox())) {
            status = util::Status::Internal("stale bounding box");
            return;
          }
        }
        visit(e.child, id);
        if (!status.ok()) return;
      }
    }
  };
  visit(root_, kInvalidPageId);
  if (status.ok() && leaf_entries != size_) {
    status = util::Status::Internal("size mismatch");
  }
  return status;
}

}  // namespace modb::index
