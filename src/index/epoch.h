#ifndef MODB_INDEX_EPOCH_H_
#define MODB_INDEX_EPOCH_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <thread>

namespace modb::index::epoch {

/// Epoch-based grace-period tracking for lock-free readers (RCU-style).
///
/// Readers bracket each traversal with `Enter` / `Exit`: `Enter` claims one
/// of a fixed set of slots and records the global epoch in it, `Exit`
/// releases the slot. The single writer (externally serialised) retires
/// objects it has unlinked from the published structure, tags each retired
/// object with the epoch current at retirement, advances the global epoch,
/// and frees a retired object only once `MinActive()` has moved past its
/// tag — at that point every reader that could have observed the object has
/// exited.
///
/// Why a retired object with `tag < MinActive()` is unreachable:
///   - the writer unlinks (publishes the replacement root) *before*
///     retiring, and advances the epoch *after* retiring, so a reader that
///     observes epoch `tag + 1` or later also observes the new root (its
///     root load is ordered after the epoch load that returned `tag + 1`,
///     which reads the increment sequenced after the publication);
///   - a reader that entered at epoch <= `tag` may hold the old root, but
///     then its slot still carries a value <= `tag`, keeping
///     `MinActive() <= tag` until it exits.
///
/// All slot and epoch accesses are seq_cst: the scheme needs a total order
/// between "reader announces its epoch" and "writer scans the slots", and
/// the few extra fences are irrelevant next to a tree traversal. Slot
/// release and re-claim also carry the release/acquire edges ThreadSanitizer
/// needs to see that a reader's plain-data reads happen-before the free.
///
/// Slots are claimed per call (hashed by thread id, linear probe). With
/// more than `kSlots` concurrent readers, `Enter` yields until a slot
/// frees — readers hold slots only for one traversal, so this bounds
/// concurrency, never deadlocks.
class EpochManager {
 public:
  static constexpr std::size_t kSlots = 64;
  /// Slot value meaning "no reader": the global epoch starts at 1 and only
  /// grows, so 0 is never a real epoch.
  static constexpr std::uint64_t kIdle = 0;

  EpochManager() = default;
  EpochManager(const EpochManager&) = delete;
  EpochManager& operator=(const EpochManager&) = delete;

  /// Claims a slot and announces the current epoch in it. Returns the slot
  /// index for `Exit`.
  std::size_t Enter() {
    const std::size_t start =
        std::hash<std::thread::id>{}(std::this_thread::get_id()) % kSlots;
    for (;;) {
      for (std::size_t probe = 0; probe < kSlots; ++probe) {
        const std::size_t slot = (start + probe) % kSlots;
        std::uint64_t expected = kIdle;
        std::uint64_t observed = global_.load(std::memory_order_seq_cst);
        if (!slots_[slot].value.compare_exchange_strong(
                expected, observed, std::memory_order_seq_cst)) {
          continue;
        }
        // Publish-then-recheck: once the announcement is visible, re-read
        // the global epoch. When it already moved on, re-announce the newer
        // value — the writer that advanced it may have scanned the slots
        // before our store landed, so only an announcement it can still see
        // pins the grace period.
        for (;;) {
          const std::uint64_t current =
              global_.load(std::memory_order_seq_cst);
          if (current == observed) return slot;
          slots_[slot].value.store(current, std::memory_order_seq_cst);
          observed = current;
        }
      }
      std::this_thread::yield();
    }
  }

  /// Releases the slot returned by `Enter`.
  void Exit(std::size_t slot) {
    slots_[slot].value.store(kIdle, std::memory_order_seq_cst);
  }

  /// The epoch new retirements are tagged with (writer side).
  std::uint64_t current() const {
    return global_.load(std::memory_order_seq_cst);
  }

  /// Advances the global epoch (writer side, after tagging retirements).
  void Advance() { global_.fetch_add(1, std::memory_order_seq_cst); }

  /// Oldest epoch any active reader announced, or the current epoch when
  /// no reader is active. Retired objects tagged strictly below this are
  /// safe to free.
  std::uint64_t MinActive() const {
    std::uint64_t min = global_.load(std::memory_order_seq_cst);
    for (const Slot& slot : slots_) {
      const std::uint64_t announced =
          slot.value.load(std::memory_order_seq_cst);
      if (announced != kIdle && announced < min) min = announced;
    }
    return min;
  }

 private:
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> value{kIdle};
  };
  Slot slots_[kSlots];
  std::atomic<std::uint64_t> global_{1};
};

/// RAII reader bracket.
class ReadGuard {
 public:
  explicit ReadGuard(EpochManager& manager)
      : manager_(manager), slot_(manager.Enter()) {}
  ~ReadGuard() { manager_.Exit(slot_); }
  ReadGuard(const ReadGuard&) = delete;
  ReadGuard& operator=(const ReadGuard&) = delete;

 private:
  EpochManager& manager_;
  std::size_t slot_;
};

}  // namespace modb::index::epoch

#endif  // MODB_INDEX_EPOCH_H_
