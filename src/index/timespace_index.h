#ifndef MODB_INDEX_TIMESPACE_INDEX_H_
#define MODB_INDEX_TIMESPACE_INDEX_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "geo/route_network.h"
#include "index/object_index.h"
#include "index/oplane.h"
#include "index/rtree3.h"

namespace modb::index {

/// The paper's time-space indexing method (§4.2): each object's o-plane is
/// approximated by per-time-slab 3-D boxes stored in an R*-tree. A position
/// update removes the object's old boxes and inserts the boxes of the new
/// o-plane; a range query at time t0 probes the tree with R_G(t0).
///
/// Queries are exact (no false negatives) for t0 within `options.horizon`
/// of each object's last update; later time points fall outside the indexed
/// planes, mirroring the paper's bounded time span T.
///
/// Maintenance-path error handling: an upsert naming an unknown route is a
/// NotFound error that leaves the index unchanged (checked in every build
/// mode — no assert-guarded UB). A failed box removal during an upsert
/// (an internal-invariant breach: the bookkeeping says the box is there
/// but the tree disagrees) is surfaced through the `<prefix>remove_miss`
/// counter (see `SetMetrics`) and the `remove_misses()` accessor instead
/// of being silently ignored; the upsert still installs the new plane so
/// the index keeps no stale model for the object.
///
/// Satisfies the `ObjectIndex` thread-compatibility contract: the const
/// query paths only walk the R*-tree and never touch `boxes_by_object_`
/// mutably, so concurrent readers are safe under a shared lock.
class TimeSpaceIndex final : public ObjectIndex {
 public:
  struct Options {
    OPlaneOptions oplane;
    RTree3::Options rtree;
  };

  /// `network` must outlive the index.
  explicit TimeSpaceIndex(const geo::RouteNetwork* network);
  TimeSpaceIndex(const geo::RouteNetwork* network, Options options);

  util::Status Upsert(core::ObjectId id,
                      const core::PositionAttribute& attr) override;
  void Remove(core::ObjectId id) override;
  /// STR bulk load of the whole fleet's o-planes: replaces the state of
  /// every listed object (and keeps other objects by re-packing them too).
  /// All rows are validated first; on error the index is unchanged. The
  /// packed-load input is emitted in ascending object-id order, so two
  /// identical stores bulk-load byte-identical trees regardless of hash-map
  /// iteration order (deterministic recovery/replay).
  util::Status BulkUpsert(
      const std::vector<std::pair<core::ObjectId, core::PositionAttribute>>&
          objects) override;
  /// Batched maintenance: validates every delta's route first (index
  /// unchanged on failure), then applies the remove+reinsert passes over
  /// the one tree without the per-call validation overhead. Understands the
  /// group-tracking rows: `hidden` deltas drop the object's boxes and keep
  /// it as a box-less entry (zero tree-node touches on later hidden
  /// updates), `boxes` deltas install the given cover verbatim.
  util::Status ApplyDeltaBatch(const std::vector<IndexDelta>& deltas) override;
  std::vector<core::ObjectId> Candidates(const geo::Polygon& region,
                                         core::Time t) const override;
  std::vector<core::ObjectId> CandidatesInWindow(const geo::Polygon& region,
                                                 core::Time t1,
                                                 core::Time t2) const override;
  /// Registers `<prefix>remove_miss` (counter), the group-row counters
  /// (`<prefix>group.hidden_upserts`, `<prefix>group.envelope_upserts`),
  /// plus the tree's page I/O instruments (`<prefix>splits`,
  /// `<prefix>pages.*` — see `RTree3::SetMetrics`) in `registry`.
  void SetMetrics(util::MetricsRegistry* registry,
                  const std::string& prefix) override;
  bool supports_group_envelopes() const override { return true; }
  /// Stateless exact candidacy test: builds the o-plane boxes `attr` would
  /// be stored under and intersects them with the probe box — byte-for-byte
  /// the predicate `CandidatesInWindow` evaluates through the tree.
  bool WouldMatchWindow(core::ObjectId id, const core::PositionAttribute& attr,
                        const geo::Polygon& region, core::Time t1,
                        core::Time t2) const override;
  /// Flushes the R*-tree's dirty pages and commits its page store.
  util::Status FlushStorage() override { return rtree_.FlushStorage(); }
  /// Candidate probes are lock-free when the tree runs its copy-on-write /
  /// epoch read scheme (in-memory storage, unbounded pool). Mutations are
  /// wrapped in tree write batches, so a reader sees each upsert's
  /// remove+insert pair atomically — never a state with an object's old
  /// plane dropped but its new one missing.
  bool lock_free_probes() const override { return rtree_.concurrent_reads(); }
  std::string_view name() const override { return "rtree"; }
  std::size_t num_objects() const override { return boxes_by_object_.size(); }
  std::size_t num_entries() const override { return rtree_.size(); }

  const RTree3& rtree() const { return rtree_; }
  const Options& options() const { return options_; }

  /// Failed box removals observed on the upsert path (0 in a healthy
  /// index; see the class comment).
  std::size_t remove_misses() const { return remove_misses_; }

  /// Mutable tree access for tests that need to provoke the
  /// internal-invariant paths (remove misses). Not part of the index API.
  RTree3& rtree_for_testing() { return rtree_; }

 private:
  /// Shared tail of `Upsert` and `ApplyDeltaBatch`: drop the old o-plane,
  /// index the new one. `route` must already be resolved for `attr`.
  /// `override_boxes` replaces the derived cover (group envelopes);
  /// `hidden` stores no boxes at all (group members).
  void UpsertValidated(core::ObjectId id, const core::PositionAttribute& attr,
                       const geo::Route& route,
                       const std::vector<geo::Box3>* override_boxes = nullptr,
                       bool hidden = false);

  const geo::RouteNetwork* network_;
  Options options_;
  RTree3 rtree_;
  std::unordered_map<core::ObjectId, std::vector<geo::Box3>> boxes_by_object_;
  std::size_t remove_misses_ = 0;
  util::Counter* remove_miss_counter_ = nullptr;  // non-owning, may be null
  util::Counter* group_hidden_counter_ = nullptr;    // non-owning
  util::Counter* group_envelope_counter_ = nullptr;  // non-owning
};

}  // namespace modb::index

#endif  // MODB_INDEX_TIMESPACE_INDEX_H_
