#ifndef MODB_INDEX_SOA_KERNEL_H_
#define MODB_INDEX_SOA_KERNEL_H_

#include <cstddef>
#include <cstdint>

#include "geo/box.h"

namespace modb::index::soa {

/// Batched box-vs-box intersection over structure-of-arrays coordinate
/// data: one fused compare per box, written branch-free so the compiler
/// auto-vectorizes the scan (benchmarked in `micro_index`'s
/// BM_SoAIntersectKernel against the per-Box3 scalar test).
///
/// Contract: every stored box and `query` must be non-empty
/// (min[d] <= max[d] for all d). Under that precondition the predicate is
/// exactly `geo::Box3::Intersects` — closed intervals, so touching faces
/// intersect — which the randomized differential suite in
/// tests/index/soa_kernel_test.cc asserts box-for-box. The R*-tree
/// guarantees the precondition for its entries (`Insert` rejects empty
/// boxes) and early-outs empty queries before reaching the kernel.
///
/// Writes the indices of intersecting boxes to `out` (the caller provides
/// at least `count` slots) and returns how many were written, in ascending
/// index order.
inline std::size_t IntersectBoxes(const double* min_x, const double* min_y,
                                  const double* min_t, const double* max_x,
                                  const double* max_y, const double* max_t,
                                  std::size_t count, const geo::Box3& query,
                                  std::uint32_t* out) {
  const double qmin_x = query.min[0];
  const double qmin_y = query.min[1];
  const double qmin_t = query.min[2];
  const double qmax_x = query.max[0];
  const double qmax_y = query.max[1];
  const double qmax_t = query.max[2];
  std::size_t hits = 0;
  for (std::size_t i = 0; i < count; ++i) {
    // Bitwise & keeps the lane evaluation branch-free; the compacting
    // store advances by 0 or 1, so the hit list stays in index order.
    const unsigned hit =
        static_cast<unsigned>(min_x[i] <= qmax_x) &
        static_cast<unsigned>(qmin_x <= max_x[i]) &
        static_cast<unsigned>(min_y[i] <= qmax_y) &
        static_cast<unsigned>(qmin_y <= max_y[i]) &
        static_cast<unsigned>(min_t[i] <= qmax_t) &
        static_cast<unsigned>(qmin_t <= max_t[i]);
    out[hits] = static_cast<std::uint32_t>(i);
    hits += hit;
  }
  return hits;
}

}  // namespace modb::index::soa

#endif  // MODB_INDEX_SOA_KERNEL_H_
