#ifndef MODB_INDEX_OPLANE_H_
#define MODB_INDEX_OPLANE_H_

#include <vector>

#include "core/position_attribute.h"
#include "core/types.h"
#include "core/uncertainty.h"
#include "geo/box.h"
#include "geo/route.h"

namespace modb::index {

/// Parameters of the o-plane approximation.
struct OPlaneOptions {
  /// How far past the update time the o-plane extends (the paper's trip
  /// cut-off Z / time span T, §4.2).
  core::Duration horizon = 60.0;
  /// Width of one time slab. Each slab becomes one 3-D box; narrower slabs
  /// give fewer false candidates but a larger index (ablation E7).
  core::Duration slab_width = 4.0;
  /// Extra spatial padding added to every box (guards callers that query
  /// with degenerate-thickness boxes).
  double padding = 0.0;
};

/// Builds the 3-D box approximation of the o-plane of an object whose
/// position attribute is `attr` on `route` (paper §4.1.1).
///
/// The o-plane is the set of uncertainty intervals { [l(t), u(t)] : t },
/// where l(t) = vt - BS(t) and u(t) = vt + BF(t). Time is discretised into
/// slabs of `slab_width`; for each slab the route stretch covered by any
/// uncertainty interval within the slab is bounded exactly (the bound
/// functions are monotone between their critical times, so sampling the
/// slab edges plus the critical times suffices), and the stretch's 2-D
/// bounding box is lifted into the slab.
std::vector<geo::Box3> BuildOPlaneBoxes(const core::PositionAttribute& attr,
                                        const geo::Route& route,
                                        const OPlaneOptions& options);

/// The 3-D representation R_G(t0) of the query "in polygon G at time t0"
/// (paper §4.1.2): G's bounding box at the time slice t0.
geo::Box3 QuerySlab(const geo::Box2& region_bbox, core::Time t0);

}  // namespace modb::index

#endif  // MODB_INDEX_OPLANE_H_
