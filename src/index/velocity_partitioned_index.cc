#include "index/velocity_partitioned_index.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace modb::index {

namespace {

constexpr double kNoUpperBound = std::numeric_limits<double>::infinity();

}  // namespace

VelocityPartitionedIndex::VelocityPartitionedIndex(
    const geo::RouteNetwork* network, Options options)
    : network_(network), options_(std::move(options)) {
  assert(network_ != nullptr);
  if (options_.num_bands == 0) options_.num_bands = 1;
  if (!options_.band_bounds.empty()) {
    // Explicit bounds (the persisted form): they define the band count.
    bounds_ = options_.band_bounds;
    std::sort(bounds_.begin(), bounds_.end());
    options_.num_bands = bounds_.size() + 1;
  }
  bands_.reserve(options_.num_bands);
  for (std::size_t b = 0; b < options_.num_bands; ++b) {
    RTree3::Options rtree_options = options_.rtree;
    if (rtree_options.storage.kind == storage::StorageKind::kDisk) {
      // Each band tree owns its own page file.
      rtree_options.storage.path += ".band" + std::to_string(b);
    }
    // Band trees are never probed concurrently with writers (this index
    // reports lock_free_probes() == false), so skip the copy-on-write /
    // epoch machinery: cross-band migrations would pay path-copy cost on
    // every move for a guarantee nothing uses.
    rtree_options.concurrent_reads = false;
    bands_.push_back(std::make_unique<Band>(rtree_options));
    bands_.back()->oplane = options_.oplane;
  }
  if (!bounds_.empty()) {
    TuneSlabWidths();
  }
}

std::size_t VelocityPartitionedIndex::TargetBand(double speed) const {
  const auto it = std::upper_bound(bounds_.begin(), bounds_.end(), speed);
  return static_cast<std::size_t>(it - bounds_.begin());
}

util::Result<std::size_t> VelocityPartitionedIndex::BandOf(
    core::ObjectId id) const {
  const auto it = objects_.find(id);
  if (it == objects_.end()) {
    return util::Status::NotFound("object " + std::to_string(id));
  }
  return it->second.band;
}

std::size_t VelocityPartitionedIndex::band_object_count(
    std::size_t band) const {
  return band < bands_.size() ? bands_[band]->objects : 0;
}

std::size_t VelocityPartitionedIndex::band_entry_count(
    std::size_t band) const {
  return band < bands_.size() ? bands_[band]->tree.size() : 0;
}

double VelocityPartitionedIndex::band_slab_width(std::size_t band) const {
  return band < bands_.size() ? bands_[band]->oplane.slab_width
                              : options_.oplane.slab_width;
}

std::size_t VelocityPartitionedIndex::num_entries() const {
  std::size_t total = 0;
  for (const auto& band : bands_) total += band->tree.size();
  return total;
}

void VelocityPartitionedIndex::TuneSlabWidths() {
  // Per-slab dead space is proportional to speed × slab_width, so each
  // band's slab shrinks by the ratio of its upper speed bound to the
  // slowest band's (the base slab width is calibrated for slow traffic).
  // The unbounded top band is rated at twice the fastest bound — a fixed
  // convention, NOT the fastest speed seen, so slab widths are a pure
  // function of the bounds and a snapshot-restored index (which gets the
  // bounds explicitly) builds boxes identical to the live one.
  if (bounds_.empty()) return;
  double v_ref = 1.0;
  for (double b : bounds_) {
    if (b > 0.0) {
      v_ref = b;
      break;
    }
  }
  const double base = options_.oplane.slab_width;
  for (std::size_t b = 0; b < bands_.size(); ++b) {
    const double v_cap =
        b < bounds_.size() ? bounds_[b] : bounds_.back() * 2.0;
    double slab = base;
    if (v_cap > v_ref) {
      slab = std::clamp(base * v_ref / v_cap, options_.min_slab_width, base);
    }
    bands_[b]->oplane.slab_width = slab;
  }
}

void VelocityPartitionedIndex::DeriveBounds() {
  // Quantile bounds: band i's upper bound is the (i+1)/num_bands speed
  // quantile, so bands start out balanced on the current fleet. Derived
  // once — bounds then stay fixed and objects migrate between the fixed
  // bands, which keeps banding stable (and snapshot-persistable).
  std::vector<double> speeds;
  speeds.reserve(objects_.size());
  for (const auto& [id, state] : objects_) {
    // Synthetic group-envelope entries are not fleet members: letting them
    // into the quantiles would make banding depend on whether group
    // tracking is on, breaking candidate-set parity with the off config.
    if (state.synthetic) continue;
    speeds.push_back(state.attr.speed);
  }
  if (speeds.empty()) return;
  std::sort(speeds.begin(), speeds.end());
  const std::size_t n = speeds.size();
  const std::size_t num_bands = bands_.size();
  bounds_.clear();
  bounds_.reserve(num_bands - 1);
  for (std::size_t i = 1; i < num_bands; ++i) {
    bounds_.push_back(speeds[std::min(n - 1, i * n / num_bands)]);
  }
  TuneSlabWidths();
}

void VelocityPartitionedIndex::RemoveBoxes(
    Band& band, core::ObjectId id, const std::vector<geo::Box3>& boxes) {
  for (const geo::Box3& box : boxes) {
    if (!band.tree.Remove(box, id)) {
      // Internal-invariant breach (the bookkeeping and the tree disagree):
      // surface it instead of silently leaking a ghost box.
      ++remove_misses_;
      if (remove_miss_counter_ != nullptr) remove_miss_counter_->Increment();
    }
  }
}

void VelocityPartitionedIndex::SyncBandGauges(Band& band) {
  if (band.objects_gauge != nullptr) {
    const auto current = static_cast<std::int64_t>(band.objects);
    band.objects_gauge->Add(current - band.pushed_objects);
    band.pushed_objects = current;
  }
  if (band.entries_gauge != nullptr) {
    const auto current = static_cast<std::int64_t>(band.tree.size());
    band.entries_gauge->Add(current - band.pushed_entries);
    band.pushed_entries = current;
  }
}

void VelocityPartitionedIndex::SetMetrics(util::MetricsRegistry* registry,
                                          const std::string& prefix) {
  // Detach first: withdraw this index's contribution from shared gauges so
  // the registry's sums stay correct.
  for (auto& band : bands_) {
    if (band->objects_gauge != nullptr) {
      band->objects_gauge->Add(-band->pushed_objects);
    }
    if (band->entries_gauge != nullptr) {
      band->entries_gauge->Add(-band->pushed_entries);
    }
    band->objects_gauge = nullptr;
    band->entries_gauge = nullptr;
    band->candidates_counter = nullptr;
    band->pushed_objects = 0;
    band->pushed_entries = 0;
    band->tree.SetMetrics(nullptr, prefix);
  }
  remove_miss_counter_ = nullptr;
  band_migration_counter_ = nullptr;
  group_hidden_counter_ = nullptr;
  group_envelope_counter_ = nullptr;
  if (registry == nullptr) return;
  for (std::size_t b = 0; b < bands_.size(); ++b) {
    const std::string base = prefix + "band" + std::to_string(b) + ".";
    bands_[b]->objects_gauge = registry->GetGauge(base + "objects");
    bands_[b]->entries_gauge = registry->GetGauge(base + "entries");
    bands_[b]->candidates_counter = registry->GetCounter(base + "candidates");
    SyncBandGauges(*bands_[b]);
    // Every band shares the same page-I/O instruments (delta pushes
    // aggregate), mirroring how shards share one registry.
    bands_[b]->tree.SetMetrics(registry, prefix);
  }
  remove_miss_counter_ = registry->GetCounter(prefix + "remove_miss");
  band_migration_counter_ = registry->GetCounter(prefix + "band_migrations");
  group_hidden_counter_ = registry->GetCounter(prefix + "group.hidden_upserts");
  group_envelope_counter_ =
      registry->GetCounter(prefix + "group.envelope_upserts");
}

util::Status VelocityPartitionedIndex::Upsert(
    core::ObjectId id, const core::PositionAttribute& attr) {
  // Resolve the route before touching any state: an unknown route is a
  // handled error in every build mode and leaves the index unchanged.
  const auto route = network_->FindRoute(attr.route);
  if (!route.ok()) return route.status();
  // A poisoned band page store would silently drop the mutation and desync
  // the per-object bookkeeping — refuse up front instead.
  if (util::Status s = BandStorageStatus(); !s.ok()) return s;
  ApplyOneValidated(id, attr, **route, nullptr);
  if (util::Status s = MaybeTriggerBanding(); !s.ok()) return s;
  return BandStorageStatus();
}

util::Status VelocityPartitionedIndex::BandStorageStatus() const {
  for (const auto& band : bands_) {
    if (util::Status s = band->tree.storage_status(); !s.ok()) return s;
  }
  return util::Status::Ok();
}

void VelocityPartitionedIndex::ApplyOneValidated(
    core::ObjectId id, const core::PositionAttribute& attr,
    const geo::Route& route, std::vector<std::uint8_t>* touched,
    const std::vector<geo::Box3>* override_boxes, bool hidden) {
  const auto it = objects_.find(id);
  std::size_t target;
  if (it == objects_.end()) {
    target = TargetBand(attr.speed);
  } else {
    // Lazy re-banding: keep the object in its band while the new speed is
    // inside the band's hysteresis envelope, so boundary oscillation does
    // not thrash between trees. Queries probe every band, so correctness
    // never depends on which band holds the object.
    const std::size_t current = it->second.band;
    const double lo = current == 0 ? 0.0 : bounds_[current - 1];
    const double hi =
        current < bounds_.size() ? bounds_[current] : kNoUpperBound;
    const double h = options_.rebanding_hysteresis;
    const bool stays = attr.speed >= lo * (1.0 - h) &&
                       (hi == kNoUpperBound || attr.speed < hi * (1.0 + h));
    target = stays ? current : TargetBand(attr.speed);
    if (target != current) {
      ++band_migrations_;
      if (band_migration_counter_ != nullptr) {
        band_migration_counter_->Increment();
      }
    }
  }

  Band& dst = *bands_[target];
  const bool synthetic = override_boxes != nullptr;
  std::vector<geo::Box3> boxes;
  if (hidden) {
    // Group-member row: the band-assignment state machine above already
    // ran (hysteresis, migration accounting — exactly what the member's
    // boxes would have done), but no tree boxes are stored: the group's
    // envelope entry covers the member. This branch is the group layer's
    // saving — a hidden update touches zero tree nodes.
    if (group_hidden_counter_ != nullptr) group_hidden_counter_->Increment();
  } else if (synthetic) {
    boxes = *override_boxes;
    if (group_envelope_counter_ != nullptr) {
      group_envelope_counter_->Increment();
    }
  } else {
    boxes = BuildOPlaneBoxes(attr, route, dst.oplane);
  }

  if (it != objects_.end()) {
    const std::size_t source = it->second.band;
    Band& src = *bands_[source];
    RemoveBoxes(src, id, it->second.boxes);
    --src.objects;
    for (const geo::Box3& box : boxes) dst.tree.Insert(box, id);
    ++dst.objects;
    if (it->second.synthetic != synthetic) {
      synthetic_count_ += synthetic ? 1 : -1;
    }
    it->second.band = target;
    it->second.attr = attr;
    it->second.boxes = std::move(boxes);
    it->second.hidden = hidden;
    it->second.synthetic = synthetic;
    if (touched != nullptr) {
      (*touched)[source] = 1;
      (*touched)[target] = 1;
    } else {
      if (&src != &dst) SyncBandGauges(src);
      SyncBandGauges(dst);
    }
  } else {
    for (const geo::Box3& box : boxes) dst.tree.Insert(box, id);
    ++dst.objects;
    if (synthetic) ++synthetic_count_;
    objects_.emplace(
        id, ObjectState{target, attr, std::move(boxes), hidden, synthetic});
    if (touched != nullptr) {
      (*touched)[target] = 1;
    } else {
      SyncBandGauges(dst);
    }
  }
}

util::Status VelocityPartitionedIndex::MaybeTriggerBanding() {
  // Lazy quantile derivation for incrementally built fleets: once enough
  // objects arrived, band the fleet and rebuild (one-time cost, amortised
  // by the packed STR load).
  if (bounds_.empty() && options_.band_bounds.empty() &&
      RealObjectCount() >= options_.banding_trigger) {
    DeriveBounds();
    return RebuildAllBands();
  }
  return util::Status::Ok();
}

void VelocityPartitionedIndex::Remove(core::ObjectId id) {
  RemoveInternal(id, nullptr);
}

void VelocityPartitionedIndex::RemoveInternal(
    core::ObjectId id, std::vector<std::uint8_t>* touched) {
  const auto it = objects_.find(id);
  if (it == objects_.end()) return;
  const std::size_t source = it->second.band;
  Band& band = *bands_[source];
  RemoveBoxes(band, id, it->second.boxes);
  --band.objects;
  if (it->second.synthetic) --synthetic_count_;
  objects_.erase(it);
  if (touched != nullptr) {
    (*touched)[source] = 1;
  } else {
    SyncBandGauges(band);
  }
}

util::Status VelocityPartitionedIndex::ApplyDeltaBatch(
    const std::vector<IndexDelta>& deltas) {
  if (util::Status s = BandStorageStatus(); !s.ok()) return s;
  // Validate every row first so a failure leaves the index unchanged.
  for (const IndexDelta& delta : deltas) {
    if (delta.attr == nullptr) continue;
    if (const auto route = network_->FindRoute(delta.attr->route);
        !route.ok()) {
      return route.status();
    }
  }
  // Apply with gauge syncing deferred: each touched band syncs once at the
  // end instead of once (or twice, on migration) per delta.
  std::vector<std::uint8_t> touched(bands_.size(), 0);
  for (const IndexDelta& delta : deltas) {
    if (delta.attr == nullptr) {
      RemoveInternal(delta.id, &touched);
      continue;
    }
    const auto route = network_->FindRoute(delta.attr->route);
    ApplyOneValidated(delta.id, *delta.attr, **route, &touched, delta.boxes,
                      delta.hidden);
  }
  for (std::size_t b = 0; b < bands_.size(); ++b) {
    if (touched[b] != 0) SyncBandGauges(*bands_[b]);
  }
  // One banding-trigger evaluation per batch (a rebuild re-syncs every
  // band gauge itself).
  if (util::Status s = MaybeTriggerBanding(); !s.ok()) return s;
  return BandStorageStatus();
}

util::Status VelocityPartitionedIndex::BulkUpsert(
    const std::vector<std::pair<core::ObjectId, core::PositionAttribute>>&
        objects) {
  if (util::Status s = BandStorageStatus(); !s.ok()) return s;
  // Validate every row first so a failure leaves the index unchanged.
  for (const auto& [id, attr] : objects) {
    if (const auto route = network_->FindRoute(attr.route); !route.ok()) {
      return route.status();
    }
  }
  for (const auto& [id, attr] : objects) {
    ObjectState& state = objects_[id];  // band and boxes assigned by rebuild
    state.attr = attr;
    // A bulk row is a plain per-object install: it materializes whatever
    // group-collapsed state the id previously had.
    state.hidden = false;
    if (state.synthetic) {
      state.synthetic = false;
      --synthetic_count_;
    }
  }
  if (bounds_.empty() && options_.band_bounds.empty() &&
      RealObjectCount() >= bands_.size()) {
    DeriveBounds();
  }
  return RebuildAllBands();
}

util::Status VelocityPartitionedIndex::RebuildAllBands() {
  // Deterministic packed rebuild: objects are processed in ascending id
  // order so each band's STR input — and therefore its tree structure — is
  // identical across runs regardless of hash-map iteration order.
  std::vector<core::ObjectId> ids;
  ids.reserve(objects_.size());
  for (const auto& [id, state] : objects_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());

  std::vector<std::vector<std::pair<geo::Box3, RTree3::Value>>> per_band(
      bands_.size());
  for (auto& band : bands_) band->objects = 0;
  for (core::ObjectId id : ids) {
    ObjectState& state = objects_[id];
    const auto route = network_->FindRoute(state.attr.route);
    if (!route.ok()) return route.status();  // validated upstream
    state.band = TargetBand(state.attr.speed);
    Band& band = *bands_[state.band];
    if (state.hidden) {
      // Hidden group members re-band (their state machine keeps running)
      // but stay box-less through rebuilds.
      state.boxes.clear();
    } else if (!state.synthetic) {
      state.boxes = BuildOPlaneBoxes(state.attr, **route, band.oplane);
    }
    // Synthetic envelope entries keep their installed cover verbatim: it
    // was built by the group layer with slab-invariant padding, so a band
    // rebuild only re-homes it.
    ++band.objects;
    for (const geo::Box3& box : state.boxes) {
      per_band[state.band].emplace_back(box, id);
    }
  }
  // The per-band STR loads are independent; fan them out when a pool is
  // attached.
  const std::function<void(std::size_t)> load = [&](std::size_t b) {
    bands_[b]->tree.BulkLoad(std::move(per_band[b]));
  };
  if (options_.pool != nullptr && bands_.size() > 1) {
    options_.pool->ParallelFor(bands_.size(), load);
  } else {
    for (std::size_t b = 0; b < bands_.size(); ++b) load(b);
  }
  for (auto& band : bands_) SyncBandGauges(*band);
  return BandStorageStatus();
}

util::Status VelocityPartitionedIndex::FlushStorage() {
  for (auto& band : bands_) {
    if (util::Status s = band->tree.FlushStorage(); !s.ok()) return s;
  }
  return util::Status::Ok();
}

bool VelocityPartitionedIndex::WouldMatchWindow(
    core::ObjectId id, const core::PositionAttribute& attr,
    const geo::Polygon& region, core::Time t1, core::Time t2) const {
  const auto route = network_->FindRoute(attr.route);
  if (!route.ok()) return false;
  // The band is path-dependent (hysteresis + banding trigger); the hidden
  // rows keep the state machine running, so the maintained band is exactly
  // the band the member's boxes would live in with group tracking off.
  const auto it = objects_.find(id);
  const std::size_t band =
      it != objects_.end() ? it->second.band : TargetBand(attr.speed);
  const std::vector<geo::Box3> boxes =
      BuildOPlaneBoxes(attr, **route, bands_[band]->oplane);
  const geo::Box3 probe(region.BoundingBox(), t1, t2);
  for (const geo::Box3& box : boxes) {
    if (box.Intersects(probe)) return true;
  }
  return false;
}

std::vector<core::ObjectId> VelocityPartitionedIndex::Candidates(
    const geo::Polygon& region, core::Time t) const {
  return CandidatesInWindow(region, t, t);
}

std::vector<core::ObjectId> VelocityPartitionedIndex::CandidatesInWindow(
    const geo::Polygon& region, core::Time t1, core::Time t2) const {
  const geo::Box3 query(region.BoundingBox(), t1, t2);
  // Fan out across the band trees into band-local buffers (no shared
  // mutable state beyond lock-free counters — the const paths stay safe
  // for concurrent readers), then merge-dedup.
  std::vector<std::vector<core::ObjectId>> per_band(bands_.size());
  const std::function<void(std::size_t)> probe = [&](std::size_t b) {
    per_band[b] = bands_[b]->tree.SearchValues(query);
    if (bands_[b]->candidates_counter != nullptr) {
      bands_[b]->candidates_counter->Increment(per_band[b].size());
    }
  };
  if (options_.pool != nullptr && bands_.size() > 1) {
    options_.pool->ParallelFor(bands_.size(), probe);
  } else {
    for (std::size_t b = 0; b < bands_.size(); ++b) probe(b);
  }
  std::size_t total = 0;
  for (const auto& ids : per_band) total += ids.size();
  std::vector<core::ObjectId> merged;
  merged.reserve(total);
  for (const auto& ids : per_band) {
    merged.insert(merged.end(), ids.begin(), ids.end());
  }
  std::sort(merged.begin(), merged.end());
  merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
  return merged;
}

}  // namespace modb::index
