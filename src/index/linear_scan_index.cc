#include "index/linear_scan_index.h"

#include <algorithm>

#include "core/uncertainty.h"

namespace modb::index {

std::vector<core::ObjectId> LinearScanIndex::Candidates(
    const geo::Polygon& region, core::Time t) const {
  return CandidatesInWindow(region, t, t);
}

std::vector<core::ObjectId> LinearScanIndex::CandidatesInWindow(
    const geo::Polygon& region, core::Time t1, core::Time t2) const {
  const geo::Box2 region_box = region.BoundingBox();
  std::vector<core::ObjectId> out;
  for (const auto& [id, attr] : attrs_) {
    const auto route = network_->FindRoute(attr.route);
    if (!route.ok()) continue;
    const core::UncertaintyInterval span =
        core::ComputeUncertaintySpan(attr, **route, t1, t2);
    const geo::Box2 span_box =
        (*route)->shape().BoundingBoxBetween(span.lo, span.hi);
    if (region_box.Intersects(span_box)) out.push_back(id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace modb::index
