#ifndef MODB_INDEX_VELOCITY_PARTITIONED_INDEX_H_
#define MODB_INDEX_VELOCITY_PARTITIONED_INDEX_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "geo/route_network.h"
#include "index/object_index.h"
#include "index/oplane.h"
#include "index/rtree3.h"
#include "util/thread_pool.h"

namespace modb::index {

/// Velocity-partitioned variant of the paper's §4.2 time-space index.
///
/// One R*-tree over the whole fleet mixes slow and fast objects: a fast
/// object's per-slab o-plane box covers `speed × slab_width` of route, so a
/// handful of highway objects inflate node MBRs with dead space and drag
/// candidate precision down for everyone (the problem speed/velocity
/// partitioning solves — arXiv:1411.4940, arXiv:1205.6697). This index
/// splits the fleet into speed bands; each band owns its own R*-tree with a
/// band-tuned slab width (fast bands get proportionally narrower slabs so
/// per-slab dead space stays bounded), and queries fan out across the band
/// trees — optionally in parallel on a `util::ThreadPool` — and merge-dedup.
///
/// Band assignment:
///  - Bounds are either given explicitly (`Options::band_bounds`, ascending
///    upper speed bounds — the persisted form, so a restored snapshot bands
///    identically to the live store) or derived once from fleet speed
///    quantiles: at the first `BulkUpsert` with at least `num_bands`
///    objects, or lazily after `banding_trigger` incremental upserts.
///    Until bounds exist every object lives in band 0 with the base slab.
///  - An object whose updated speed crosses its band boundary re-bands
///    lazily: migration happens only when the new speed leaves the band's
///    `[lo·(1−h), hi·(1+h)]` hysteresis envelope, so objects oscillating
///    around a boundary do not thrash between trees. Queries probe every
///    band, so an object is found correctly whichever band holds it.
///
/// Maintenance-path error handling matches `TimeSpaceIndex`: unknown route
/// is a handled NotFound in every build mode (index unchanged); a failed
/// box removal bumps `<prefix>remove_miss` / `remove_misses()` instead of
/// being silently ignored.
///
/// Satisfies the `ObjectIndex` thread-compatibility contract: const query
/// paths only walk the band trees into query-local buffers (counter bumps
/// are lock-free atomics), so concurrent readers are safe under a shared
/// lock.
class VelocityPartitionedIndex final : public ObjectIndex {
 public:
  struct Options {
    /// Number of speed bands (>= 1; 0 is promoted to 1).
    std::size_t num_bands = 3;
    /// Explicit ascending upper speed bounds between bands (band b covers
    /// [band_bounds[b-1], band_bounds[b])). When non-empty it overrides
    /// `num_bands` (bands = bounds + 1) and disables quantile derivation —
    /// this is the form the snapshot persists.
    std::vector<double> band_bounds;
    /// Hysteresis fraction for lazy re-banding (see class comment).
    double rebanding_hysteresis = 0.1;
    /// Incremental-upsert count that triggers quantile derivation when no
    /// explicit bounds were given.
    std::size_t banding_trigger = 256;
    /// Fast bands shrink their slab width by the ratio of their upper
    /// speed bound to the slowest band's, clamped to this floor.
    double min_slab_width = 0.5;
    /// Base o-plane parameters; `oplane.slab_width` is the slowest band's
    /// slab.
    OPlaneOptions oplane;
    RTree3::Options rtree;
    /// Optional pool for band-parallel query fan-out (non-owning; must
    /// outlive the index). nullptr probes bands serially.
    util::ThreadPool* pool = nullptr;
  };

  /// `network` must outlive the index.
  VelocityPartitionedIndex(const geo::RouteNetwork* network, Options options);
  explicit VelocityPartitionedIndex(const geo::RouteNetwork* network)
      : VelocityPartitionedIndex(network, Options{}) {}

  util::Status Upsert(core::ObjectId id,
                      const core::PositionAttribute& attr) override;
  void Remove(core::ObjectId id) override;
  /// Packed rebuild of every band: all rows validated first (index
  /// unchanged on failure), quantile bounds derived here when not yet
  /// banded, and each band's STR input emitted in ascending id order so
  /// identical stores load identical trees.
  util::Status BulkUpsert(
      const std::vector<std::pair<core::ObjectId, core::PositionAttribute>>&
          objects) override;
  /// Batched maintenance grouped per band: all rows validated first (index
  /// unchanged on failure), gauge syncing deferred to one pass over the
  /// touched bands, and the lazy banding trigger evaluated once per batch
  /// instead of once per delta. Understands the group-tracking rows:
  /// `hidden` deltas keep running the band-assignment state machine
  /// (hysteresis, migration accounting — the state `WouldMatchWindow`
  /// consults) but store no tree boxes; `boxes` deltas install the given
  /// cover verbatim under a synthetic entry that is excluded from the
  /// banding statistics (trigger count, quantile derivation), so enabling
  /// group tracking cannot shift when or where the fleet gets banded.
  util::Status ApplyDeltaBatch(const std::vector<IndexDelta>& deltas) override;
  std::vector<core::ObjectId> Candidates(const geo::Polygon& region,
                                         core::Time t) const override;
  std::vector<core::ObjectId> CandidatesInWindow(const geo::Polygon& region,
                                                 core::Time t1,
                                                 core::Time t2) const override;
  /// Registers, per band b: gauges `<prefix>band<b>.objects` and
  /// `<prefix>band<b>.entries` (signed-delta updates, so shards sharing a
  /// registry aggregate as sums) and counter `<prefix>band<b>.candidates`
  /// (candidates returned by that band's tree); plus counters
  /// `<prefix>remove_miss` and `<prefix>band_migrations`.
  void SetMetrics(util::MetricsRegistry* registry,
                  const std::string& prefix) override;
  bool supports_group_envelopes() const override { return true; }
  /// Exact candidacy test against the maintained per-object state: the
  /// band a hidden member sits in is path-dependent (hysteresis, banding
  /// trigger), so the test uses the band the state machine actually holds
  /// for `id` — the same band the object's boxes would live in with group
  /// tracking off — and that band's slab width to build the boxes.
  bool WouldMatchWindow(core::ObjectId id, const core::PositionAttribute& attr,
                        const geo::Polygon& region, core::Time t1,
                        core::Time t2) const override;
  /// Flushes every band tree's dirty pages and commits its page store.
  util::Status FlushStorage() override;
  std::string_view name() const override { return "vp-rtree"; }
  std::size_t num_objects() const override { return objects_.size(); }
  std::size_t num_entries() const override;

  const Options& options() const { return options_; }
  std::size_t num_bands() const { return bands_.size(); }
  /// Derived or explicit upper speed bounds (empty until banding kicks in).
  const std::vector<double>& band_bounds() const { return bounds_; }
  bool banded() const { return !bounds_.empty(); }
  /// Band currently holding `id` (NotFound for unknown objects).
  util::Result<std::size_t> BandOf(core::ObjectId id) const;
  /// Band a fresh object of `speed` would be assigned to.
  std::size_t TargetBand(double speed) const;
  std::size_t band_object_count(std::size_t band) const;
  std::size_t band_entry_count(std::size_t band) const;
  /// Slab width band `band`'s boxes are built with.
  double band_slab_width(std::size_t band) const;
  std::size_t band_migrations() const { return band_migrations_; }
  std::size_t remove_misses() const { return remove_misses_; }

 private:
  struct Band {
    explicit Band(const RTree3::Options& rtree_options)
        : tree(rtree_options) {}
    RTree3 tree;
    OPlaneOptions oplane;
    std::size_t objects = 0;
    // Metrics handles (owned by the registry) and the value last pushed,
    // so shared gauges are updated by signed delta.
    util::Gauge* objects_gauge = nullptr;
    util::Gauge* entries_gauge = nullptr;
    util::Counter* candidates_counter = nullptr;
    std::int64_t pushed_objects = 0;
    std::int64_t pushed_entries = 0;
  };
  struct ObjectState {
    std::size_t band = 0;
    core::PositionAttribute attr;
    std::vector<geo::Box3> boxes;
    /// Group member stored without tree boxes (band state still evolves).
    bool hidden = false;
    /// Group-envelope entry under a synthetic id: its boxes are installed
    /// verbatim (and preserved across band rebuilds); it never counts
    /// toward the banding trigger or the speed quantiles.
    bool synthetic = false;
  };

  /// Speed-quantile bounds over the current fleet; also retunes each
  /// band's slab width. Requires objects.
  void DeriveBounds();
  /// Recomputes every band's slab width as a pure function of `bounds_`
  /// (so persisted bounds reproduce identical boxes on restore).
  void TuneSlabWidths();
  /// Rebuilds every band tree from `objects_` with the packed STR path,
  /// re-banding each object by its current speed. Deterministic (sorted
  /// ids).
  util::Status RebuildAllBands();
  void RemoveBoxes(Band& band, core::ObjectId id,
                   const std::vector<geo::Box3>& boxes);
  void SyncBandGauges(Band& band);
  /// Shared core of `Upsert` and `ApplyDeltaBatch`: band selection with
  /// hysteresis, box replacement, migration accounting. `route` must be
  /// resolved for `attr`. A non-null `touched` defers gauge syncing — the
  /// touched band indexes are marked instead of synced per call.
  void ApplyOneValidated(core::ObjectId id, const core::PositionAttribute& attr,
                         const geo::Route& route,
                         std::vector<std::uint8_t>* touched,
                         const std::vector<geo::Box3>* override_boxes = nullptr,
                         bool hidden = false);
  /// Real (non-synthetic) object count — the fleet size the banding
  /// trigger and quantiles run on.
  std::size_t RealObjectCount() const {
    return objects_.size() - synthetic_count_;
  }
  /// `Remove` with the same deferred-gauge option as `ApplyOneValidated`.
  void RemoveInternal(core::ObjectId id, std::vector<std::uint8_t>* touched);
  /// Runs the lazy quantile banding once enough objects arrived (see the
  /// class comment); evaluated per upsert, or once per delta batch.
  util::Status MaybeTriggerBanding();
  /// First storage poison across the band trees, if any.
  util::Status BandStorageStatus() const;

  const geo::RouteNetwork* network_;
  Options options_;
  std::vector<std::unique_ptr<Band>> bands_;
  std::vector<double> bounds_;  // ascending; empty until banded
  std::unordered_map<core::ObjectId, ObjectState> objects_;
  std::size_t band_migrations_ = 0;
  std::size_t remove_misses_ = 0;
  std::size_t synthetic_count_ = 0;
  util::Counter* remove_miss_counter_ = nullptr;      // non-owning
  util::Counter* band_migration_counter_ = nullptr;   // non-owning
  util::Counter* group_hidden_counter_ = nullptr;     // non-owning
  util::Counter* group_envelope_counter_ = nullptr;   // non-owning
};

}  // namespace modb::index

#endif  // MODB_INDEX_VELOCITY_PARTITIONED_INDEX_H_
