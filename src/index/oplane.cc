#include "index/oplane.h"

#include <algorithm>
#include <cmath>

#include "core/bounds.h"

namespace modb::index {

std::vector<geo::Box3> BuildOPlaneBoxes(const core::PositionAttribute& attr,
                                        const geo::Route& route,
                                        const OPlaneOptions& options) {
  std::vector<geo::Box3> boxes;
  if (options.horizon <= 0.0 || options.slab_width <= 0.0) return boxes;

  const core::Time t0 = attr.start_time;
  const core::Time t_end = t0 + options.horizon;

  const auto num_slabs = static_cast<std::size_t>(
      std::ceil(options.horizon / options.slab_width));
  boxes.reserve(num_slabs);

  for (std::size_t s = 0; s < num_slabs; ++s) {
    const core::Time slab_lo = t0 + options.slab_width * static_cast<double>(s);
    const core::Time slab_hi = std::min(
        t0 + options.slab_width * static_cast<double>(s + 1), t_end);

    // Exact route stretch any uncertainty interval within the slab covers
    // (the span samples the slab edges plus the bound critical times).
    const core::UncertaintyInterval span =
        core::ComputeUncertaintySpan(attr, route, slab_lo, slab_hi);

    geo::Box2 bbox = route.shape().BoundingBoxBetween(span.lo, span.hi);
    if (options.padding > 0.0) bbox.Inflate(options.padding);
    boxes.emplace_back(bbox, slab_lo, slab_hi);
  }
  return boxes;
}

geo::Box3 QuerySlab(const geo::Box2& region_bbox, core::Time t0) {
  return geo::Box3(region_bbox, t0, t0);
}

}  // namespace modb::index
