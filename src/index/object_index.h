#ifndef MODB_INDEX_OBJECT_INDEX_H_
#define MODB_INDEX_OBJECT_INDEX_H_

#include <cstddef>
#include <string_view>
#include <utility>
#include <vector>

#include "core/position_attribute.h"
#include "core/types.h"
#include "geo/box.h"
#include "geo/polygon.h"
#include "util/metrics.h"
#include "util/status.h"

namespace modb::index {

/// One element of a batched index-maintenance pass: install `attr` as the
/// motion model of `id`, or remove `id` when `attr` is null. The pointed-to
/// attribute must stay alive for the duration of the `ApplyDeltaBatch`
/// call (the batch write path points into its own merged-attribute
/// buffer rather than copying).
///
/// Group-tracking extensions (only used against indexes that return true
/// from `supports_group_envelopes()`; the database never sends them
/// otherwise):
///  - `hidden`: install `attr` as the object's motion model for the
///    index's *per-object state* (velocity-band membership, the attribute
///    consulted by `WouldMatchWindow`) but store **no tree boxes** for it.
///    The object is covered by its group's envelope entry instead; hidden
///    upserts are the group layer's saving — they touch no tree nodes.
///  - `boxes`: explicit 3-D cover overriding the boxes the index would
///    derive from `attr` (the group-envelope entries under synthetic ids).
///    Like `attr`, the pointed-to vector must outlive the call; the index
///    copies what it keeps. Mutually exclusive with `hidden`.
struct IndexDelta {
  core::ObjectId id = core::kInvalidObjectId;
  const core::PositionAttribute* attr = nullptr;  // null = remove
  const std::vector<geo::Box3>* boxes = nullptr;  // non-null = override
  bool hidden = false;  // true = state-only upsert, no tree boxes
};

/// Access method the database uses to answer range queries over moving
/// objects. Implementations return a *superset* of the objects whose
/// uncertainty interval can intersect the query region at time `t`
/// (candidates); the database refines candidates with the exact
/// MUST / MAY classification.
///
/// Thread-compatibility contract: the const methods (`Candidates`,
/// `CandidatesInWindow`, the size accessors) must be safe to call
/// concurrently from multiple threads as long as no thread is in a
/// mutating method — i.e. implementations must not mutate hidden state
/// (no `mutable` caches) from const paths. The sharded database relies on
/// this to run fan-out queries under shared (reader) locks.
class ObjectIndex {
 public:
  virtual ~ObjectIndex() = default;

  /// Inserts `id` or replaces its stored motion model with `attr`
  /// (a position update, paper §4.2: drop the old o-plane, index the new).
  /// An attribute naming an unknown route is a handled error (NotFound)
  /// that leaves the index unchanged — never undefined behaviour, in any
  /// build mode.
  virtual util::Status Upsert(core::ObjectId id,
                              const core::PositionAttribute& attr) = 0;

  /// Removes `id` from the index (end of trip).
  virtual void Remove(core::ObjectId id) = 0;

  /// Bulk variant of `Upsert` for the initial fleet load. The default
  /// loops over `Upsert` and stops at the first error (objects before it
  /// stay applied); implementations may override with a packed build that
  /// validates every row first and leaves the index unchanged on failure
  /// (the R*-tree uses STR bulk loading).
  virtual util::Status BulkUpsert(
      const std::vector<std::pair<core::ObjectId, core::PositionAttribute>>&
          objects) {
    for (const auto& [id, attr] : objects) {
      if (util::Status s = Upsert(id, attr); !s.ok()) return s;
    }
    return util::Status::Ok();
  }

  /// Applies a batch of deltas — the index-delta stage of the batched
  /// write path. Deltas are applied in order; each object appears at most
  /// once per batch (the database dedups to the final attribute before
  /// calling). Implementations should validate every row first so a
  /// failure (unknown route) leaves the index unchanged, and may group the
  /// per-tree/per-band work so a batch costs less than the equivalent
  /// `Upsert`/`Remove` loop — all three in-tree indexes do both. The
  /// default is the plain loop, which stops at the first error with the
  /// deltas before it applied; the database pre-validates every attribute,
  /// so with an in-tree index a mid-batch failure is an internal-invariant
  /// breach, not a reachable state.
  virtual util::Status ApplyDeltaBatch(const std::vector<IndexDelta>& deltas) {
    for (const IndexDelta& delta : deltas) {
      if (delta.attr == nullptr) {
        Remove(delta.id);
        continue;
      }
      if (util::Status s = Upsert(delta.id, *delta.attr); !s.ok()) return s;
    }
    return util::Status::Ok();
  }

  /// Ids of objects that may be inside `region` at time `t` (superset).
  virtual std::vector<core::ObjectId> Candidates(const geo::Polygon& region,
                                                 core::Time t) const = 0;

  /// Ids of objects that may be inside `region` at *some* time in
  /// [t1, t2] (superset). Time-window variant used by interval queries.
  virtual std::vector<core::ObjectId> CandidatesInWindow(
      const geo::Polygon& region, core::Time t1, core::Time t2) const = 0;

  /// Registers this index's instruments in `registry` under `prefix`
  /// (nullptr detaches). The registry must outlive the index. Default
  /// no-op; implementations document what they register (e.g. the
  /// time-space index's `<prefix>remove_miss`, the velocity-partitioned
  /// index's per-band gauges). Gauge updates use signed deltas, so several
  /// indexes sharing one registry and prefix (the sharded layer) aggregate
  /// as sums.
  virtual void SetMetrics(util::MetricsRegistry* registry,
                          const std::string& prefix) {
    (void)registry;
    (void)prefix;
  }

  /// Writes any dirty index pages back to the backing page store and
  /// commits it. The checkpoint protocol calls this before publishing a
  /// snapshot so a disk-backed index's page file is consistent with the
  /// snapshotted tree; a checkpoint flushes only dirty pages. Default
  /// no-op for indexes without page-backed storage.
  virtual util::Status FlushStorage() { return util::Status::Ok(); }

  /// True when this index understands the group-tracking delta extensions
  /// (`IndexDelta::hidden`, `IndexDelta::boxes`) and implements
  /// `WouldMatchWindow` exactly. The database only routes group-collapsed
  /// deltas to indexes that opt in; against others (the linear scan) the
  /// group layer degrades to plain per-object rows.
  virtual bool supports_group_envelopes() const { return false; }

  /// Exact membership test of the index's own candidate predicate: would
  /// `id` — if it were stored as a normal (non-hidden) entry with motion
  /// model `attr` — be returned by `CandidatesInWindow(region, t1, t2)`?
  /// Point-in-time queries pass t1 == t2. Used by group-envelope expansion
  /// to reproduce the exact candidate set the index would produce with
  /// group tracking off (a superset is NOT enough: the o-plane horizon
  /// makes index filtering semantically lossy, so byte-identical answers
  /// need byte-identical candidacy). Implementations that return true from
  /// `supports_group_envelopes()` must override; the default conservative
  /// `true` is never reached in-tree.
  virtual bool WouldMatchWindow(core::ObjectId id,
                                const core::PositionAttribute& attr,
                                const geo::Polygon& region, core::Time t1,
                                core::Time t2) const {
    (void)id;
    (void)attr;
    (void)region;
    (void)t1;
    (void)t2;
    return true;
  }

  /// True when the const query paths are additionally safe to call
  /// concurrently with the mutating methods (not just with each other) —
  /// i.e. the implementation publishes mutations atomically to readers
  /// (the time-space index over a resident copy-on-write R*-tree). The
  /// sharded database uses this to probe candidates without holding the
  /// shard's reader lock. Writers always keep external mutual exclusion.
  virtual bool lock_free_probes() const { return false; }

  /// Implementation name for reports ("rtree", "scan", "vp-rtree").
  virtual std::string_view name() const = 0;

  /// Number of objects currently indexed.
  virtual std::size_t num_objects() const = 0;

  /// Storage entries backing the index (3-D boxes for the R*-tree, one per
  /// object for the scan); reported by the index-size benchmarks.
  virtual std::size_t num_entries() const = 0;
};

}  // namespace modb::index

#endif  // MODB_INDEX_OBJECT_INDEX_H_
