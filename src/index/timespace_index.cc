#include "index/timespace_index.h"

#include <algorithm>
#include <cassert>

namespace modb::index {

TimeSpaceIndex::TimeSpaceIndex(const geo::RouteNetwork* network)
    : TimeSpaceIndex(network, Options{}) {}

TimeSpaceIndex::TimeSpaceIndex(const geo::RouteNetwork* network,
                               Options options)
    : network_(network), options_(options), rtree_(options.rtree) {
  assert(network_ != nullptr);
}

void TimeSpaceIndex::SetMetrics(util::MetricsRegistry* registry,
                                const std::string& prefix) {
  remove_miss_counter_ =
      registry == nullptr ? nullptr : registry->GetCounter(prefix + "remove_miss");
  group_hidden_counter_ =
      registry == nullptr ? nullptr
                          : registry->GetCounter(prefix + "group.hidden_upserts");
  group_envelope_counter_ =
      registry == nullptr
          ? nullptr
          : registry->GetCounter(prefix + "group.envelope_upserts");
  rtree_.SetMetrics(registry, prefix);
}

util::Status TimeSpaceIndex::Upsert(core::ObjectId id,
                                    const core::PositionAttribute& attr) {
  // Resolve the route before touching any state: an unknown route is a
  // handled error in every build mode, not an assert, and must leave the
  // object's old plane intact.
  const auto route = network_->FindRoute(attr.route);
  if (!route.ok()) return route.status();
  // A poisoned page store would silently drop the mutation and desync the
  // per-object bookkeeping — refuse up front instead.
  if (util::Status s = rtree_.storage_status(); !s.ok()) return s;
  UpsertValidated(id, attr, **route);
  return rtree_.storage_status();
}

void TimeSpaceIndex::UpsertValidated(core::ObjectId id,
                                     const core::PositionAttribute& attr,
                                     const geo::Route& route,
                                     const std::vector<geo::Box3>* override_boxes,
                                     bool hidden) {
  // Publish the remove+insert pair as one unit to lock-free readers: a
  // candidate probe must never observe the old plane gone with the new one
  // not yet indexed (that would be a false negative, violating MUST
  // soundness).
  RTree3::BatchScope batch(rtree_);
  std::vector<geo::Box3> boxes;
  if (hidden) {
    // Group-member row: the object stays known (so `Remove`/`BulkUpsert`
    // bookkeeping works) but owns no tree boxes — its group's envelope
    // entry covers it. This branch is the group layer's saving: after the
    // first hidden install, later hidden updates touch zero tree nodes.
    if (group_hidden_counter_ != nullptr) group_hidden_counter_->Increment();
  } else if (override_boxes != nullptr) {
    boxes = *override_boxes;
    if (group_envelope_counter_ != nullptr) {
      group_envelope_counter_->Increment();
    }
  } else {
    boxes = BuildOPlaneBoxes(attr, route, options_.oplane);
  }
  // Drop the old o-plane (paper §4.2: remove the object id from the index
  // rectangles intersecting p1) ...
  auto it = boxes_by_object_.find(id);
  if (it != boxes_by_object_.end()) {
    for (const geo::Box3& box : it->second) {
      if (!rtree_.Remove(box, id)) {
        // Internal-invariant breach: the bookkeeping says this box exists
        // but the tree disagrees. Count it (a stale ghost box would mean
        // duplicate candidates / leaked entries) and keep going — the new
        // plane below is still installed correctly.
        ++remove_misses_;
        if (remove_miss_counter_ != nullptr) remove_miss_counter_->Increment();
      }
    }
    it->second.clear();
  }
  // ... and index the new one (insert into the rectangles intersecting p2).
  for (const geo::Box3& box : boxes) rtree_.Insert(box, id);
  boxes_by_object_[id] = std::move(boxes);
}

util::Status TimeSpaceIndex::ApplyDeltaBatch(
    const std::vector<IndexDelta>& deltas) {
  if (util::Status s = rtree_.storage_status(); !s.ok()) return s;
  // Validate every row first so a failure leaves the index unchanged.
  for (const IndexDelta& delta : deltas) {
    if (delta.attr == nullptr) continue;
    if (const auto route = network_->FindRoute(delta.attr->route);
        !route.ok()) {
      return route.status();
    }
  }
  // One pass over the tree: the per-delta work is the same remove+reinsert
  // as `Upsert`, minus the repeated validation. The whole batch publishes
  // to lock-free readers at once.
  RTree3::BatchScope batch(rtree_);
  for (const IndexDelta& delta : deltas) {
    if (delta.attr == nullptr) {
      Remove(delta.id);
      continue;
    }
    const auto route = network_->FindRoute(delta.attr->route);
    UpsertValidated(delta.id, *delta.attr, **route, delta.boxes, delta.hidden);
  }
  return rtree_.storage_status();
}

bool TimeSpaceIndex::WouldMatchWindow(core::ObjectId id,
                                      const core::PositionAttribute& attr,
                                      const geo::Polygon& region, core::Time t1,
                                      core::Time t2) const {
  (void)id;  // the time-space predicate depends only on the attribute
  const auto route = network_->FindRoute(attr.route);
  if (!route.ok()) return false;
  const std::vector<geo::Box3> boxes =
      BuildOPlaneBoxes(attr, **route, options_.oplane);
  const geo::Box3 probe(region.BoundingBox(), t1, t2);
  for (const geo::Box3& box : boxes) {
    if (box.Intersects(probe)) return true;
  }
  return false;
}

util::Status TimeSpaceIndex::BulkUpsert(
    const std::vector<std::pair<core::ObjectId, core::PositionAttribute>>&
        objects) {
  if (util::Status s = rtree_.storage_status(); !s.ok()) return s;
  // Validate every row first so a failure leaves the index unchanged.
  for (const auto& [id, attr] : objects) {
    if (const auto route = network_->FindRoute(attr.route); !route.ok()) {
      return route.status();
    }
  }
  // Build every listed object's new boxes, keep the boxes of unlisted
  // objects, then rebuild the tree in one packed pass.
  for (const auto& [id, attr] : objects) {
    const auto route = network_->FindRoute(attr.route);
    boxes_by_object_[id] = BuildOPlaneBoxes(attr, **route, options_.oplane);
  }
  // Emit the packed-load input in ascending id order (the map iterates in
  // hash order, which varies between otherwise-identical stores): identical
  // logical contents must bulk-load structurally identical trees so
  // recovery/replay is deterministic.
  std::vector<const std::pair<const core::ObjectId, std::vector<geo::Box3>>*>
      ordered;
  ordered.reserve(boxes_by_object_.size());
  std::size_t total_boxes = 0;
  for (const auto& entry : boxes_by_object_) {
    ordered.push_back(&entry);
    total_boxes += entry.second.size();
  }
  std::sort(ordered.begin(), ordered.end(),
            [](const auto* a, const auto* b) { return a->first < b->first; });
  std::vector<std::pair<geo::Box3, RTree3::Value>> entries;
  entries.reserve(total_boxes);
  for (const auto* entry : ordered) {
    for (const geo::Box3& box : entry->second) {
      entries.emplace_back(box, entry->first);
    }
  }
  rtree_.BulkLoad(std::move(entries));
  return rtree_.storage_status();
}

void TimeSpaceIndex::Remove(core::ObjectId id) {
  auto it = boxes_by_object_.find(id);
  if (it == boxes_by_object_.end()) return;
  // All of the object's boxes vanish from lock-free readers atomically.
  RTree3::BatchScope batch(rtree_);
  for (const geo::Box3& box : it->second) {
    if (!rtree_.Remove(box, id)) {
      ++remove_misses_;
      if (remove_miss_counter_ != nullptr) remove_miss_counter_->Increment();
    }
  }
  boxes_by_object_.erase(it);
}

std::vector<core::ObjectId> TimeSpaceIndex::Candidates(
    const geo::Polygon& region, core::Time t) const {
  return CandidatesInWindow(region, t, t);
}

std::vector<core::ObjectId> TimeSpaceIndex::CandidatesInWindow(
    const geo::Polygon& region, core::Time t1, core::Time t2) const {
  std::vector<core::ObjectId> ids =
      rtree_.SearchValues(geo::Box3(region.BoundingBox(), t1, t2));
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

}  // namespace modb::index
