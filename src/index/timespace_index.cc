#include "index/timespace_index.h"

#include <algorithm>
#include <cassert>

namespace modb::index {

TimeSpaceIndex::TimeSpaceIndex(const geo::RouteNetwork* network)
    : TimeSpaceIndex(network, Options{}) {}

TimeSpaceIndex::TimeSpaceIndex(const geo::RouteNetwork* network,
                               Options options)
    : network_(network), options_(options), rtree_(options.rtree) {
  assert(network_ != nullptr);
}

void TimeSpaceIndex::Upsert(core::ObjectId id,
                            const core::PositionAttribute& attr) {
  // Drop the old o-plane (paper §4.2: remove the object id from the index
  // rectangles intersecting p1) ...
  auto it = boxes_by_object_.find(id);
  if (it != boxes_by_object_.end()) {
    for (const geo::Box3& box : it->second) {
      const bool removed = rtree_.Remove(box, id);
      assert(removed);
      (void)removed;
    }
    it->second.clear();
  }
  // ... and index the new one (insert into the rectangles intersecting p2).
  const auto route = network_->FindRoute(attr.route);
  assert(route.ok());
  std::vector<geo::Box3> boxes =
      BuildOPlaneBoxes(attr, **route, options_.oplane);
  for (const geo::Box3& box : boxes) rtree_.Insert(box, id);
  boxes_by_object_[id] = std::move(boxes);
}

void TimeSpaceIndex::BulkUpsert(
    const std::vector<std::pair<core::ObjectId, core::PositionAttribute>>&
        objects) {
  // Build every listed object's new boxes, keep the boxes of unlisted
  // objects, then rebuild the tree in one packed pass.
  for (const auto& [id, attr] : objects) {
    const auto route = network_->FindRoute(attr.route);
    assert(route.ok());
    boxes_by_object_[id] = BuildOPlaneBoxes(attr, **route, options_.oplane);
  }
  std::size_t total_boxes = 0;
  for (const auto& [id, boxes] : boxes_by_object_) {
    total_boxes += boxes.size();
  }
  std::vector<std::pair<geo::Box3, RTree3::Value>> entries;
  entries.reserve(total_boxes);
  for (const auto& [id, boxes] : boxes_by_object_) {
    for (const geo::Box3& box : boxes) entries.emplace_back(box, id);
  }
  rtree_.BulkLoad(std::move(entries));
}

void TimeSpaceIndex::Remove(core::ObjectId id) {
  auto it = boxes_by_object_.find(id);
  if (it == boxes_by_object_.end()) return;
  for (const geo::Box3& box : it->second) rtree_.Remove(box, id);
  boxes_by_object_.erase(it);
}

std::vector<core::ObjectId> TimeSpaceIndex::Candidates(
    const geo::Polygon& region, core::Time t) const {
  return CandidatesInWindow(region, t, t);
}

std::vector<core::ObjectId> TimeSpaceIndex::CandidatesInWindow(
    const geo::Polygon& region, core::Time t1, core::Time t2) const {
  std::vector<core::ObjectId> ids =
      rtree_.SearchValues(geo::Box3(region.BoundingBox(), t1, t2));
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

}  // namespace modb::index
