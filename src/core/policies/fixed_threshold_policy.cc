#include "core/policies/policies.h"

namespace modb::core {

std::optional<UpdateDecision> FixedThresholdPolicy::Decide(
    const DeviationTracker& tracker, Time /*now*/, double current_speed) {
  if (tracker.current_deviation() < config_.fixed_threshold) {
    return std::nullopt;
  }
  return UpdateDecision{current_speed};
}

}  // namespace modb::core
