#include "core/policies/policies.h"

namespace modb::core {

std::optional<UpdateDecision> PeriodicPolicy::Decide(
    const DeviationTracker& tracker, Time now, double /*current_speed*/) {
  (void)tracker;
  // Half-tick tolerance so floating-point drift never skips a report.
  if (now - last_report_time_ < config_.period - 1e-9) return std::nullopt;
  // The traditional method stores no motion model: declared speed 0.
  return UpdateDecision{0.0};
}

}  // namespace modb::core
