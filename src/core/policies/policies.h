#ifndef MODB_CORE_POLICIES_POLICIES_H_
#define MODB_CORE_POLICIES_POLICIES_H_

#include "core/update_policy.h"

namespace modb::core {

/// The delayed-linear (dl) policy (paper §3.2): delayed-linear estimator,
/// simple fitting, predicted speed = current speed. Updates when the
/// deviation reaches k_opt = sqrt(a^2 b^2 + 2 a C) - a b.
class DelayedLinearPolicy final : public UpdatePolicy {
 public:
  explicit DelayedLinearPolicy(const PolicyConfig& config)
      : UpdatePolicy(config) {}

  PolicyKind kind() const override { return PolicyKind::kDelayedLinear; }
  std::optional<UpdateDecision> Decide(const DeviationTracker& tracker,
                                       Time now,
                                       double current_speed) override;
};

/// The average immediate-linear (ail) policy (paper §3.2): immediate-linear
/// estimator, simple fitting, predicted speed = average speed since the last
/// update. Updates when the deviation reaches sqrt(2 a C), i.e. 2C/t under
/// simple fitting (eq. 3).
class AverageImmediateLinearPolicy final : public UpdatePolicy {
 public:
  explicit AverageImmediateLinearPolicy(const PolicyConfig& config)
      : UpdatePolicy(config) {}

  PolicyKind kind() const override {
    return PolicyKind::kAverageImmediateLinear;
  }
  std::optional<UpdateDecision> Decide(const DeviationTracker& tracker,
                                       Time now,
                                       double current_speed) override;
};

/// The current immediate-linear (cil) policy (paper §3.4): like ail but the
/// declared speed is the current speed.
class CurrentImmediateLinearPolicy final : public UpdatePolicy {
 public:
  explicit CurrentImmediateLinearPolicy(const PolicyConfig& config)
      : UpdatePolicy(config) {}

  PolicyKind kind() const override {
    return PolicyKind::kCurrentImmediateLinear;
  }
  std::optional<UpdateDecision> Decide(const DeviationTracker& tracker,
                                       Time now,
                                       double current_speed) override;
};

/// Classical dead reckoning with an a-priori threshold B (the alternative
/// discussed in the paper's conclusion): update whenever the deviation
/// exceeds B, declaring the current speed. B is independent of the update
/// cost — the weakness the cost-based policies fix.
class FixedThresholdPolicy final : public UpdatePolicy {
 public:
  explicit FixedThresholdPolicy(const PolicyConfig& config)
      : UpdatePolicy(config) {}

  PolicyKind kind() const override { return PolicyKind::kFixedThreshold; }
  std::optional<UpdateDecision> Decide(const DeviationTracker& tracker,
                                       Time now,
                                       double current_speed) override;
};

/// The traditional non-temporal method (paper §1): the database stores a
/// plain position (no motion model, declared speed 0) and the object
/// re-reports its raw position every `period` time units.
class PeriodicPolicy final : public UpdatePolicy {
 public:
  explicit PeriodicPolicy(const PolicyConfig& config) : UpdatePolicy(config) {}

  PolicyKind kind() const override { return PolicyKind::kPeriodic; }
  std::optional<UpdateDecision> Decide(const DeviationTracker& tracker,
                                       Time now,
                                       double current_speed) override;
  void OnUpdateSent(Time now) override { last_report_time_ = now; }

 private:
  Time last_report_time_ = 0.0;
};

/// Future-work extension (paper §6): adapts the policy to the speed
/// pattern. Highway-like windows (low speed fluctuation) use the dl rule
/// with the current speed; city-like windows (high fluctuation) use the ail
/// rule with the average speed. The mode is re-evaluated at every tick from
/// the coefficient of variation of the speeds observed since the last
/// update.
class HybridAdaptivePolicy final : public UpdatePolicy {
 public:
  explicit HybridAdaptivePolicy(const PolicyConfig& config)
      : UpdatePolicy(config) {}

  PolicyKind kind() const override { return PolicyKind::kHybridAdaptive; }
  std::optional<UpdateDecision> Decide(const DeviationTracker& tracker,
                                       Time now,
                                       double current_speed) override;

  /// True when the last `Decide` call operated in ail mode (test hook).
  bool in_ail_mode() const { return in_ail_mode_; }

 private:
  bool in_ail_mode_ = false;
};

/// Optimal policy for the *step* deviation cost function (paper §3.1: zero
/// penalty while the deviation stays below a threshold h, one per time unit
/// above). The optimum is bang-bang: update the moment the deviation
/// reaches h when one update buys more penalty-free time than it costs
/// (C < b + h/a under the fitted delayed-linear estimator), otherwise stay
/// silent.
class StepThresholdPolicy final : public UpdatePolicy {
 public:
  explicit StepThresholdPolicy(const PolicyConfig& config)
      : UpdatePolicy(config) {}

  PolicyKind kind() const override { return PolicyKind::kStepThreshold; }
  std::optional<UpdateDecision> Decide(const DeviationTracker& tracker,
                                       Time now,
                                       double current_speed) override;
};

}  // namespace modb::core

#endif  // MODB_CORE_POLICIES_POLICIES_H_
