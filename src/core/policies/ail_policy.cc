#include "core/estimator.h"
#include "core/policies/policies.h"
#include "core/thresholds.h"

namespace modb::core {

std::optional<UpdateDecision> AverageImmediateLinearPolicy::Decide(
    const DeviationTracker& tracker, Time now, double /*current_speed*/) {
  const double k = tracker.current_deviation();
  if (k <= config_.zero_epsilon) return std::nullopt;

  const ImmediateLinearEstimate est =
      FitImmediateLinear(tracker, now, config_.fitting);
  if (est.slope <= 0.0) return std::nullopt;

  const double threshold =
      OptimalThresholdImmediateLinear(est.slope, config_.update_cost);
  if (k < threshold) return std::nullopt;
  // Declared speed: average speed since the last update (paper §3.2).
  return UpdateDecision{tracker.AverageSpeed(now)};
}

}  // namespace modb::core
