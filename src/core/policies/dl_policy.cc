#include "core/estimator.h"
#include "core/policies/policies.h"
#include "core/thresholds.h"

namespace modb::core {

std::optional<UpdateDecision> DelayedLinearPolicy::Decide(
    const DeviationTracker& tracker, Time now, double current_speed) {
  const double k = tracker.current_deviation();
  // "if k = 0, the moving object does not do anything" (paper §3.2).
  if (k <= config_.zero_epsilon) return std::nullopt;

  const DelayedLinearEstimate est =
      FitDelayedLinear(tracker, now, config_.fitting);
  if (est.slope <= 0.0) return std::nullopt;

  const double threshold = OptimalThresholdDelayedLinear(
      est.slope, est.delay, config_.update_cost);
  if (k < threshold) return std::nullopt;
  return UpdateDecision{current_speed};
}

}  // namespace modb::core
