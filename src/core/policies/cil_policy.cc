#include "core/estimator.h"
#include "core/policies/policies.h"
#include "core/thresholds.h"

namespace modb::core {

std::optional<UpdateDecision> CurrentImmediateLinearPolicy::Decide(
    const DeviationTracker& tracker, Time now, double current_speed) {
  const double k = tracker.current_deviation();
  if (k <= config_.zero_epsilon) return std::nullopt;

  const ImmediateLinearEstimate est =
      FitImmediateLinear(tracker, now, config_.fitting);
  if (est.slope <= 0.0) return std::nullopt;

  const double threshold =
      OptimalThresholdImmediateLinear(est.slope, config_.update_cost);
  if (k < threshold) return std::nullopt;
  // Declared speed: the current speed (paper §3.4).
  return UpdateDecision{current_speed};
}

}  // namespace modb::core
