#include "core/estimator.h"
#include "core/policies/policies.h"
#include "core/thresholds.h"

namespace modb::core {

std::optional<UpdateDecision> StepThresholdPolicy::Decide(
    const DeviationTracker& tracker, Time now, double current_speed) {
  const double k = tracker.current_deviation();
  if (k <= config_.zero_epsilon) return std::nullopt;
  if (k < config_.step_threshold) return std::nullopt;  // penalty-free zone

  const DelayedLinearEstimate est =
      FitDelayedLinear(tracker, now, config_.fitting);
  if (est.slope <= 0.0) return std::nullopt;

  if (!StepCostShouldUpdate(est.slope, est.delay, config_.step_threshold,
                            config_.update_cost)) {
    // Updating is not worth it: every update would cost more than the
    // penalty-free time it buys, so the policy stays silent.
    return std::nullopt;
  }
  return UpdateDecision{current_speed};
}

}  // namespace modb::core
