#include <cmath>

#include "core/estimator.h"
#include "core/policies/policies.h"
#include "core/thresholds.h"

namespace modb::core {

std::optional<UpdateDecision> HybridAdaptivePolicy::Decide(
    const DeviationTracker& tracker, Time now, double current_speed) {
  const double k = tracker.current_deviation();
  if (k <= config_.zero_epsilon) return std::nullopt;

  // Classify the window: high speed fluctuation (city-like) -> ail mode,
  // low fluctuation (highway-like) -> dl mode. The coefficient of variation
  // of the speeds observed since the last update is the discriminator.
  const util::RunningStat& speeds = tracker.speed_stats();
  const double mean_speed = speeds.mean();
  const double cv =
      mean_speed > 1e-12 ? speeds.stddev() / mean_speed : 0.0;
  in_ail_mode_ = cv > config_.hybrid_cv_switch;

  if (in_ail_mode_) {
    const ImmediateLinearEstimate est =
        FitImmediateLinear(tracker, now, config_.fitting);
    if (est.slope <= 0.0) return std::nullopt;
    const double threshold =
        OptimalThresholdImmediateLinear(est.slope, config_.update_cost);
    if (k < threshold) return std::nullopt;
    return UpdateDecision{tracker.AverageSpeed(now)};
  }

  const DelayedLinearEstimate est =
      FitDelayedLinear(tracker, now, config_.fitting);
  if (est.slope <= 0.0) return std::nullopt;
  const double threshold = OptimalThresholdDelayedLinear(
      est.slope, est.delay, config_.update_cost);
  if (k < threshold) return std::nullopt;
  return UpdateDecision{current_speed};
}

}  // namespace modb::core
