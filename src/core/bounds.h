#ifndef MODB_CORE_BOUNDS_H_
#define MODB_CORE_BOUNDS_H_

#include <vector>

#include "core/position_attribute.h"
#include "core/types.h"

namespace modb::core {

// Deviation bounds the DBMS can compute from values it knows: the database
// speed v (= P.speed), the update cost C, the object's maximum speed V, and
// the time t elapsed since the last update (paper §3.3). A *slow* deviation
// means the object is behind its database position; a *fast* deviation
// means it is ahead.

/// Proposition 2 — delayed-linear policy, slow deviation:
///   k <= min{ sqrt(2 v C), v t }.
double DlSlowBound(double v, double C, double t);

/// Proposition 3 — delayed-linear policy, fast deviation (V = max speed):
///   k <= min{ sqrt(2 (V - v) C), (V - v) t }.
double DlFastBound(double V, double v, double C, double t);

/// Corollary 1 — delayed-linear policy, either direction; D = max{v, V - v}:
///   k <= min{ sqrt(2 D C), D t }.
double DlBound(double V, double v, double C, double t);

/// Proposition 4 — immediate-linear policies (ail / cil), slow deviation:
///   k <= min{ 2C / t, v t }.
/// The first term *decreases* as t grows — the surprising positive result of
/// the paper: the uncertainty shrinks the longer the object goes without
/// updating.
double IlSlowBound(double v, double C, double t);

/// Proposition 4 — immediate-linear policies, fast deviation:
///   k <= min{ 2C / t, (V - v) t }.
double IlFastBound(double V, double v, double C, double t);

/// Proposition 4 — immediate-linear policies, either direction:
///   k <= min{ 2C / t, D t }, D = max{v, V - v}.
double IlBound(double V, double v, double C, double t);

/// Time at which the il slow bound peaks: t* = sqrt(2C / v) (the bound grows
/// as v t until t*, then decays as 2C/t). Returns infinity when v <= 0.
double IlSlowBoundPeakTime(double v, double C);

/// Time at which the il fast bound peaks: t* = sqrt(2C / (V - v)).
double IlFastBoundPeakTime(double V, double v, double C);

/// Offsets (relative to the last update) at which the slow/fast bound
/// functions of `attr` change analytic form — the dl plateau start
/// sqrt(2C/rate), the il peak sqrt(2C/rate), the fixed-threshold knee B/rate,
/// or the periodic reporting period. Between consecutive critical times the
/// bounds are monotone, which lets the o-plane builder cover a time slab
/// exactly by sampling slab edges plus the critical times inside it.
/// Only finite positive offsets are returned.
std::vector<Duration> BoundCriticalTimes(const PositionAttribute& attr);

/// Policy-dispatching bounds: everything the DBMS needs is in the stored
/// position attribute. `t` is the time elapsed since `attr.start_time`.
/// For `kFixedThreshold` the bound is min{B, rate * t} (classical dead
/// reckoning: fixed bound, never shrinking). For `kPeriodic` the database
/// models no motion (speed 0), so the slow bound is 0 and the fast bound is
/// V * min(t, period).
double SlowDeviationBound(const PositionAttribute& attr, Duration t);
double FastDeviationBound(const PositionAttribute& attr, Duration t);
/// Bound on the deviation in either direction.
double DeviationBound(const PositionAttribute& attr, Duration t);

}  // namespace modb::core

#endif  // MODB_CORE_BOUNDS_H_
