#include "core/deviation.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace modb::core {

double UniformDeviationCost::IntervalCost(double d0, double d1,
                                          double dt) const {
  return 0.5 * (d0 + d1) * dt;
}

double StepDeviationCost::IntervalCost(double d0, double d1, double dt) const {
  if (dt <= 0.0) return 0.0;
  const double lo = std::min(d0, d1);
  const double hi = std::max(d0, d1);
  if (hi <= threshold_) return 0.0;
  if (lo >= threshold_) return dt;
  // Deviation is linear over the interval; charge the exact fraction of the
  // interval spent above the threshold.
  const double fraction_above = (hi - threshold_) / (hi - lo);
  return dt * fraction_above;
}

DeviationTracker::DeviationTracker(double zero_epsilon)
    : zero_epsilon_(zero_epsilon) {}

void DeviationTracker::Reset(Time t, double actual_route_distance) {
  update_time_ = t;
  start_route_distance_ = actual_route_distance;
  last_time_ = t;
  last_route_distance_ = actual_route_distance;
  current_deviation_ = 0.0;
  last_zero_time_ = t;
  integral_ = 0.0;
  ls_sum_td_ = 0.0;
  ls_sum_tt_ = 0.0;
  speed_stats_.Reset();
  num_observations_ = 0;
}

void DeviationTracker::Observe(Time t, double deviation,
                               double actual_route_distance,
                               double actual_speed) {
  assert(t >= last_time_);
  assert(deviation >= 0.0);
  const double dt = t - last_time_;
  integral_ += 0.5 * (current_deviation_ + deviation) * dt;
  current_deviation_ = deviation;
  last_time_ = t;
  last_route_distance_ = actual_route_distance;
  if (deviation <= zero_epsilon_) last_zero_time_ = t;
  const double rel_t = t - update_time_;
  ls_sum_td_ += rel_t * deviation;
  ls_sum_tt_ += rel_t * rel_t;
  speed_stats_.Add(actual_speed);
  ++num_observations_;
}

double DeviationTracker::AverageSpeed(Time now) const {
  const double elapsed = now - update_time_;
  if (elapsed <= 0.0) return 0.0;
  return std::fabs(last_route_distance_ - start_route_distance_) / elapsed;
}

double DeviationTracker::LeastSquaresImmediateSlope() const {
  if (ls_sum_tt_ <= 0.0) return 0.0;
  return std::max(0.0, ls_sum_td_ / ls_sum_tt_);
}

}  // namespace modb::core
