#ifndef MODB_CORE_THRESHOLDS_H_
#define MODB_CORE_THRESHOLDS_H_

namespace modb::core {

/// Proposition 1: the optimal update threshold for a deviation that follows
/// a delayed-linear function with delay `b` and slope `a`, under the uniform
/// deviation cost function and update cost `C`:
///
///   k_opt = sqrt(a^2 b^2 + 2 a C) - a b
///
/// Updating whenever the deviation reaches `k_opt` minimises the total cost
/// (update cost + deviation cost) per time unit. Requires a, b, C >= 0.
/// Returns 0 when a == 0 (the deviation never grows, never update).
double OptimalThresholdDelayedLinear(double a, double b, double C);

/// Immediate-linear special case (b = 0): k_opt = sqrt(2 a C).
double OptimalThresholdImmediateLinear(double a, double C);

/// Total cost per time unit when updating at threshold `k` under a
/// delayed-linear deviation (delay `b`, slope `a`, update cost `C`):
///
///   cost(k) = (C + k^2 / (2a)) / (b + k/a)
///
/// Each update-to-update cycle lasts `b + k/a` time units, costs C for the
/// message plus the triangular deviation area k^2/(2a). Used by the
/// threshold-optimality ablation (E6). Requires a > 0, k > 0.
double CostPerTimeUnitDelayedLinear(double k, double a, double b, double C);

/// Equation (3): under simple fitting the ail/cil update condition
/// "k >= sqrt(2aC)" with a = k/t is equivalent to "k >= 2C/t". Returns that
/// time-dependent threshold (infinity at t <= 0).
double ImmediateSimpleFitThreshold(double C, double t);

// ---- Step deviation cost analysis (paper §3.1's alternative cost
// function: zero penalty below a threshold h, one per time unit above) ----

/// Cost per time unit of updating whenever the deviation reaches `k`
/// (k >= h), under a delayed-linear deviation (delay `b`, slope `a`),
/// update cost `C`, and the *step* deviation cost with threshold `h`:
///
///   cost(k) = (C + (k - h)/a) / (b + k/a)
///
/// Each cycle lasts b + k/a; the deviation spends (k - h)/a of it above h.
/// Requires a > 0, k >= h >= 0.
double StepCostPerTimeUnit(double k, double a, double b, double h, double C);

/// The step-cost optimum is bang-bang: cost(k) is monotone in k, so the
/// minimiser is either k = h ("update the moment the deviation reaches the
/// free zone's edge") or k = infinity ("never update"; the cost rate tends
/// to 1). Updating at h is optimal iff
///
///   C < b + h/a
///
/// i.e. iff one update buys more penalty-free time than it costs.
bool StepCostShouldUpdate(double a, double b, double h, double C);

/// DBMS-side deviation bound for the step-threshold policy: when the
/// update-at-h regime is guaranteed for every admissible slope
/// (C < h/rate implies C < b + h/a for all a <= rate, b >= 0), the
/// deviation stays below h; otherwise the policy may go silent and only
/// the growth-rate bound holds:
///
///   bound = min(h, rate*t)    if C < h/rate
///           rate*t            otherwise.
double StepThresholdBound(double rate, double h, double C, double t);

}  // namespace modb::core

#endif  // MODB_CORE_THRESHOLDS_H_
