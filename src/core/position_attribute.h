#ifndef MODB_CORE_POSITION_ATTRIBUTE_H_
#define MODB_CORE_POSITION_ATTRIBUTE_H_

#include <string>
#include <string_view>

#include "core/types.h"
#include "geo/point.h"
#include "geo/route.h"

namespace modb::core {

/// The position-update policy a moving object declares in `P.policy`.
///
/// The first three are the paper's policies (§3.2, §3.4); the last three are
/// baselines and extensions implemented for the evaluation:
///  - `kFixedThreshold`: classical dead reckoning with an a-priori bound B
///    (discussed as the alternative in the paper's conclusion).
///  - `kPeriodic`: the traditional non-temporal method — report the raw
///    position every reporting period; the database models no motion.
///  - `kHybridAdaptive`: future-work extension (§6) that switches between
///    dl and ail depending on the observed speed-fluctuation pattern.
enum class PolicyKind {
  kDelayedLinear,           // dl
  kAverageImmediateLinear,  // ail
  kCurrentImmediateLinear,  // cil
  kFixedThreshold,          // dead-reckoning baseline
  kPeriodic,                // traditional non-temporal baseline
  kHybridAdaptive,          // adaptive dl/ail switch (extension)
  kStepThreshold,           // optimal policy for the step deviation cost
};

/// Short lowercase name used in tables ("dl", "ail", ...).
std::string_view PolicyKindName(PolicyKind kind);

/// The paper's position attribute (§2): the motion model the DBMS stores
/// for one moving object.
///
/// Sub-attributes map to the paper as follows:
///   P.starttime          -> `start_time` (time of the last position update)
///   P.route              -> `route`
///   P.x/y.startposition  -> `start_position` (also kept as an arc length in
///                           `start_route_distance` for route computations)
///   P.direction          -> `direction`
///   P.speed              -> `speed` (the paper's P.speed is the linear
///                           function v*t with v = `speed`)
///   P.policy             -> `policy`, plus the policy parameters the DBMS
///                           needs to derive deviation bounds: the update
///                           cost C (`update_cost`), the maximum speed V
///                           (`max_speed`), and for the dead-reckoning
///                           baseline its a-priori bound (`fixed_threshold`).
struct PositionAttribute {
  Time start_time = 0.0;
  geo::RouteId route = geo::kInvalidRouteId;
  double start_route_distance = 0.0;
  geo::Point2 start_position;
  TravelDirection direction = TravelDirection::kForward;
  double speed = 0.0;
  PolicyKind policy = PolicyKind::kAverageImmediateLinear;
  double update_cost = 5.0;     // C, in deviation-cost units
  double max_speed = 0.0;       // V; <= 0 means unknown
  double fixed_threshold = 0.0; // B, only for PolicyKind::kFixedThreshold
  double period = 1.0;          // reporting period, only for kPeriodic
  double step_threshold = 1.0;  // h, only for PolicyKind::kStepThreshold

  /// Route-distance of the database position at time `t` (unclamped):
  /// start + sign(direction) * speed * (t - start_time).
  double DatabaseRouteDistanceAt(Time t) const {
    return start_route_distance +
           DirectionSign(direction) * speed * (t - start_time);
  }

  /// Route-distance at time `t`, clamped to `route_length` ends.
  double ClampedDatabaseRouteDistanceAt(Time t, double route_length) const;

  /// 2-D database position at time `t` on `route` (the answer the DBMS
  /// returns to "where is m now?"). Requires `route.id() == this->route`.
  geo::Point2 DatabasePositionAt(const geo::Route& route, Time t) const;

  std::string ToString() const;
};

}  // namespace modb::core

#endif  // MODB_CORE_POSITION_ATTRIBUTE_H_
