#ifndef MODB_CORE_UNCERTAINTY_H_
#define MODB_CORE_UNCERTAINTY_H_

#include <string_view>

#include "core/position_attribute.h"
#include "core/types.h"
#include "geo/polygon.h"
#include "geo/route.h"

namespace modb::core {

/// The uncertainty interval of a moving object at a point in time
/// (paper §4.1.1): the stretch of the route, in route-distance coordinates,
/// within which the object is guaranteed to be. `lo <= hi`.
struct UncertaintyInterval {
  double lo = 0.0;
  double hi = 0.0;

  double Width() const { return hi - lo; }
  bool ContainsDistance(double s) const { return s >= lo && s <= hi; }
};

/// Computes the uncertainty interval of an object with position attribute
/// `attr` on `route` at time `t` (>= attr.start_time). The interval is the
/// database position plus/minus the fast/slow deviation bounds mapped along
/// the direction of travel, clamped to the route ends:
///   lower-o  l(t) = v*t - BS(t),   upper-o  u(t) = v*t + BF(t).
UncertaintyInterval ComputeUncertainty(const PositionAttribute& attr,
                                       const geo::Route& route, Time t);

/// Smallest route-distance interval covering the uncertainty interval of
/// `attr` at *every* time in [t1, t2]. The interval endpoints l(t), u(t)
/// are monotone between the bound functions' critical times, so sampling
/// the window edges plus the critical times inside it is exact. Used by
/// the o-plane builder (one call per time slab) and by time-window range
/// queries.
UncertaintyInterval ComputeUncertaintySpan(const PositionAttribute& attr,
                                           const geo::Route& route, Time t1,
                                           Time t2);

/// Relation of an object's possible positions to a query polygon.
enum class RegionRelation {
  kMustBeIn,  // the whole uncertainty interval lies inside the polygon
  kMayBeIn,   // the interval intersects the polygon boundary/interior
  kOutside,   // the interval is disjoint from the polygon
};

std::string_view RegionRelationName(RegionRelation r);

/// Classifies the uncertainty interval `interval` on `route` against
/// `polygon` (paper §4.1.1 definitions of "may be in" / "must be in" G).
RegionRelation ClassifyAgainstPolygon(const UncertaintyInterval& interval,
                                      const geo::Route& route,
                                      const geo::Polygon& polygon);

/// Probability that the object is inside `polygon`, under the natural
/// refinement of the MAY answer: the DBMS knows only that the object is
/// somewhere in its uncertainty interval, so position is taken uniform
/// over the interval and the probability is the in-polygon fraction of its
/// arc length (exact clipping). Degenerate (zero-width) intervals yield
/// 0 or 1. MUST objects get 1.0, OUTSIDE objects 0.0, by construction.
double ProbabilityInPolygon(const UncertaintyInterval& interval,
                            const geo::Route& route,
                            const geo::Polygon& polygon);

}  // namespace modb::core

#endif  // MODB_CORE_UNCERTAINTY_H_
