#include "core/position_attribute.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

namespace modb::core {

std::string_view PolicyKindName(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kDelayedLinear:
      return "dl";
    case PolicyKind::kAverageImmediateLinear:
      return "ail";
    case PolicyKind::kCurrentImmediateLinear:
      return "cil";
    case PolicyKind::kFixedThreshold:
      return "fixed";
    case PolicyKind::kPeriodic:
      return "periodic";
    case PolicyKind::kHybridAdaptive:
      return "hybrid";
    case PolicyKind::kStepThreshold:
      return "step";
  }
  return "unknown";
}

double PositionAttribute::ClampedDatabaseRouteDistanceAt(
    Time t, double route_length) const {
  return std::clamp(DatabaseRouteDistanceAt(t), 0.0, route_length);
}

geo::Point2 PositionAttribute::DatabasePositionAt(const geo::Route& r,
                                                  Time t) const {
  assert(r.id() == route);
  return r.PointAt(ClampedDatabaseRouteDistanceAt(t, r.Length()));
}

std::string PositionAttribute::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "{t0=%.3f route=%u s0=%.3f pos=%s dir=%+d v=%.3f policy=%s "
                "C=%.3f V=%.3f}",
                start_time, route, start_route_distance,
                start_position.ToString().c_str(),
                static_cast<int>(direction), speed,
                std::string(PolicyKindName(policy)).c_str(), update_cost,
                max_speed);
  return buf;
}

}  // namespace modb::core
