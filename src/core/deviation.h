#ifndef MODB_CORE_DEVIATION_H_
#define MODB_CORE_DEVIATION_H_

#include <memory>
#include <string_view>

#include "core/types.h"
#include "util/stats.h"

namespace modb::core {

/// Deviation cost function (paper §3.1): maps the deviation between two
/// time points into a nonnegative cost.
///
/// Implementations integrate incrementally: the deviation is sampled once
/// per tick and assumed linear in between, so the total
/// `COST_d(t1, t2)` is the sum of `IntervalCost` over the ticks.
class DeviationCostFunction {
 public:
  virtual ~DeviationCostFunction() = default;

  /// Cost contributed by an interval of length `dt` over which the deviation
  /// moves linearly from `d0` to `d1`.
  virtual double IntervalCost(double d0, double d1, double dt) const = 0;

  virtual std::string_view name() const = 0;
};

/// The paper's uniform deviation cost (eq. 1): one cost unit per unit of
/// deviation per unit of time, i.e. COST_d = integral of d(t) dt.
class UniformDeviationCost final : public DeviationCostFunction {
 public:
  double IntervalCost(double d0, double d1, double dt) const override;
  std::string_view name() const override { return "uniform"; }
};

/// The paper's step deviation cost (§3.1): zero penalty while the deviation
/// stays below a threshold `h`, penalty one per time unit above it.
class StepDeviationCost final : public DeviationCostFunction {
 public:
  explicit StepDeviationCost(double threshold) : threshold_(threshold) {}

  double IntervalCost(double d0, double d1, double dt) const override;
  std::string_view name() const override { return "step"; }
  double threshold() const { return threshold_; }

 private:
  double threshold_;
};

/// Onboard deviation bookkeeping between two consecutive position updates.
///
/// The moving object always knows its exact position (GPS) and the
/// parameters of its last update, so at every tick it can compute the
/// current deviation (paper §3.1). The tracker maintains everything the
/// update policies' fitting methods need:
///   - current deviation `k` and time since the last update `t`,
///   - the delay `b` = time from the last update until the last tick at
///     which the deviation was (approximately) zero — the simple fitting
///     method for the delayed-linear estimator,
///   - average speed since the last update (the ail predicted speed),
///   - the running integral of the deviation (the uniform deviation cost),
///   - least-squares accumulators for the alternative fitting method, and
///   - speed statistics since the update (used by the hybrid policy).
class DeviationTracker {
 public:
  /// `zero_epsilon`: deviations at or below this value count as zero.
  explicit DeviationTracker(double zero_epsilon = 1e-9);

  /// Starts a new update-to-update window at time `t`, with the object's
  /// actual route-distance `actual_route_distance` (== the reported start
  /// position, so the deviation is zero now).
  void Reset(Time t, double actual_route_distance);

  /// Records one observation. `t` must be >= the previous observation time.
  void Observe(Time t, double deviation, double actual_route_distance,
               double actual_speed);

  /// Deviation at the most recent observation.
  double current_deviation() const { return current_deviation_; }
  /// Time of the last `Reset` (the last position update).
  Time update_time() const { return update_time_; }
  /// Time of the most recent observation.
  Time last_observation_time() const { return last_time_; }
  /// Last time the deviation was (approximately) zero; >= update_time().
  Time last_zero_time() const { return last_zero_time_; }

  /// The delayed-linear delay `b` under simple fitting.
  Duration DelayOffset() const { return last_zero_time_ - update_time_; }

  /// Time elapsed since the last update.
  Duration TimeSinceUpdate(Time now) const { return now - update_time_; }

  /// Average speed since the last update (route distance covered / time);
  /// 0 when no time has elapsed.
  double AverageSpeed(Time now) const;

  /// Integral of the deviation since the last update (trapezoid rule) ==
  /// the uniform deviation cost of the current window.
  double DeviationIntegral() const { return integral_; }

  /// Least-squares slope through the origin of (t - update_time, deviation):
  /// the alternative fitting method for the immediate-linear estimator.
  /// Returns 0 when no information is available.
  double LeastSquaresImmediateSlope() const;

  /// Actual-speed statistics observed since the last update.
  const util::RunningStat& speed_stats() const { return speed_stats_; }

  std::size_t num_observations() const { return num_observations_; }
  double zero_epsilon() const { return zero_epsilon_; }

 private:
  double zero_epsilon_;
  Time update_time_ = 0.0;
  double start_route_distance_ = 0.0;
  Time last_time_ = 0.0;
  double last_route_distance_ = 0.0;
  double current_deviation_ = 0.0;
  Time last_zero_time_ = 0.0;
  double integral_ = 0.0;
  double ls_sum_td_ = 0.0;  // sum of (t - t_u) * d
  double ls_sum_tt_ = 0.0;  // sum of (t - t_u)^2
  util::RunningStat speed_stats_;
  std::size_t num_observations_ = 0;
};

}  // namespace modb::core

#endif  // MODB_CORE_DEVIATION_H_
