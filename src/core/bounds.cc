#include "core/bounds.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/thresholds.h"

namespace modb::core {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// min{ sqrt(2 * rate * C), rate * t } with clamping for degenerate inputs.
double SqrtStyleBound(double rate, double C, double t) {
  if (rate <= 0.0 || t <= 0.0) return 0.0;
  return std::min(std::sqrt(2.0 * rate * C), rate * t);
}

// min{ 2C / t, rate * t }.
double HyperbolaStyleBound(double rate, double C, double t) {
  if (rate <= 0.0 || t <= 0.0) return 0.0;
  return std::min(2.0 * C / t, rate * t);
}

// The fast-deviation growth rate is V - v; a database speed above the
// declared maximum (possible if V was configured too low) clamps to 0.
double FastRate(double V, double v) { return std::max(V - v, 0.0); }

}  // namespace

double DlSlowBound(double v, double C, double t) {
  return SqrtStyleBound(v, C, t);
}

double DlFastBound(double V, double v, double C, double t) {
  return SqrtStyleBound(FastRate(V, v), C, t);
}

double DlBound(double V, double v, double C, double t) {
  const double D = std::max(v, FastRate(V, v));
  return SqrtStyleBound(D, C, t);
}

double IlSlowBound(double v, double C, double t) {
  return HyperbolaStyleBound(v, C, t);
}

double IlFastBound(double V, double v, double C, double t) {
  return HyperbolaStyleBound(FastRate(V, v), C, t);
}

double IlBound(double V, double v, double C, double t) {
  const double D = std::max(v, FastRate(V, v));
  return HyperbolaStyleBound(D, C, t);
}

double IlSlowBoundPeakTime(double v, double C) {
  if (v <= 0.0) return kInf;
  return std::sqrt(2.0 * C / v);
}

double IlFastBoundPeakTime(double V, double v, double C) {
  const double rate = FastRate(V, v);
  if (rate <= 0.0) return kInf;
  return std::sqrt(2.0 * C / rate);
}

double SlowDeviationBound(const PositionAttribute& attr, Duration t) {
  const double v = attr.speed;
  const double C = attr.update_cost;
  switch (attr.policy) {
    case PolicyKind::kDelayedLinear:
      return DlSlowBound(v, C, t);
    case PolicyKind::kAverageImmediateLinear:
    case PolicyKind::kCurrentImmediateLinear:
      return IlSlowBound(v, C, t);
    case PolicyKind::kHybridAdaptive:
      // The hybrid switches between dl and ail; the dl bound dominates the
      // ail bound for all t, so it is safe whichever mode is active.
      return DlSlowBound(v, C, t);
    case PolicyKind::kFixedThreshold:
      return std::min(attr.fixed_threshold, v > 0.0 ? v * std::max(t, 0.0)
                                                    : 0.0);
    case PolicyKind::kPeriodic:
      // The database position is static (speed 0): the object can only be
      // ahead of it, never behind.
      return 0.0;
    case PolicyKind::kStepThreshold:
      return StepThresholdBound(v, attr.step_threshold, C, t);
  }
  return kInf;
}

double FastDeviationBound(const PositionAttribute& attr, Duration t) {
  const double v = attr.speed;
  const double C = attr.update_cost;
  const double V = attr.max_speed;
  switch (attr.policy) {
    case PolicyKind::kDelayedLinear:
      return DlFastBound(V, v, C, t);
    case PolicyKind::kAverageImmediateLinear:
    case PolicyKind::kCurrentImmediateLinear:
      return IlFastBound(V, v, C, t);
    case PolicyKind::kHybridAdaptive:
      return DlFastBound(V, v, C, t);
    case PolicyKind::kFixedThreshold:
      return std::min(attr.fixed_threshold,
                      FastRate(V, v) * std::max(t, 0.0));
    case PolicyKind::kPeriodic:
      // One reporting period at most elapses between raw-position reports.
      return V * std::min(std::max(t, 0.0), attr.period);
    case PolicyKind::kStepThreshold:
      return StepThresholdBound(FastRate(V, v), attr.step_threshold, C, t);
  }
  return kInf;
}

double DeviationBound(const PositionAttribute& attr, Duration t) {
  return std::max(SlowDeviationBound(attr, t), FastDeviationBound(attr, t));
}

std::vector<Duration> BoundCriticalTimes(const PositionAttribute& attr) {
  std::vector<Duration> times;
  auto push = [&times](double t) {
    if (t > 0.0 && std::isfinite(t)) times.push_back(t);
  };
  const double v = attr.speed;
  const double C = attr.update_cost;
  const double fast_rate = FastRate(attr.max_speed, v);
  switch (attr.policy) {
    case PolicyKind::kDelayedLinear:
    case PolicyKind::kHybridAdaptive:
    case PolicyKind::kAverageImmediateLinear:
    case PolicyKind::kCurrentImmediateLinear:
      // Both families switch analytic form at sqrt(2C/rate) per direction.
      if (v > 0.0) push(std::sqrt(2.0 * C / v));
      if (fast_rate > 0.0) push(std::sqrt(2.0 * C / fast_rate));
      break;
    case PolicyKind::kFixedThreshold:
      if (v > 0.0) push(attr.fixed_threshold / v);
      if (fast_rate > 0.0) push(attr.fixed_threshold / fast_rate);
      break;
    case PolicyKind::kPeriodic:
      push(attr.period);
      break;
    case PolicyKind::kStepThreshold:
      // The bound knees at h/rate when the update-at-h regime is active.
      if (v > 0.0 && C < attr.step_threshold / v) {
        push(attr.step_threshold / v);
      }
      if (fast_rate > 0.0 && C < attr.step_threshold / fast_rate) {
        push(attr.step_threshold / fast_rate);
      }
      break;
  }
  return times;
}

}  // namespace modb::core
