#ifndef MODB_CORE_UPDATE_POLICY_H_
#define MODB_CORE_UPDATE_POLICY_H_

#include <memory>
#include <optional>
#include <string_view>

#include "core/deviation.h"
#include "core/estimator.h"
#include "core/position_attribute.h"
#include "core/types.h"
#include "geo/point.h"
#include "geo/route.h"

namespace modb::core {

/// Configuration of a position-update policy: the paper's quintuple plus
/// the parameters of the baseline policies.
///
/// All implemented policies use the uniform deviation cost function; the
/// remaining quintuple components are:
///   - update cost `C` (`update_cost`), in deviation-cost units,
///   - estimator function / predicted speed: implied by `kind`,
///   - fitting method (`fitting`).
struct PolicyConfig {
  PolicyKind kind = PolicyKind::kAverageImmediateLinear;
  double update_cost = 5.0;  // C
  double max_speed = 0.0;    // V, used for the DBMS-side bounds
  FittingMethod fitting = FittingMethod::kSimple;
  double fixed_threshold = 1.0;  // B, kFixedThreshold only
  double period = 1.0;           // kPeriodic only
  double step_threshold = 1.0;   // h, kStepThreshold only
  double zero_epsilon = 1e-9;    // deviations below this count as zero
  /// kHybridAdaptive: switch to ail mode when the coefficient of variation
  /// of the speed since the last update exceeds this value.
  double hybrid_cv_switch = 0.3;
};

/// A decision to send a position update now.
struct UpdateDecision {
  /// The predicted speed to declare in P.speed (current speed for dl/cil,
  /// average speed since the last update for ail, 0 for the traditional
  /// periodic reporter).
  double declared_speed = 0.0;
};

/// A position update message from a moving object to the database
/// (paper §3.1): new values for P.starttime, P.speed, P.x/y.startposition
/// (and P.route when the object changed routes).
struct PositionUpdate {
  ObjectId object = kInvalidObjectId;
  Time time = 0.0;
  geo::RouteId route = geo::kInvalidRouteId;
  double route_distance = 0.0;
  geo::Point2 position;
  TravelDirection direction = TravelDirection::kForward;
  double speed = 0.0;
};

/// Position-update policy interface (paper §3.1).
///
/// The onboard computer calls `Decide` once per tick with the deviation
/// bookkeeping; a non-empty result instructs it to send a position update
/// with the given declared speed. Policies are stateless between windows
/// except for what `DeviationTracker` carries, with the exception of the
/// periodic baseline (which tracks its reporting schedule) and the hybrid
/// extension (which remembers its active mode).
class UpdatePolicy {
 public:
  explicit UpdatePolicy(const PolicyConfig& config) : config_(config) {}
  virtual ~UpdatePolicy() = default;

  UpdatePolicy(const UpdatePolicy&) = delete;
  UpdatePolicy& operator=(const UpdatePolicy&) = delete;

  virtual PolicyKind kind() const = 0;
  virtual std::string_view name() const { return PolicyKindName(kind()); }

  /// Decides whether the object should update the database at time `now`.
  /// `current_speed` is the object's instantaneous speed.
  virtual std::optional<UpdateDecision> Decide(
      const DeviationTracker& tracker, Time now, double current_speed) = 0;

  /// Notifies the policy that an update was sent at `now` (used by the
  /// stateful baselines; default no-op).
  virtual void OnUpdateSent(Time now) { (void)now; }

  const PolicyConfig& config() const { return config_; }

 protected:
  PolicyConfig config_;
};

/// Creates the policy implementation selected by `config.kind`.
std::unique_ptr<UpdatePolicy> MakePolicy(const PolicyConfig& config);

}  // namespace modb::core

#endif  // MODB_CORE_UPDATE_POLICY_H_
