#include "core/update_policy.h"

#include "core/policies/policies.h"

namespace modb::core {

std::unique_ptr<UpdatePolicy> MakePolicy(const PolicyConfig& config) {
  switch (config.kind) {
    case PolicyKind::kDelayedLinear:
      return std::make_unique<DelayedLinearPolicy>(config);
    case PolicyKind::kAverageImmediateLinear:
      return std::make_unique<AverageImmediateLinearPolicy>(config);
    case PolicyKind::kCurrentImmediateLinear:
      return std::make_unique<CurrentImmediateLinearPolicy>(config);
    case PolicyKind::kFixedThreshold:
      return std::make_unique<FixedThresholdPolicy>(config);
    case PolicyKind::kPeriodic:
      return std::make_unique<PeriodicPolicy>(config);
    case PolicyKind::kHybridAdaptive:
      return std::make_unique<HybridAdaptivePolicy>(config);
    case PolicyKind::kStepThreshold:
      return std::make_unique<StepThresholdPolicy>(config);
  }
  return nullptr;
}

}  // namespace modb::core
