#ifndef MODB_CORE_TYPES_H_
#define MODB_CORE_TYPES_H_

#include <cstdint>
#include <limits>

namespace modb::core {

/// Simulation / database time, in abstract time units.
///
/// The paper's worked examples use minutes; nothing in the library depends
/// on the physical unit as long as speeds are route-distance per time unit.
using Time = double;

/// Difference of two `Time` values.
using Duration = double;

/// Identifier of a moving object in the database.
using ObjectId = std::uint64_t;

inline constexpr ObjectId kInvalidObjectId =
    std::numeric_limits<ObjectId>::max();

/// Direction of travel along a route (paper's binary P.direction):
/// +1 moves toward increasing route-distance, -1 toward decreasing.
enum class TravelDirection : int {
  kForward = +1,
  kBackward = -1,
};

/// Sign of a travel direction as a double factor.
constexpr double DirectionSign(TravelDirection d) {
  return d == TravelDirection::kForward ? 1.0 : -1.0;
}

}  // namespace modb::core

#endif  // MODB_CORE_TYPES_H_
