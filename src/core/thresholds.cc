#include "core/thresholds.h"

#include <cassert>
#include <cmath>
#include <limits>

namespace modb::core {

double OptimalThresholdDelayedLinear(double a, double b, double C) {
  assert(a >= 0.0 && b >= 0.0 && C >= 0.0);
  if (a <= 0.0) return 0.0;
  return std::sqrt(a * a * b * b + 2.0 * a * C) - a * b;
}

double OptimalThresholdImmediateLinear(double a, double C) {
  assert(a >= 0.0 && C >= 0.0);
  return std::sqrt(2.0 * a * C);
}

double CostPerTimeUnitDelayedLinear(double k, double a, double b, double C) {
  assert(k > 0.0 && a > 0.0 && b >= 0.0 && C >= 0.0);
  const double cycle_length = b + k / a;
  const double cycle_cost = C + k * k / (2.0 * a);
  return cycle_cost / cycle_length;
}

double ImmediateSimpleFitThreshold(double C, double t) {
  if (t <= 0.0) return std::numeric_limits<double>::infinity();
  return 2.0 * C / t;
}

double StepCostPerTimeUnit(double k, double a, double b, double h, double C) {
  assert(a > 0.0 && b >= 0.0 && h >= 0.0 && C >= 0.0 && k >= h);
  const double cycle_length = b + k / a;
  const double cycle_cost = C + (k - h) / a;
  return cycle_cost / cycle_length;
}

bool StepCostShouldUpdate(double a, double b, double h, double C) {
  assert(a > 0.0 && b >= 0.0 && h >= 0.0 && C >= 0.0);
  return C < b + h / a;
}

double StepThresholdBound(double rate, double h, double C, double t) {
  if (rate <= 0.0 || t <= 0.0) return 0.0;
  if (C < h / rate) return std::min(h, rate * t);
  return rate * t;
}

}  // namespace modb::core
