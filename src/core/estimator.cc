#include "core/estimator.h"

namespace modb::core {

std::string_view FittingMethodName(FittingMethod method) {
  switch (method) {
    case FittingMethod::kSimple:
      return "simple";
    case FittingMethod::kLeastSquares:
      return "least_squares";
  }
  return "unknown";
}

DelayedLinearEstimate FitDelayedLinear(const DeviationTracker& tracker,
                                       Time now, FittingMethod method) {
  DelayedLinearEstimate est;
  est.delay = tracker.DelayOffset();
  const double k = tracker.current_deviation();
  if (k <= tracker.zero_epsilon()) return est;  // slope 0
  const double rise_time = now - tracker.last_zero_time();
  if (method == FittingMethod::kLeastSquares) {
    // Least-squares applies to the immediate part; keep the simple delay.
    const double ls = tracker.LeastSquaresImmediateSlope();
    if (ls > 0.0) {
      est.slope = ls;
      return est;
    }
  }
  est.slope = rise_time > 0.0 ? k / rise_time : 0.0;
  return est;
}

ImmediateLinearEstimate FitImmediateLinear(const DeviationTracker& tracker,
                                           Time now, FittingMethod method) {
  ImmediateLinearEstimate est;
  const double k = tracker.current_deviation();
  if (k <= tracker.zero_epsilon()) return est;
  if (method == FittingMethod::kLeastSquares) {
    const double ls = tracker.LeastSquaresImmediateSlope();
    if (ls > 0.0) {
      est.slope = ls;
      return est;
    }
  }
  const double elapsed = tracker.TimeSinceUpdate(now);
  est.slope = elapsed > 0.0 ? k / elapsed : 0.0;
  return est;
}

}  // namespace modb::core
