#ifndef MODB_CORE_ESTIMATOR_H_
#define MODB_CORE_ESTIMATOR_H_

#include <string_view>

#include "core/deviation.h"
#include "core/types.h"

namespace modb::core {

/// Method used to determine estimator coefficients from the observed
/// deviation (paper §3.1).
enum class FittingMethod {
  /// The paper's simple fitting method: the delay `b` is the time from the
  /// last update to the last tick with zero deviation; the slope is
  /// `k / (t - b)` for the delayed-linear estimator and `k / t` for the
  /// immediate-linear estimator.
  kSimple,
  /// Least-squares slope through the origin over the whole window
  /// (ablation; immediate-linear only, the delayed variant falls back to
  /// simple fitting for the delay).
  kLeastSquares,
};

std::string_view FittingMethodName(FittingMethod method);

/// Delayed-linear estimator f(t) = a * max(t - b, 0) (paper §3.2).
struct DelayedLinearEstimate {
  double slope = 0.0;  // a
  double delay = 0.0;  // b

  /// Value of the estimator `t` time units after the update.
  double At(double t) const {
    return t > delay ? slope * (t - delay) : 0.0;
  }
};

/// Immediate-linear estimator f(t) = a * t (delayed-linear with b = 0).
struct ImmediateLinearEstimate {
  double slope = 0.0;  // a

  double At(double t) const { return slope * t; }
};

/// Fits a delayed-linear estimator to the deviation observed by `tracker`
/// at time `now`. Returns slope 0 when the deviation is (still) zero.
DelayedLinearEstimate FitDelayedLinear(const DeviationTracker& tracker,
                                       Time now,
                                       FittingMethod method = FittingMethod::kSimple);

/// Fits an immediate-linear estimator to the deviation observed by
/// `tracker` at time `now`.
ImmediateLinearEstimate FitImmediateLinear(
    const DeviationTracker& tracker, Time now,
    FittingMethod method = FittingMethod::kSimple);

}  // namespace modb::core

#endif  // MODB_CORE_ESTIMATOR_H_
