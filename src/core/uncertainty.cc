#include "core/uncertainty.h"

#include <algorithm>

#include "core/bounds.h"

namespace modb::core {

UncertaintyInterval ComputeUncertainty(const PositionAttribute& attr,
                                       const geo::Route& route, Time t) {
  const Duration elapsed = std::max(0.0, t - attr.start_time);
  const double db = attr.DatabaseRouteDistanceAt(t);
  const double slow = SlowDeviationBound(attr, elapsed);
  const double fast = FastDeviationBound(attr, elapsed);
  // "Slow" is behind the database position along the direction of travel;
  // "fast" is ahead. Map both into route-distance coordinates.
  double lo;
  double hi;
  if (attr.direction == TravelDirection::kForward) {
    lo = db - slow;
    hi = db + fast;
  } else {
    lo = db - fast;
    hi = db + slow;
  }
  const double len = route.Length();
  UncertaintyInterval interval;
  interval.lo = std::clamp(lo, 0.0, len);
  interval.hi = std::clamp(hi, 0.0, len);
  if (interval.lo > interval.hi) std::swap(interval.lo, interval.hi);
  return interval;
}

UncertaintyInterval ComputeUncertaintySpan(const PositionAttribute& attr,
                                           const geo::Route& route, Time t1,
                                           Time t2) {
  if (t1 > t2) std::swap(t1, t2);
  UncertaintyInterval span = ComputeUncertainty(attr, route, t1);
  auto sample = [&](Time t) {
    const UncertaintyInterval iv = ComputeUncertainty(attr, route, t);
    span.lo = std::min(span.lo, iv.lo);
    span.hi = std::max(span.hi, iv.hi);
  };
  sample(t2);
  for (Duration offset : BoundCriticalTimes(attr)) {
    const Time t = attr.start_time + offset;
    if (t > t1 && t < t2) sample(t);
  }
  return span;
}

std::string_view RegionRelationName(RegionRelation r) {
  switch (r) {
    case RegionRelation::kMustBeIn:
      return "must";
    case RegionRelation::kMayBeIn:
      return "may";
    case RegionRelation::kOutside:
      return "outside";
  }
  return "unknown";
}

double ProbabilityInPolygon(const UncertaintyInterval& interval,
                            const geo::Route& route,
                            const geo::Polygon& polygon) {
  const geo::Polyline& shape = route.shape();
  const double width = interval.Width();
  if (width <= 1e-12) {
    return polygon.Contains(shape.PointAtDistance(interval.lo)) ? 1.0 : 0.0;
  }
  const double inside =
      shape.SubLengthInsidePolygon(interval.lo, interval.hi, polygon);
  return std::clamp(inside / width, 0.0, 1.0);
}

RegionRelation ClassifyAgainstPolygon(const UncertaintyInterval& interval,
                                      const geo::Route& route,
                                      const geo::Polygon& polygon) {
  const geo::Polyline& shape = route.shape();
  if (shape.SubInsidePolygon(interval.lo, interval.hi, polygon)) {
    return RegionRelation::kMustBeIn;
  }
  if (shape.SubIntersectsPolygon(interval.lo, interval.hi, polygon)) {
    return RegionRelation::kMayBeIn;
  }
  return RegionRelation::kOutside;
}

}  // namespace modb::core
