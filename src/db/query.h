#ifndef MODB_DB_QUERY_H_
#define MODB_DB_QUERY_H_

#include <vector>

#include "core/position_attribute.h"
#include "core/types.h"
#include "core/uncertainty.h"
#include "geo/point.h"
#include "geo/route.h"

namespace modb::db {

/// How much of the fleet an answer covers. A single-shard (unsharded)
/// store always answers complete; the sharded store marks an answer
/// partial when quarantined shards were excluded from the fan-out. The
/// paper's asymmetry carries over to degraded reads: every id a healthy
/// shard proves MUST is still provably inside (Props 2–4 hold per
/// object), so MUST answers stay *sound* — they only lose completeness —
/// while MAY answers lose both directions and must be treated as a lower
/// bound on the candidate set.
struct QueryCompleteness {
  /// True when every shard contributed (the default, so answers from the
  /// unsharded store read as complete without any wiring).
  bool complete = true;
  /// Shards whose objects the answer cannot speak for, ascending.
  std::vector<std::size_t> excluded_shards;

  friend bool operator==(const QueryCompleteness&,
                         const QueryCompleteness&) = default;
};

/// Answer to "what is the current position of m?" (paper §1, §3.3): the
/// database position plus the bound B on the deviation — the actual
/// position is within `deviation_bound` route-distance of `position`,
/// somewhere inside `uncertainty` on `route`.
struct PositionAnswer {
  core::ObjectId id = core::kInvalidObjectId;
  core::Time query_time = 0.0;
  geo::RouteId route = geo::kInvalidRouteId;
  /// Route-distance of the database position.
  double route_distance = 0.0;
  /// 2-D database position returned to the user.
  geo::Point2 position;
  /// Bound on the slow (behind) deviation (propositions 2 / 4).
  double slow_bound = 0.0;
  /// Bound on the fast (ahead) deviation (propositions 3 / 4).
  double fast_bound = 0.0;
  /// Bound on the deviation in either direction (corollary 1 / prop. 4).
  double deviation_bound = 0.0;
  /// The stretch of route the object is guaranteed to be on.
  core::UncertaintyInterval uncertainty;
};

/// Answer to "retrieve the k objects nearest to a point at time t" (the
/// paper's trucking query — "the trucks currently within 1 mile of truck
/// ABT312" — generalised to k-nearest). Distances account for the
/// uncertainty interval: the object is guaranteed to be between
/// `min_possible_distance` and `max_possible_distance` from the query
/// point; ordering is by distance to the database position.
struct NearestAnswer {
  struct Item {
    core::ObjectId id = core::kInvalidObjectId;
    /// Euclidean distance from the query point to the database position.
    double db_distance = 0.0;
    /// Closest the object can possibly be (distance to the uncertainty
    /// interval).
    double min_possible_distance = 0.0;
    /// Farthest the object can possibly be.
    double max_possible_distance = 0.0;
  };
  core::Time query_time = 0.0;
  /// Up to k items, ascending by `db_distance`.
  std::vector<Item> items;
  /// Total candidates refined across every expanding index probe (the
  /// work the query did, not the final probe's yield).
  std::size_t candidates_examined = 0;
  /// Fleet coverage; partial when quarantined shards were excluded (a
  /// nearer object could live on an excluded shard).
  QueryCompleteness completeness;
};

/// Answer to "retrieve the objects that are inside polygon G at some time
/// within [t1, t2]" — the time-window query the 3-D time-space index
/// supports natively (the query region is G's bounding box extruded over
/// the window). `may` is exact for objects whose uncertainty interval
/// sweeps into G at any instant of the window; `must_at_some_time` is the
/// subset provably inside at one of the sampled instants (conservative).
struct IntervalRangeAnswer {
  core::Time window_start = 0.0;
  core::Time window_end = 0.0;
  std::vector<core::ObjectId> may;
  std::vector<core::ObjectId> must_at_some_time;
  std::size_t candidates_examined = 0;
  /// Fleet coverage; see `QueryCompleteness`.
  QueryCompleteness completeness;
};

/// Answer to "retrieve the objects which are inside polygon G at time t0"
/// (paper §4): objects that must be in G, and the additional objects that
/// may be in G (theorem 5 / 6 semantics). `must` is a subset of the
/// conceptual answer set; `must + may` is a superset.
struct RangeAnswer {
  core::Time query_time = 0.0;
  std::vector<core::ObjectId> must;
  std::vector<core::ObjectId> may;
  /// For each entry of `may` (parallel array): the probability that the
  /// object actually is inside G, under a position uniform over its
  /// uncertainty interval (strictly in (0, 1) for MAY objects; MUST
  /// objects are 1 and omitted-outside objects 0 by construction).
  std::vector<double> may_probability;
  /// Candidates the index produced (for selectivity/benchmark accounting).
  std::size_t candidates_examined = 0;
  /// Fleet coverage; see `QueryCompleteness`. MUST stays sound when
  /// partial; MAY is incomplete.
  QueryCompleteness completeness;
};

}  // namespace modb::db

#endif  // MODB_DB_QUERY_H_
