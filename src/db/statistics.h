#ifndef MODB_DB_STATISTICS_H_
#define MODB_DB_STATISTICS_H_

#include <array>
#include <cstdint>

#include "db/mod_database.h"
#include "util/stats.h"
#include "util/table.h"

namespace modb::db {

/// Aggregate statistics of the database at a point in time: the monitoring
/// view an operator of a fleet-tracking deployment watches.
struct DatabaseStats {
  core::Time as_of = 0.0;
  std::size_t num_objects = 0;
  std::uint64_t total_updates = 0;

  /// Objects per update policy, indexed by PolicyKind's underlying value.
  std::array<std::size_t, 7> objects_per_policy = {};

  /// Distribution of the deviation bound the DBMS would currently quote.
  util::RunningStat bound;
  /// Distribution of time since each object's last update.
  util::RunningStat staleness;
  /// Distribution of declared speeds.
  util::RunningStat declared_speed;
  /// Distribution of per-object update counts.
  util::RunningStat updates_per_object;
};

/// Computes the statistics of `db` at time `now`.
DatabaseStats ComputeStatistics(const ModDatabase& db, core::Time now);

/// Renders the statistics as an aligned table.
util::Table StatisticsTable(const DatabaseStats& stats);

}  // namespace modb::db

#endif  // MODB_DB_STATISTICS_H_
