#include "db/sharded_database.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <mutex>
#include <thread>

namespace modb::db {

namespace {

// SplitMix64 finaliser: ObjectIds are often sequential, and libstdc++'s
// std::hash<uint64_t> is the identity, which would shard round-robin but
// correlate with any id-structured workload. A real mix decorrelates.
std::uint64_t MixId(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::size_t ResolveQueryThreads(const ShardedModDatabaseOptions& options,
                                std::size_t num_shards) {
  if (options.num_query_threads !=
      ShardedModDatabaseOptions::kAutoQueryThreads) {
    return options.num_query_threads;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw <= 1) return 0;  // fan out inline; extra threads only thrash
  return std::min<std::size_t>(num_shards, hw - 1);
}

// Re-sorts `may` by id keeping the probability column aligned (the merged
// concatenation of per-shard answers is sorted within but not across
// shards).
void SortMayWithProbabilities(std::vector<core::ObjectId>* may,
                              std::vector<double>* probability) {
  std::vector<std::size_t> order(may->size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return (*may)[a] < (*may)[b];
  });
  std::vector<core::ObjectId> sorted_may;
  std::vector<double> sorted_prob;
  sorted_may.reserve(order.size());
  sorted_prob.reserve(order.size());
  for (std::size_t i : order) {
    sorted_may.push_back((*may)[i]);
    sorted_prob.push_back((*probability)[i]);
  }
  *may = std::move(sorted_may);
  *probability = std::move(sorted_prob);
}

// Defensive cross-shard dedup: every object is owned by exactly one shard,
// so a duplicate in a merged answer would mean shard-straddling state
// (e.g. an entry outliving a membership change in some shard-local cache).
// The merge dedups regardless, keeping the answer well-formed and the
// merge deterministic. Inputs must be sorted by id; for MAY the first
// occurrence's probability is kept.
void DedupSortedIds(std::vector<core::ObjectId>* ids) {
  ids->erase(std::unique(ids->begin(), ids->end()), ids->end());
}

void DedupMayWithProbabilities(std::vector<core::ObjectId>* may,
                               std::vector<double>* probability) {
  std::size_t out = 0;
  for (std::size_t i = 0; i < may->size(); ++i) {
    if (out > 0 && (*may)[i] == (*may)[out - 1]) continue;
    (*may)[out] = (*may)[i];
    (*probability)[out] = (*probability)[i];
    ++out;
  }
  may->resize(out);
  probability->resize(out);
}

// Deterministic cross-shard event order within one mutation call: input
// record slot first, then subscription id. At most one event exists per
// (record, subscription) pair, so the key is total.
bool EventOrder(const SubscriptionEvent& a, const SubscriptionEvent& b) {
  if (a.ordinal != b.ordinal) return a.ordinal < b.ordinal;
  return a.subscription < b.subscription;
}

}  // namespace

ShardedModDatabase::ShardedModDatabase(const geo::RouteNetwork* network,
                                       ShardedModDatabaseOptions options)
    : network_(network),
      options_(std::move(options)),
      pool_(ResolveQueryThreads(
          options_, std::max<std::size_t>(options_.num_shards, 1))) {
  const std::size_t num_shards = std::max<std::size_t>(options_.num_shards, 1);
  // The velocity-partitioned index fans band probes out on a pool; give
  // the per-shard indexes this layer's pool unless the caller supplied
  // one. ParallelFor is caller-participating, so a shard query already
  // running on a pool worker nests safely.
  if (options_.db.index_kind == IndexKind::kVelocityPartitioned &&
      options_.db.index_pool == nullptr) {
    options_.db.index_pool = &pool_;
  }
  supervisor_ = std::make_unique<ShardSupervisor>(num_shards,
                                                  options_.supervisor,
                                                  &metrics_);
  shards_.reserve(num_shards);
  for (std::size_t i = 0; i < num_shards; ++i) {
    auto shard = std::make_unique<Shard>();
    ModDatabaseOptions db_options = options_.db;
    if (db_options.index_storage.kind == storage::StorageKind::kDisk) {
      // Each shard's index needs its own page file; a shared path would
      // have every shard clobbering one file's generations.
      db_options.index_storage.path += ".shard" + std::to_string(i);
    }
    shard->db = std::make_unique<ModDatabase>(network, db_options);
    shard->db->SetMetrics(&metrics_);  // shards share the mod.* counters
    if (options_.enable_subscriptions) {
      shard->subscriptions = std::make_unique<SubscriptionEngine>(
          network, options_.subscriptions);
      // Engines share the sub.* instruments, like the mod.* aggregation.
      shard->subscriptions->SetMetrics(&metrics_, "sub.");
      shard->db->AttachSubscriptions(shard->subscriptions.get());
    }
    if (options_.result_cache_entries > 0) {
      RangeQueryCache::Options cache_options;
      cache_options.capacity = options_.result_cache_entries;
      // Invalidation must cover everything the index can still surface
      // (the RangeQueryCache horizon contract).
      cache_options.matcher.horizon =
          std::max(cache_options.matcher.horizon, options_.db.oplane_horizon);
      shard->cache = std::make_unique<RangeQueryCache>(network, cache_options);
      shard->cache->SetMetrics(&metrics_, "sub.cache.");
      shard->db->AttachResultCache(shard->cache.get());
    }
    shards_.push_back(std::move(shard));
  }

  if (!options_.durable_dir.empty()) {
    // Recover every shard in parallel on the fan-out pool: restart time is
    // bounded by the largest shard, not the sum. Each worker touches only
    // its own shard; aggregation below runs after the barrier, in shard
    // order, so the report (and which error wins) is deterministic
    // regardless of thread count.
    const auto started = std::chrono::steady_clock::now();
    std::vector<util::Status> statuses(num_shards);
    FanOut([&](std::size_t i) {
      auto durability = DurabilityManager::Open(shards_[i]->db.get(),
                                                ShardDirOf(i),
                                                options_.durability);
      if (durability.ok()) {
        shards_[i]->durability = std::move(*durability);
      } else {
        statuses[i] = durability.status();
      }
    });
    for (std::size_t i = 0; i < num_shards; ++i) {
      if (!statuses[i].ok()) {
        if (durability_status_.ok()) durability_status_ = statuses[i];
        // A shard whose durable home failed to open is a failure domain
        // down at birth: quarantine it and let the remediation loop keep
        // retrying the recovery instead of silently serving an
        // in-memory-only shard that forgets everything it is told.
        supervisor_->ReportFault(i, statuses[i]);
        continue;
      }
      // Shards share the wal.* / recovery.* instruments, mirroring the
      // mod.* aggregation above.
      shards_[i]->durability->ExportMetrics(&metrics_);
      const RecoveryReport& r = shards_[i]->durability->recovery_report();
      recovery_report_.recovered |= r.recovered;
      recovery_report_.checkpoint_id =
          std::max(recovery_report_.checkpoint_id, r.checkpoint_id);
      recovery_report_.checkpoints_skipped += r.checkpoints_skipped;
      recovery_report_.objects_restored += r.objects_restored;
      recovery_report_.wal_records_replayed += r.wal_records_replayed;
      recovery_report_.wal_records_skipped += r.wal_records_skipped;
      recovery_report_.wal_bytes_truncated += r.wal_bytes_truncated;
      recovery_report_.wal_corrupt_segments += r.wal_corrupt_segments;
      if (!r.clean) {
        recovery_report_.clean = false;
        if (recovery_report_.detail.empty()) {
          recovery_report_.detail = r.detail;
        }
        // Unclean recovery (truncated/skipped records) still serves — the
        // store holds the last consistent prefix — but the shard is
        // marked degraded so the loss is visible in the health gauges.
        supervisor_->ReportDegraded(
            i, util::Status::Internal("unclean recovery: " + r.detail));
      }
    }
    // Elapsed fan-out time, not the per-shard sum — what a restart costs.
    recovery_report_.duration_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - started)
            .count();
  }
  queries_range_ = metrics_.GetCounter("sharded.queries_range");
  queries_nearest_ = metrics_.GetCounter("sharded.queries_nearest");
  queries_interval_ = metrics_.GetCounter("sharded.queries_interval");
  queries_position_ = metrics_.GetCounter("sharded.queries_position");
  latency_range_ = metrics_.GetLatency("sharded.query_range");
  latency_nearest_ = metrics_.GetLatency("sharded.query_nearest");
  latency_interval_ = metrics_.GetLatency("sharded.query_interval");
  latency_update_ = metrics_.GetLatency("sharded.apply_update");

  // Last: the remediation loop may fire as soon as it starts (a shard can
  // already be quarantined from the recovery pass above), so every member
  // it touches must be fully built first.
  supervisor_->Start([this](std::size_t s) { return RemediateShard(s); });
}

std::string ShardedModDatabase::ShardDirOf(std::size_t i) const {
  char name[32];
  std::snprintf(name, sizeof(name), "shard-%04zu", i);
  return (std::filesystem::path(options_.durable_dir) / name).string();
}

std::size_t ShardedModDatabase::ShardOf(core::ObjectId id) const {
  return static_cast<std::size_t>(MixId(id) % shards_.size());
}

util::Status ShardedModDatabase::Insert(core::ObjectId id, std::string label,
                                        const core::PositionAttribute& attr) {
  const std::size_t s = ShardOf(id);
  if (!supervisor_->writable(s)) return supervisor_->UnavailableStatus(s);
  Shard& shard = *shards_[s];
  std::unique_lock lock(shard.mu);
  util::Status status = shard.db->Insert(id, std::move(label), attr);
  NoteMutation(shard);
  if (shard.subscriptions != nullptr) {
    // Published while still holding the shard lock so events of
    // serialised same-shard mutations never invert.
    PublishShardEvents(shard.subscriptions->TakeEvents());
  }
  NoteWriteOutcome(s, status);
  return status;
}

util::Status ShardedModDatabase::BulkInsert(std::vector<BulkObject> objects) {
  // Reject cross-shard duplicate ids up front (per-shard BulkInsert only
  // sees its own partition). `rows[s][j]` is the global input slot of
  // shard s's j-th row, for the event-ordinal rewrite below.
  std::vector<std::vector<BulkObject>> partitions(shards_.size());
  std::vector<std::vector<std::size_t>> rows(shards_.size());
  {
    std::unordered_map<core::ObjectId, bool> batch_ids;
    for (std::size_t i = 0; i < objects.size(); ++i) {
      BulkObject& object = objects[i];
      if (batch_ids.contains(object.id)) {
        return util::Status::AlreadyExists("object " +
                                           std::to_string(object.id));
      }
      batch_ids.emplace(object.id, true);
      const std::size_t s = ShardOf(object.id);
      // All-or-nothing contract: a bulk load that would touch a
      // quarantined shard fails whole, up front, before any shard loads.
      if (!supervisor_->writable(s)) return supervisor_->UnavailableStatus(s);
      rows[s].push_back(i);
      partitions[s].push_back(std::move(object));
    }
  }

  std::vector<util::Status> statuses(shards_.size());
  std::vector<std::vector<SubscriptionEvent>> shard_events(shards_.size());
  FanOut([&](std::size_t s) {
    if (partitions[s].empty()) return;
    Shard& shard = *shards_[s];
    std::unique_lock lock(shard.mu);
    // Copied (not moved) into the shard so the partition is still around
    // for cross-shard rollback below.
    statuses[s] = shard.db->BulkInsert(partitions[s]);
    NoteMutation(shard);
    if (shard.subscriptions != nullptr) {
      // Held back until the whole call is known to succeed; discarded on
      // rollback below.
      shard_events[s] = shard.subscriptions->TakeEvents();
    }
    NoteWriteOutcome(s, statuses[s]);
  });

  util::Status first_error;
  for (const util::Status& s : statuses) {
    if (!s.ok()) {
      first_error = s;
      break;
    }
  }
  if (first_error.ok()) {
    std::vector<SubscriptionEvent> merged_events;
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      for (SubscriptionEvent& event : shard_events[s]) {
        event.ordinal = rows[s][event.ordinal];
        merged_events.push_back(std::move(event));
      }
    }
    if (!merged_events.empty()) {
      std::sort(merged_events.begin(), merged_events.end(), EventOrder);
      PublishShardEvents(std::move(merged_events));
    }
    return util::Status::Ok();
  }

  // Atomicity across shards: undo the partitions that did load. The undo
  // erases re-notify the shard engines; those events (and the held-back
  // insert events) describe a batch that never happened, so both are
  // drained and dropped — engine membership state round-trips to Outside
  // either way.
  FanOut([&](std::size_t s) {
    if (partitions[s].empty() || !statuses[s].ok()) return;
    Shard& shard = *shards_[s];
    std::unique_lock lock(shard.mu);
    for (const BulkObject& object : partitions[s]) {
      (void)shard.db->Erase(object.id);
    }
    NoteMutation(shard);
    if (shard.subscriptions != nullptr) {
      (void)shard.subscriptions->TakeEvents();
    }
  });
  return first_error;
}

util::Status ShardedModDatabase::ApplyUpdate(
    const core::PositionUpdate& update) {
  util::ScopedLatencyTimer timer(latency_update_);
  const std::size_t s = ShardOf(update.object);
  if (!supervisor_->writable(s)) return supervisor_->UnavailableStatus(s);
  Shard& shard = *shards_[s];
  std::unique_lock lock(shard.mu);
  util::Status status = shard.db->ApplyUpdate(update);
  NoteMutation(shard);
  if (shard.subscriptions != nullptr) {
    PublishShardEvents(shard.subscriptions->TakeEvents());
  }
  NoteWriteOutcome(s, status);
  return status;
}

UpdateBatchResult ShardedModDatabase::ApplyUpdateBatch(
    std::span<const core::PositionUpdate> updates) {
  util::ScopedLatencyTimer timer(latency_update_);
  UpdateBatchResult result;
  result.statuses.assign(updates.size(), util::Status::Ok());
  if (updates.empty()) return result;

  // Partition by owning shard, remembering each record's input slot so the
  // per-record statuses scatter back in order. Same-object updates hash to
  // the same shard with relative order preserved, so the batch-local
  // validation inside the shard sees them exactly as the sequential path
  // would.
  std::vector<std::vector<core::PositionUpdate>> parts(shards_.size());
  std::vector<std::vector<std::size_t>> members(shards_.size());
  for (std::size_t i = 0; i < updates.size(); ++i) {
    const std::size_t s = ShardOf(updates[i].object);
    // Per-record isolation: records routed to a quarantined shard are
    // rejected `Unavailable` in place (retryable once the shard heals);
    // the rest of the batch proceeds — a down shard must not wedge the
    // whole fleet's ingest.
    if (!supervisor_->writable(s)) {
      result.statuses[i] = supervisor_->UnavailableStatus(s);
      ++result.rejected;
      continue;
    }
    parts[s].push_back(updates[i]);
    members[s].push_back(i);
  }

  std::vector<UpdateBatchResult> per_shard(shards_.size());
  std::vector<std::vector<SubscriptionEvent>> shard_events(shards_.size());
  FanOut([&](std::size_t s) {
    if (parts[s].empty()) return;
    Shard& shard = *shards_[s];
    std::unique_lock lock(shard.mu);
    per_shard[s] = shard.db->ApplyUpdateBatch(parts[s]);
    NoteMutation(shard);
    if (shard.subscriptions != nullptr) {
      // Drained under the shard's exclusive lock, so the run contains
      // exactly this call's events — no cross-call mixing.
      shard_events[s] = shard.subscriptions->TakeEvents();
    }
    // The first Internal status (if any) is the representative fault of
    // the shard's whole sub-batch; NoteWriteOutcome is thread-safe.
    util::Status fault;
    for (const util::Status& st : per_shard[s].statuses) {
      if (st.code() == util::StatusCode::kInternal) {
        fault = st;
        break;
      }
    }
    NoteWriteOutcome(s, fault);
  });

  for (std::size_t s = 0; s < shards_.size(); ++s) {
    for (std::size_t j = 0; j < members[s].size(); ++j) {
      result.statuses[members[s][j]] = std::move(per_shard[s].statuses[j]);
    }
    result.applied += per_shard[s].applied;
    result.rejected += per_shard[s].rejected;
  }

  // Merge the per-shard event runs into one deterministic stream: rewrite
  // shard-local ordinals back to global input slots (members[s][j] is the
  // input slot of shard s's j-th record), then order by (slot,
  // subscription) — independent of shard count and fan-out timing.
  std::vector<SubscriptionEvent> merged_events;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    for (SubscriptionEvent& event : shard_events[s]) {
      event.ordinal = members[s][event.ordinal];
      merged_events.push_back(std::move(event));
    }
  }
  if (!merged_events.empty()) {
    std::sort(merged_events.begin(), merged_events.end(), EventOrder);
    PublishShardEvents(std::move(merged_events));
  }
  return result;
}

util::Status ShardedModDatabase::Erase(core::ObjectId id) {
  const std::size_t s = ShardOf(id);
  if (!supervisor_->writable(s)) return supervisor_->UnavailableStatus(s);
  Shard& shard = *shards_[s];
  std::unique_lock lock(shard.mu);
  util::Status status = shard.db->Erase(id);
  NoteMutation(shard);
  if (shard.subscriptions != nullptr) {
    PublishShardEvents(shard.subscriptions->TakeEvents());
  }
  NoteWriteOutcome(s, status);
  return status;
}

bool ShardedModDatabase::subscriptions_enabled() const {
  return shards_[0]->subscriptions != nullptr;
}

util::Status ShardedModDatabase::Subscribe(SubscriptionId id,
                                           const SubscriptionSpec& spec) {
  if (!subscriptions_enabled()) {
    return util::Status::FailedPrecondition(
        "subscriptions are not enabled on this database");
  }
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    Shard& shard = *shards_[s];
    std::unique_lock lock(shard.mu);
    util::Status status = shard.subscriptions->Subscribe(id, spec);
    if (!status.ok()) {
      lock.unlock();
      // All-or-nothing: withdraw from the shards already registered.
      for (std::size_t r = 0; r < s; ++r) {
        Shard& undo = *shards_[r];
        std::unique_lock undo_lock(undo.mu);
        (void)undo.subscriptions->Unsubscribe(id);
      }
      return status;
    }
  }
  return util::Status::Ok();
}

util::Status ShardedModDatabase::Unsubscribe(SubscriptionId id) {
  if (!subscriptions_enabled()) {
    return util::Status::FailedPrecondition(
        "subscriptions are not enabled on this database");
  }
  // Every shard holds the same registry, so the statuses agree; the first
  // one is the answer.
  util::Status first;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    Shard& shard = *shards_[s];
    std::unique_lock lock(shard.mu);
    util::Status status = shard.subscriptions->Unsubscribe(id);
    if (s == 0) first = std::move(status);
  }
  return first;
}

std::size_t ShardedModDatabase::num_subscriptions() const {
  if (!subscriptions_enabled()) return 0;
  const Shard& shard = *shards_[0];
  std::shared_lock lock(shard.mu);
  return shard.subscriptions->num_subscriptions();
}

void ShardedModDatabase::PublishShardEvents(
    std::vector<SubscriptionEvent> events) {
  if (events.empty()) return;
  std::lock_guard lock(events_mu_);
  pending_events_.insert(pending_events_.end(),
                         std::make_move_iterator(events.begin()),
                         std::make_move_iterator(events.end()));
}

std::vector<SubscriptionEvent> ShardedModDatabase::TakeSubscriptionEvents() {
  std::lock_guard lock(events_mu_);
  std::vector<SubscriptionEvent> out = std::move(pending_events_);
  pending_events_.clear();
  return out;
}

util::Result<PositionAnswer> ShardedModDatabase::QueryPosition(
    core::ObjectId id, core::Time t) const {
  queries_position_->Increment();
  const std::size_t s = ShardOf(id);
  // A per-object query has no partial fallback: the one shard that could
  // answer is down, so the typed Unavailable (with the retry hint) is the
  // honest answer.
  if (!supervisor_->readable(s)) return supervisor_->UnavailableStatus(s);
  const Shard& shard = *shards_[s];
  std::shared_lock lock(shard.mu);
  return shard.db->QueryPosition(id, t);
}

QueryCompleteness ShardedModDatabase::ExcludedShards(
    std::vector<char>* skip) const {
  QueryCompleteness completeness;
  skip->assign(shards_.size(), 0);
  // Snapshot the skip set once, up front: a shard healing mid-fan-out must
  // not make the answer's excluded list disagree with the shards actually
  // probed.
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (supervisor_->readable(s)) continue;
    (*skip)[s] = 1;
    completeness.complete = false;
    completeness.excluded_shards.push_back(s);
  }
  return completeness;
}

void ShardedModDatabase::FanOut(
    const std::function<void(std::size_t)>& per_shard) const {
  pool_.ParallelFor(shards_.size(), per_shard);
}

RangeAnswer ShardedModDatabase::QueryRange(const geo::Polygon& region,
                                           core::Time t) const {
  queries_range_->Increment();
  util::ScopedLatencyTimer timer(latency_range_);
  std::vector<char> skip;
  QueryCompleteness completeness = ExcludedShards(&skip);
  std::vector<RangeAnswer> per_shard(shards_.size());
  FanOut([&](std::size_t s) {
    if (skip[s] != 0) return;
    const Shard& shard = *shards_[s];
    if (options_.lock_free_index_probes) {
      // Optimistic split: probe the index without the shard lock, then
      // refine under the shared lock only if no mutation completed in
      // between (see the Shard::mutations protocol comment). The counter
      // recheck makes the answer byte-identical to the locked path.
      const std::uint64_t v1 =
          shard.mutations.load(std::memory_order_seq_cst);
      const std::shared_ptr<ModDatabase> db = SnapshotDb(shard);
      const std::shared_ptr<const index::ObjectIndex> index =
          db->SharedIndex();
      if (index->lock_free_probes()) {
        const std::vector<core::ObjectId> candidates =
            index->Candidates(region, t);
        std::shared_lock lock(shard.mu);
        if (shard.mutations.load(std::memory_order_seq_cst) == v1) {
          db->CountIndexProbe();
          per_shard[s] = db->RefineRange(region, t, candidates);
          return;
        }
      }
    }
    std::shared_lock lock(shard.mu);
    per_shard[s] = shard.db->QueryRange(region, t);
  });
  RangeAnswer merged = MergeRangeAnswers(std::move(per_shard), t);
  merged.completeness = std::move(completeness);
  return merged;
}

RangeAnswer ShardedModDatabase::QueryRangeCached(const geo::Polygon& region,
                                                 core::Time t) const {
  queries_range_->Increment();
  util::ScopedLatencyTimer timer(latency_range_);
  std::vector<char> skip;
  QueryCompleteness completeness = ExcludedShards(&skip);
  std::vector<RangeAnswer> per_shard(shards_.size());
  FanOut([&](std::size_t s) {
    if (skip[s] != 0) return;
    const Shard& shard = *shards_[s];
    std::shared_lock lock(shard.mu);
    // Per-shard cache entries are shard-local (complete for their shard),
    // so caching here is safe even while the merged answer is partial.
    per_shard[s] = shard.db->QueryRangeCached(region, t);
  });
  RangeAnswer merged = MergeRangeAnswers(std::move(per_shard), t);
  merged.completeness = std::move(completeness);
  return merged;
}

RangeAnswer ShardedModDatabase::MergeRangeAnswers(
    std::vector<RangeAnswer> per_shard, core::Time t) {
  RangeAnswer merged;
  merged.query_time = t;
  for (RangeAnswer& a : per_shard) {
    merged.candidates_examined += a.candidates_examined;
    merged.must.insert(merged.must.end(), a.must.begin(), a.must.end());
    merged.may.insert(merged.may.end(), a.may.begin(), a.may.end());
    merged.may_probability.insert(merged.may_probability.end(),
                                  a.may_probability.begin(),
                                  a.may_probability.end());
  }
  std::sort(merged.must.begin(), merged.must.end());
  DedupSortedIds(&merged.must);
  SortMayWithProbabilities(&merged.may, &merged.may_probability);
  DedupMayWithProbabilities(&merged.may, &merged.may_probability);
  return merged;
}

NearestAnswer ShardedModDatabase::QueryNearest(const geo::Point2& point,
                                               std::size_t k,
                                               core::Time t) const {
  queries_nearest_->Increment();
  util::ScopedLatencyTimer timer(latency_nearest_);
  NearestAnswer merged;
  merged.query_time = t;
  if (k == 0) return merged;

  std::vector<char> skip;
  merged.completeness = ExcludedShards(&skip);
  std::vector<NearestAnswer> per_shard(shards_.size());
  FanOut([&](std::size_t s) {
    if (skip[s] != 0) return;
    const Shard& shard = *shards_[s];
    if (options_.lock_free_index_probes) {
      const std::uint64_t v1 =
          shard.mutations.load(std::memory_order_seq_cst);
      const std::shared_ptr<ModDatabase> db = SnapshotDb(shard);
      const std::shared_ptr<const index::ObjectIndex> index =
          db->SharedIndex();
      if (index->lock_free_probes()) {
        // Nearest interleaves probes and refinement, so the split runs
        // inside the database: every expanding probe goes through the
        // lock-free index handle, every record-map pass re-acquires the
        // shared lock and re-validates the mutation counter. Any
        // concurrent write voids the whole query (false) → locked
        // fallback below.
        NearestAnswer answer;
        const bool ok = db->QueryNearestSplit(
            point, k, t,
            [&](const geo::Polygon& probe) {
              db->CountIndexProbe();
              return index->Candidates(probe, t);
            },
            [&](const std::function<void()>& fn) {
              std::shared_lock lock(shard.mu);
              if (shard.mutations.load(std::memory_order_seq_cst) != v1) {
                return false;
              }
              fn();
              return true;
            },
            &answer);
        if (ok) {
          per_shard[s] = std::move(answer);
          return;
        }
      }
    }
    std::shared_lock lock(shard.mu);
    per_shard[s] = shard.db->QueryNearest(point, k, t);
  });

  // Global top-k re-merge: every shard returned its own k best, so the
  // union contains the global k best.
  for (NearestAnswer& a : per_shard) {
    merged.candidates_examined += a.candidates_examined;
    merged.items.insert(merged.items.end(), a.items.begin(), a.items.end());
  }
  std::sort(merged.items.begin(), merged.items.end(),
            [](const NearestAnswer::Item& a, const NearestAnswer::Item& b) {
              return a.db_distance < b.db_distance;
            });
  if (merged.items.size() > k) merged.items.resize(k);
  return merged;
}

IntervalRangeAnswer ShardedModDatabase::QueryRangeInterval(
    const geo::Polygon& region, core::Time t1, core::Time t2,
    core::Duration sample_step) const {
  queries_interval_->Increment();
  util::ScopedLatencyTimer timer(latency_interval_);
  std::vector<char> skip;
  QueryCompleteness completeness = ExcludedShards(&skip);
  std::vector<IntervalRangeAnswer> per_shard(shards_.size());
  const core::Time window_lo = std::min(t1, t2);
  const core::Time window_hi = std::max(t1, t2);
  FanOut([&](std::size_t s) {
    if (skip[s] != 0) return;
    const Shard& shard = *shards_[s];
    if (options_.lock_free_index_probes) {
      const std::uint64_t v1 =
          shard.mutations.load(std::memory_order_seq_cst);
      const std::shared_ptr<ModDatabase> db = SnapshotDb(shard);
      const std::shared_ptr<const index::ObjectIndex> index =
          db->SharedIndex();
      if (index->lock_free_probes()) {
        const std::vector<core::ObjectId> candidates =
            index->CandidatesInWindow(region, window_lo, window_hi);
        std::shared_lock lock(shard.mu);
        if (shard.mutations.load(std::memory_order_seq_cst) == v1) {
          db->CountIndexProbe();
          per_shard[s] = db->RefineRangeInterval(region, window_lo, window_hi,
                                                 sample_step, candidates);
          return;
        }
      }
    }
    std::shared_lock lock(shard.mu);
    per_shard[s] = shard.db->QueryRangeInterval(region, t1, t2, sample_step);
  });

  IntervalRangeAnswer merged;
  merged.completeness = std::move(completeness);
  merged.window_start = std::min(t1, t2);
  merged.window_end = std::max(t1, t2);
  for (IntervalRangeAnswer& a : per_shard) {
    merged.candidates_examined += a.candidates_examined;
    merged.may.insert(merged.may.end(), a.may.begin(), a.may.end());
    merged.must_at_some_time.insert(merged.must_at_some_time.end(),
                                    a.must_at_some_time.begin(),
                                    a.must_at_some_time.end());
  }
  std::sort(merged.may.begin(), merged.may.end());
  std::sort(merged.must_at_some_time.begin(), merged.must_at_some_time.end());
  DedupSortedIds(&merged.may);
  DedupSortedIds(&merged.must_at_some_time);
  return merged;
}

util::Result<MovingObjectRecord> ShardedModDatabase::GetRecord(
    core::ObjectId id) const {
  const std::size_t s = ShardOf(id);
  if (!supervisor_->readable(s)) return supervisor_->UnavailableStatus(s);
  const Shard& shard = *shards_[s];
  std::shared_lock lock(shard.mu);
  auto result = shard.db->Get(id);
  if (!result.ok()) return result.status();
  return **result;  // copy out while the lock is held
}

void ShardedModDatabase::ForEachRecord(
    const std::function<void(const MovingObjectRecord&)>& fn) const {
  for (const auto& shard : shards_) {
    std::shared_lock lock(shard->mu);
    shard->db->ForEachRecord(fn);
  }
}

std::size_t ShardedModDatabase::num_objects() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::shared_lock lock(shard->mu);
    total += shard->db->num_objects();
  }
  return total;
}

util::Status ShardedModDatabase::Checkpoint() {
  bool any = false;
  for (const auto& shard : shards_) {
    if (shard->durability != nullptr) {
      any = true;
      break;
    }
  }
  if (!any) {
    return util::Status::FailedPrecondition("durability is not enabled");
  }

  // Every durable shard attempts its checkpoint, in parallel, regardless
  // of how the others fare — one failing shard must not leave the rest
  // un-checkpointed (the old behaviour aborted on first error, so shard K
  // failing starved shards K+1..N of their checkpoint forever). A failed
  // shard keeps its previous WAL attached and intact: DurabilityManager
  // publishes the new snapshot and opens the new epoch before any
  // truncation, so no shard's log is cut before its replacement snapshot
  // is durably synced.
  std::vector<util::Status> statuses(shards_.size());
  std::vector<char> attempted(shards_.size(), 0);
  FanOut([&](std::size_t s) {
    Shard& shard = *shards_[s];
    if (shard.durability == nullptr) return;
    // Quarantined/recovering shards are the remediation loop's to fix
    // (its re-admission path checkpoints); skipping them keeps a routine
    // fleet checkpoint from racing the recovery swap.
    if (!supervisor_->writable(s)) return;
    attempted[s] = 1;
    std::unique_lock lock(shard.mu);
    statuses[s] = shard.durability->Checkpoint();
    // A failure that poisoned the WAL is a hard fault: quarantine (under
    // the shard lock, like every write-path fault check). A failure that
    // left the old WAL attached and intact is handled as the soft tier
    // below.
    if (!statuses[s].ok()) NoteWriteOutcome(s, util::Status::Ok());
  });

  std::size_t succeeded = 0;
  std::size_t failed = 0;
  std::string detail;
  for (std::size_t s = 0; s < statuses.size(); ++s) {
    if (attempted[s] == 0) continue;
    if (statuses[s].ok()) {
      ++succeeded;
      supervisor_->ClearDegraded(s);
      continue;
    }
    ++failed;
    if (supervisor_->writable(s)) {
      supervisor_->ReportDegraded(s, statuses[s]);
    }
    if (!detail.empty()) detail += "; ";
    detail += "shard " + std::to_string(s) + ": " + statuses[s].message();
  }
  if (failed == 0) return util::Status::Ok();
  return util::Status::Internal(
      "checkpoint failed on " + std::to_string(failed) + " of " +
      std::to_string(succeeded + failed) + " shards (" + detail + "); " +
      std::to_string(succeeded) + " checkpointed successfully");
}

void ShardedModDatabase::NoteWriteOutcome(std::size_t s,
                                          const util::Status& status) {
  // Caller holds shard s's lock (durability/wal may otherwise be swapped
  // under us by the remediation loop).
  const Shard& shard = *shards_[s];
  if (shard.durability != nullptr) {
    const WalWriter* wal = shard.durability->wal();
    if (wal != nullptr && !wal->poison().ok()) {
      supervisor_->ReportFault(s, wal->poison());
      return;
    }
  }
  // An Internal status without WAL poison (e.g. an in-memory-only shard's
  // write failing inside the store) is still a fault; the store's normal
  // rejections use NotFound/AlreadyExists/InvalidArgument and stay
  // invisible here.
  if (status.code() == util::StatusCode::kInternal) {
    supervisor_->ReportFault(s, status);
  }
}

util::Status ShardedModDatabase::RemediateShard(std::size_t s) {
  Shard& shard = *shards_[s];
  std::unique_lock lock(shard.mu);

  // Flavour 1 — poisoned WAL on an intact store. The poison aborted its
  // mutation before the memory commit, so memory is the source of truth:
  // rotate the writer to a fresh segment and checkpoint (the fresh epoch
  // covers the whole in-memory state). No swap, no repriming needed.
  if (shard.durability != nullptr) {
    const WalWriter* wal = shard.durability->wal();
    if (wal != nullptr && !wal->poison().ok()) {
      util::Status reopened = shard.durability->TryReopenWal();
      if (reopened.ok()) return reopened;
      // The reopen itself failed (the fault window may still cover file
      // opens); fall through to the full rebuild, and if that also fails
      // the supervisor re-arms the backoff.
    }
  }

  // Flavour 2 — full re-recovery: replay the shard's durable home into a
  // fresh store and swap it in. Covers startup bootstrap failures (no
  // durability attached at all) and anything flavour 1 could not fix.
  if (options_.durable_dir.empty()) {
    return util::Status::FailedPrecondition(
        "shard " + std::to_string(s) +
        " has no durable home to recover from");
  }
  auto fresh = std::make_unique<ModDatabase>(network_, options_.db);
  fresh->SetMetrics(&metrics_);
  // The old manager detaches its WAL in its destructor (touches the old
  // db), so it must die while the old db is still alive — before the swap.
  shard.durability.reset();
  auto durability =
      DurabilityManager::Open(fresh.get(), ShardDirOf(s), options_.durability);
  if (!durability.ok()) return durability.status();
  {
    // A lock-free probe may be pinning the old database right now; the
    // swap happens under db_swap_mu so the probe's SnapshotDb saw a whole
    // pointer, and its shared_ptr keeps the old store alive until the
    // probe finishes (the mutation bump below voids its answer anyway).
    std::lock_guard swap_lock(shard.db_swap_mu);
    shard.db = std::move(fresh);
  }
  NoteMutation(shard);
  shard.durability = std::move(*durability);
  shard.durability->ExportMetrics(&metrics_);

  if (shard.subscriptions != nullptr) {
    // Attached only after Open so the recovery replay emits no events.
    shard.db->AttachSubscriptions(shard.subscriptions.get());
    // Silent repriming: forget the dead store's memberships, then set each
    // recovered object's relation without emitting. The recovered store
    // holds exactly the durably-committed attributes, so the engine ends
    // up in the state those commits produced and the post-recovery event
    // stream continues as if the fault never happened.
    shard.subscriptions->ResetTracking();
    shard.db->ForEachRecord([&](const MovingObjectRecord& rec) {
      shard.subscriptions->PrimeObject(rec.id, rec.attr);
    });
  }
  if (shard.cache != nullptr) {
    shard.db->AttachResultCache(shard.cache.get());
    // Entries describe the dead store; drop them all.
    shard.cache->Clear();
  }
  return util::Status::Ok();
}

std::string ShardedModDatabase::DumpMetrics() const {
  std::string out = metrics_.Dump();
  out += "gauge sharded.num_shards " + std::to_string(shards_.size()) + '\n';
  out += "gauge sharded.query_threads " + std::to_string(pool_.num_threads()) +
         '\n';
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    std::shared_lock lock(shards_[s]->mu);
    out += "gauge sharded.shard" + std::to_string(s) + ".objects " +
           std::to_string(shards_[s]->db->num_objects()) + '\n';
  }
  return out;
}

}  // namespace modb::db
