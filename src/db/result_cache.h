#ifndef MODB_DB_RESULT_CACHE_H_
#define MODB_DB_RESULT_CACHE_H_

#include <cstdint>
#include <functional>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>

#include "core/types.h"
#include "db/delta_stream.h"
#include "db/query.h"
#include "geo/polygon.h"
#include "index/oplane.h"
#include "util/metrics.h"

namespace modb::db {

/// Hot ad-hoc result cache for instantaneous range queries, invalidated by
/// the same delta stream that drives the subscription engine.
///
/// Entries are keyed by the exact query (region vertices + time, bitwise)
/// and carry the query's 3-D box (region bounding box at the time slice);
/// a committed delta evicts every entry whose box intersects the delta's
/// o-plane dirty boxes — the same conservative cover the subscription
/// matcher joins against — so a hit is always byte-identical to
/// recomputing. Eviction is LRU at `Options::capacity`.
///
/// Horizon contract: `matcher.horizon` must be at least the database's
/// `oplane_horizon`. The cache serves the same query-visibility window the
/// o-plane indexes implement — an answer at a time further than the
/// horizon past an object's last report is out of contract for the tree
/// indexes (they drop the object entirely), and the cache inherits that.
///
/// Thread notes: lookups and invalidation are already serialised by the
/// owning database's locking (readers hold the shard's shared lock, the
/// delta stream runs under its exclusive lock); the internal mutex only
/// protects the LRU structure from concurrent readers.
class RangeQueryCache final : public DeltaConsumer {
 public:
  struct Options {
    /// Maximum cached answers (>= 1; 0 is promoted to 1).
    std::size_t capacity = 64;
    /// Dirty-box cover for invalidation; see the horizon contract above.
    index::OPlaneOptions matcher;

    Options() {
      matcher.horizon = 120.0;
      matcher.slab_width = 10.0;
    }
  };

  /// `network` must outlive the cache.
  RangeQueryCache(const geo::RouteNetwork* network, Options options);

  RangeQueryCache(const RangeQueryCache&) = delete;
  RangeQueryCache& operator=(const RangeQueryCache&) = delete;

  /// Returns the cached answer for (region, t), or runs `compute`, caches
  /// its answer, and returns it. Partial answers (`completeness.complete`
  /// false) are returned but never cached — they must not outlive the
  /// quarantine that produced them.
  RangeAnswer GetOrCompute(const geo::Polygon& region, core::Time t,
                           const std::function<RangeAnswer()>& compute);

  /// Delta-stream hook: evicts every entry a committed transition can
  /// affect.
  void OnDeltaBatch(std::span<const AttributeDelta> deltas) override;

  void Clear();
  std::size_t size() const;

  /// Registers counters `<prefix>hits`, `<prefix>misses`,
  /// `<prefix>invalidations`; nullptr detaches. Shared across caches given
  /// the same registry and prefix (the sharded layer's per-shard caches).
  void SetMetrics(util::MetricsRegistry* registry,
                  const std::string& prefix = "sub.cache.");

  /// Lifetime totals, kept locally so tests need no registry.
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t invalidations() const { return invalidations_; }

  const Options& options() const { return options_; }

 private:
  struct Entry {
    std::string key;
    geo::Box3 box;  // region bbox at the time slice — the eviction key
    RangeAnswer answer;
  };

  const geo::RouteNetwork* network_;
  Options options_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> by_key_;

  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t invalidations_ = 0;
  // Optional instruments (see SetMetrics); non-owning, may be null.
  util::Counter* hits_counter_ = nullptr;
  util::Counter* misses_counter_ = nullptr;
  util::Counter* invalidations_counter_ = nullptr;
};

}  // namespace modb::db

#endif  // MODB_DB_RESULT_CACHE_H_
