#ifndef MODB_DB_WAL_H_
#define MODB_DB_WAL_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/position_attribute.h"
#include "core/types.h"
#include "core/update_policy.h"
#include "db/group_model.h"
#include "geo/route_network.h"
#include "util/fault_injection.h"
#include "util/metrics.h"
#include "util/status.h"

namespace modb::db {

/// One logical mutation of the MOD store, as logged and replayed.
enum class WalRecordType : std::uint8_t {
  kInsert = 1,       // object registration (id, label, full position attribute)
  kUpdate = 2,       // position update message (paper §3.1)
  kErase = 3,        // end of trip
  kUpdateBatch = 4,  // batched mutations: one frame, N nested sub-records
  kGroupBatch = 5,   // compact member rows + group-membership transitions
};

/// One member row of a `kGroupBatch` record: a position update whose
/// redundant fields were elided at encode time. A `time_elided` row shares
/// the chunk's base time (the decoder rehydrates `update.time` itself); a
/// `position_elided` row carries no (x, y) — the position is bit-identical
/// to the route geometry at `route_distance`, so the replayer rehydrates
/// it against the route network.
struct GroupWalRow {
  core::PositionUpdate update;
  bool time_elided = false;
  bool position_elided = false;
};

/// Decoded WAL record. Only the fields of the active `type` are meaningful:
/// kInsert uses id/label/attr, kUpdate uses update, kErase uses id,
/// kUpdateBatch uses batch (nesting depth is exactly one: a sub-record is
/// never itself a batch — the decoder rejects deeper nesting), kGroupBatch
/// uses group_base_time/group_rows/group_transitions.
struct WalRecord {
  WalRecordType type = WalRecordType::kUpdate;
  core::ObjectId id = core::kInvalidObjectId;
  std::string label;
  core::PositionAttribute attr;
  core::PositionUpdate update;
  std::vector<WalRecord> batch;
  core::Time group_base_time = 0.0;
  std::vector<GroupWalRow> group_rows;
  std::vector<GroupTransition> group_transitions;
};

/// Encodes a record payload (type byte + little-endian fields; no frame).
std::string EncodeWalRecord(const WalRecord& record);

/// Decodes a payload produced by `EncodeWalRecord`. False on any size or
/// type mismatch (never reads out of bounds).
bool DecodeWalRecord(std::string_view payload, WalRecord* record);

/// File name of WAL segment `seq` of checkpoint epoch `epoch`
/// ("wal-<epoch>-<seq>.log"; both zero-padded so lexicographic = numeric).
std::string WalSegmentFileName(std::uint64_t epoch, std::uint64_t seq);

/// A WAL segment found on disk.
struct WalSegmentInfo {
  std::uint64_t epoch = 0;
  std::uint64_t seq = 0;
  std::string path;
};

/// All WAL segments in `dir`, sorted by (epoch, seq).
std::vector<WalSegmentInfo> ListWalSegments(const std::string& dir);

/// Durability knobs of the write-ahead log.
///
/// Sync policy (group commit): `sync_every_append` is the group of 1
/// (worst case, measured by E14); `sync_every_bytes` / `sync_interval_ms`
/// batch many appends per fsync, bounding loss after a power cut to the
/// configured window; with all three off, syncing is explicit — the caller
/// decides when `Sync()` runs (the OS page cache still bounds loss to the
/// machine-crash window). The triggers compose: an append syncs as soon as
/// any enabled trigger is due.
struct WalWriterOptions {
  /// Rotate to a new segment once the current one reaches this size.
  /// Records never span segments.
  std::uint64_t segment_max_bytes = 4ull << 20;
  /// fsync after every append (group commit of 1).
  bool sync_every_append = false;
  /// Group commit: fsync once this many framed bytes have accumulated
  /// since the last sync (0 disables the byte trigger).
  std::uint64_t sync_every_bytes = 0;
  /// Group commit: an append fsyncs when this much wall time has passed
  /// since the last sync (0 disables). Checked at append time, so an idle
  /// log stays unsynced until the next append or an explicit `Sync()`.
  double sync_interval_ms = 0.0;
  /// File backend; null uses real files. Tests inject faults here.
  util::WritableFileFactory file_factory;
};

/// Append-only, CRC32C-checksummed, segment-rotated binary log of store
/// mutations. Each frame is `[u32 payload_len][u32 masked crc][payload]`,
/// little-endian; a torn tail or flipped bit is detected by the reader and
/// the log is logically truncated at the first bad frame.
///
/// Failure discipline: the first failed append, sync, or rotation
/// *poisons* the writer — every later `Append*`/`Sync` returns the same
/// sticky error. Allowing appends to continue past a failure would put
/// records after a hole in the log; recovery replays a prefix, so those
/// records would silently vanish while the in-memory store kept them.
///
/// Thread-compatibility matches `ModDatabase`: callers serialise access
/// (each shard owns its own writer).
class WalWriter {
 public:
  /// Opens a fresh WAL at epoch `epoch` inside `dir` (created if missing).
  /// Always starts at segment 1 — recovery never appends to old segments;
  /// it starts a new epoch instead.
  static util::Result<std::unique_ptr<WalWriter>> Open(
      const std::string& dir, std::uint64_t epoch, WalWriterOptions options);

  ~WalWriter();
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  util::Status AppendInsert(core::ObjectId id, std::string_view label,
                            const core::PositionAttribute& attr);
  util::Status AppendUpdate(const core::PositionUpdate& update);
  util::Status AppendErase(core::ObjectId id);

  /// Appends a batch of sub-records as a single framed `kUpdateBatch`
  /// record: one CRC frame, one append, one group-commit trigger check —
  /// the log stage of the batched write path. A batch of one is logged as
  /// its plain record (byte-identical with the historical per-call
  /// framing); an empty batch is a no-op. Batches whose encoding would
  /// approach the reader's payload sanity bound are split transparently
  /// into several chunk records. Failure semantics follow the poison
  /// discipline: a failed chunk append fails the call and poisons the
  /// writer, but chunks already appended stay in the log — recovery
  /// replays that *prefix* of the batch (batch atomicity is an in-memory
  /// property; durability is per logged record). Sub-records must not be
  /// batches themselves (nesting depth is one).
  util::Status AppendBatch(const std::vector<WalRecord>& records);

  /// Convenience for the common batch: wraps each update in a kUpdate
  /// sub-record and calls `AppendBatch`.
  util::Status AppendUpdateBatch(
      const std::vector<core::PositionUpdate>& updates);

  /// Appends one update batch in the compact group framing (`kGroupBatch`):
  /// member rows elide the update time when it bit-equals the chunk's base
  /// time and the (x, y) position when it bit-equals the route geometry at
  /// the row's route distance, and the batch's membership transitions ride
  /// in the same frame. With group tracking on this replaces
  /// kUpdate/kUpdateBatch for every accepted batch (batches of one
  /// included). Oversized batches split into chunks like `AppendBatch`
  /// (each chunk carries its own base time; the transitions ride the last
  /// chunk only) with the same prefix-replay failure semantics.
  util::Status AppendGroupBatch(
      const std::vector<core::PositionUpdate>& updates,
      const std::vector<GroupTransition>& transitions,
      const geo::RouteNetwork& network);

  /// Forces buffered frames to durable storage (ends the current group-
  /// commit batch). A no-op when nothing was appended since the last sync.
  util::Status Sync();

  /// Remediation path for a poisoned writer: closes the suspect segment,
  /// truncates it back to its last whole-frame boundary (a failed append
  /// can leave a torn frame on disk, and replay stops at the first bad
  /// frame — every later segment would silently vanish), opens a fresh
  /// segment, and clears the poison only once all of that succeeded. When
  /// the poisoned rotation never created its segment file, the same
  /// sequence number is reused so the on-disk sequence stays contiguous
  /// (replay treats a gap as corruption). On failure the writer stays
  /// poisoned and the call is safe to retry. Durability caveat: frames of
  /// the abandoned segment that were never fsynced are flushed on close
  /// but not synced — callers wanting the full guarantee back should
  /// checkpoint (fresh epoch) after a successful reopen, which is what the
  /// shard supervisor does.
  util::Status TryReopen();

  /// Flushes and closes the current segment; later appends fail.
  util::Status Close();

  std::uint64_t epoch() const { return epoch_; }
  /// Records appended (this writer, all segments).
  std::uint64_t appends() const { return appends_; }
  /// Framed bytes appended (this writer, all segments).
  std::uint64_t bytes() const { return bytes_; }
  std::uint64_t segments_opened() const { return seq_; }
  /// Records / framed bytes appended since the last successful sync — the
  /// open group-commit batch, i.e. what a power cut right now could lose.
  std::uint64_t unsynced_appends() const { return unsynced_appends_; }
  std::uint64_t unsynced_bytes() const { return unsynced_bytes_; }
  /// The sticky failure (OK while healthy); see the class comment.
  const util::Status& poison() const { return poison_; }

  /// Registers `<prefix>appends`, `<prefix>bytes`, `<prefix>syncs` and
  /// `<prefix>rotations` counters plus the `<prefix>group_commit_batch`
  /// distribution in `registry` (nullptr detaches). The batch instrument
  /// reuses the latency-histogram machinery with *records per sync* as the
  /// recorded value (its "µs" unit reads as a record count). Several
  /// writers given the same registry share the instruments, which is how
  /// the sharded layer aggregates per-shard WALs.
  void SetMetrics(util::MetricsRegistry* registry,
                  const std::string& prefix = "wal.");

 private:
  WalWriter(std::string dir, std::uint64_t epoch, WalWriterOptions options)
      : dir_(std::move(dir)), epoch_(epoch), options_(std::move(options)) {}

  util::Status AppendRecord(const WalRecord& record);
  /// Frames and appends an already-encoded payload (the shared tail of
  /// `AppendRecord` and the chunked batch path).
  util::Status AppendEncoded(const std::string& payload);
  util::Status OpenNextSegment();
  /// Syncs if any group-commit trigger is due; OK when none is.
  util::Status MaybeSync();
  /// Records the sticky error and returns it.
  util::Status Poison(util::Status status);
  /// Prefixes `status` with the failing epoch + segment path, so a
  /// quarantine reason names the exact file (already-contextual statuses
  /// pass through unchanged).
  util::Status WithSegmentContext(util::Status status,
                                  const std::string& path) const;
  /// Path of segment `seq` of this writer's epoch inside `dir_`.
  std::string SegmentPath(std::uint64_t seq) const;
  bool BoundedSyncWindow() const {
    return options_.sync_every_append || options_.sync_every_bytes > 0 ||
           options_.sync_interval_ms > 0.0;
  }

  std::string dir_;
  std::uint64_t epoch_;
  WalWriterOptions options_;
  std::unique_ptr<util::WritableFile> segment_;
  std::string segment_path_;  // of the open segment (empty before the first)
  std::uint64_t segment_bytes_ = 0;
  std::uint64_t seq_ = 0;  // segments opened so far; current = seq_
  std::uint64_t appends_ = 0;
  std::uint64_t bytes_ = 0;
  std::uint64_t unsynced_appends_ = 0;
  std::uint64_t unsynced_bytes_ = 0;
  std::chrono::steady_clock::time_point last_sync_ =
      std::chrono::steady_clock::now();
  util::Status poison_;  // non-OK once the log may have a hole
  bool closed_ = false;
  util::Counter* appends_counter_ = nullptr;
  util::Counter* bytes_counter_ = nullptr;
  util::Counter* syncs_counter_ = nullptr;
  util::Counter* rotations_counter_ = nullptr;
  util::LatencyHistogram* batch_hist_ = nullptr;  // records per sync
};

/// Outcome of replaying one epoch's WAL suffix.
struct WalReplayStats {
  /// Records decoded and handed to `apply`.
  std::uint64_t records = 0;
  /// Framed bytes consumed by those records.
  std::uint64_t bytes_replayed = 0;
  /// Bytes dropped at and after the first torn/corrupt frame (including
  /// every byte of later segments — the log is a prefix or nothing).
  std::uint64_t bytes_truncated = 0;
  /// Records whose `apply` returned an error (counted, replay continues).
  std::uint64_t records_skipped = 0;
  std::size_t segments = 0;
  std::size_t corrupt_segments = 0;
  /// False when any truncation happened; `detail` says where.
  bool clean = true;
  std::string detail;
};

/// Replays every record of epoch `epoch` in `dir`, in order, through
/// `apply`. Corruption is graceful degradation, not failure: the replay
/// stops at the first bad frame and reports what was dropped. Only I/O
/// setup problems (unreadable directory, a failing read) return a non-OK
/// status — those name the epoch and the segment path. `reader` lets
/// chaos schedules inject read failures; null uses real reads.
util::Result<WalReplayStats> ReplayWal(
    const std::string& dir, std::uint64_t epoch,
    const std::function<util::Status(const WalRecord&)>& apply,
    util::FileReader reader = nullptr);

}  // namespace modb::db

#endif  // MODB_DB_WAL_H_
