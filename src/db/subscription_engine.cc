#include "db/subscription_engine.h"

#include <algorithm>
#include <cstdio>
#include <utility>

namespace modb::db {

namespace {

/// Whether a `from` -> `to` relation change is visible under `mode`.
bool ModeCares(SubscriptionMode mode, core::RegionRelation from,
               core::RegionRelation to) {
  switch (mode) {
    case SubscriptionMode::kAll:
      return from != to;
    case SubscriptionMode::kMust:
      return (from == core::RegionRelation::kMustBeIn) !=
             (to == core::RegionRelation::kMustBeIn);
    case SubscriptionMode::kMay:
      return (from != core::RegionRelation::kOutside) !=
             (to != core::RegionRelation::kOutside);
  }
  return false;
}

}  // namespace

std::string_view SubscriptionModeName(SubscriptionMode mode) {
  switch (mode) {
    case SubscriptionMode::kMay:
      return "MAY";
    case SubscriptionMode::kMust:
      return "MUST";
    case SubscriptionMode::kAll:
      return "ALL";
  }
  return "unknown";
}

std::string SubscriptionEvent::ToString() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "sub %llu: object %llu %s->%s at t=%g",
                static_cast<unsigned long long>(subscription),
                static_cast<unsigned long long>(object),
                std::string(core::RegionRelationName(from)).c_str(),
                std::string(core::RegionRelationName(to)).c_str(), at);
  return buf;
}

SubscriptionEngine::SubscriptionEngine(const geo::RouteNetwork* network,
                                       Options options)
    : network_(network), options_(options) {}

void SubscriptionEngine::SetMetrics(util::MetricsRegistry* registry,
                                    const std::string& prefix) {
  if (registry == nullptr) {
    evals_counter_ = nullptr;
    evals_saved_counter_ = nullptr;
    events_counter_ = nullptr;
    match_latency_ = nullptr;
    return;
  }
  evals_counter_ = registry->GetCounter(prefix + "evals");
  evals_saved_counter_ = registry->GetCounter(prefix + "evals_saved");
  events_counter_ = registry->GetCounter(prefix + "events_emitted");
  match_latency_ = registry->GetLatency(prefix + "match_latency_us");
}

util::Status SubscriptionEngine::Subscribe(SubscriptionId id,
                                           SubscriptionSpec spec) {
  if (subs_.contains(id)) {
    return util::Status::AlreadyExists("subscription " + std::to_string(id));
  }
  if (!spec.region.Valid()) {
    return util::Status::InvalidArgument("subscription region is degenerate");
  }
  if (spec.windowed && spec.window_end < spec.time) {
    std::swap(spec.time, spec.window_end);
  }
  Subscription sub;
  const core::Time t1 = spec.time;
  const core::Time t2 = spec.windowed ? spec.window_end : spec.time;
  sub.box = geo::Box3(spec.region.BoundingBox(), t1, t2);
  sub.spec = std::move(spec);
  const geo::Box3 box = sub.box;
  subs_.emplace(id, std::move(sub));
  sub_index_.Insert(box, id);
  return util::Status::Ok();
}

util::Status SubscriptionEngine::Unsubscribe(SubscriptionId id) {
  const auto it = subs_.find(id);
  if (it == subs_.end()) {
    return util::Status::NotFound("subscription " + std::to_string(id));
  }
  sub_index_.Remove(it->second.box, id);
  subs_.erase(it);
  return util::Status::Ok();
}

core::RegionRelation SubscriptionEngine::RelationOf(
    SubscriptionId id, core::ObjectId object) const {
  const auto it = subs_.find(id);
  if (it == subs_.end()) return core::RegionRelation::kOutside;
  const auto rel = it->second.state.find(object);
  return rel == it->second.state.end() ? core::RegionRelation::kOutside
                                       : rel->second;
}

core::RegionRelation SubscriptionEngine::EvaluatePair(
    const Subscription& sub, const core::PositionAttribute& attr,
    const geo::Route& route) const {
  // Clip the subscribed time(s) against the attribute's visibility window
  // [start, start + horizon] — the same horizon gate the o-plane indexes
  // implement, so standing queries match what ad-hoc queries can see.
  const core::Time start = attr.start_time;
  const core::Time hend = start + options_.matcher.horizon;
  const core::Time t1 = sub.spec.time;
  const core::Time t2 = sub.spec.windowed ? sub.spec.window_end : sub.spec.time;
  const core::Time w1 = std::max(t1, start);
  const core::Time w2 = std::min(t2, hend);
  if (w1 > w2) return core::RegionRelation::kOutside;

  if (!sub.spec.windowed) {
    // AT form: exact classification at the (clipped) instant.
    const core::UncertaintyInterval iv =
        core::ComputeUncertainty(attr, route, w1);
    return core::ClassifyAgainstPolygon(iv, route, sub.spec.region);
  }

  // DURING form, mirroring QueryRangeInterval: MAY is exact (the swept
  // uncertainty span moves continuously), MUST-at-some-instant is sampled
  // at `must_sample_step` plus the window edges.
  const core::UncertaintyInterval span =
      core::ComputeUncertaintySpan(attr, route, w1, w2);
  if (!route.shape().SubIntersectsPolygon(span.lo, span.hi,
                                          sub.spec.region)) {
    return core::RegionRelation::kOutside;
  }
  const double step = std::max(
      options_.must_sample_step > 0.0 ? options_.must_sample_step : w2 - w1,
      1e-9);
  for (core::Time t = w1;; t += step) {
    const core::Time clamped = std::min(t, w2);
    const core::UncertaintyInterval iv =
        core::ComputeUncertainty(attr, route, clamped);
    if (core::ClassifyAgainstPolygon(iv, route, sub.spec.region) ==
        core::RegionRelation::kMustBeIn) {
      return core::RegionRelation::kMustBeIn;
    }
    if (clamped >= w2) break;
  }
  return core::RegionRelation::kMayBeIn;
}

void SubscriptionEngine::EvaluateOne(SubscriptionId id, Subscription& sub,
                                     const AttributeDelta& delta,
                                     const geo::Route* route_after) {
  core::RegionRelation to = core::RegionRelation::kOutside;
  if (delta.after != nullptr && route_after != nullptr) {
    to = EvaluatePair(sub, *delta.after, *route_after);
  }
  const auto it = sub.state.find(delta.id);
  const core::RegionRelation from =
      it == sub.state.end() ? core::RegionRelation::kOutside : it->second;
  if (to == core::RegionRelation::kOutside) {
    if (it != sub.state.end()) sub.state.erase(it);
  } else if (it != sub.state.end()) {
    it->second = to;
  } else {
    sub.state.emplace(delta.id, to);
  }
  if (from == to || !ModeCares(sub.spec.mode, from, to)) return;
  SubscriptionEvent event;
  event.subscription = id;
  event.object = delta.id;
  event.from = from;
  event.to = to;
  event.at = delta.after != nullptr ? delta.after->start_time
                                    : delta.before->start_time;
  event.ordinal = delta.ordinal;
  events_.push_back(std::move(event));
  ++events_emitted_;
  if (events_counter_ != nullptr) events_counter_->Increment();
}

void SubscriptionEngine::OnDeltaBatch(std::span<const AttributeDelta> deltas) {
  if (subs_.empty() || deltas.empty()) return;
  util::ScopedLatencyTimer timer(match_latency_);

  std::vector<geo::Box3> dirty;
  std::vector<SubscriptionId> matched;
  for (const AttributeDelta& delta : deltas) {
    // Resolve the after-route once per record: the join can visit many
    // subscriptions and the naive baseline visits all of them.
    const geo::Route* route_after = nullptr;
    if (delta.after != nullptr) {
      if (const auto route = network_->FindRoute(delta.after->route);
          route.ok()) {
        route_after = *route;
      }
    }
    if (options_.naive_rescan) {
      for (auto& [id, sub] : subs_) {
        EvaluateOne(id, sub, delta, route_after);
      }
      evals_ += subs_.size();
      if (evals_counter_ != nullptr) evals_counter_->Increment(subs_.size());
      continue;
    }

    // Spatial join: the record's o-plane dirty boxes (before and after
    // model) against the subscription tree. A subscription missed here has
    // relation Outside under both models — no transition to report.
    dirty.clear();
    if (delta.before != nullptr) {
      AppendDirtyBoxes(*delta.before, *network_, options_.matcher, &dirty);
    }
    if (delta.after != nullptr) {
      AppendDirtyBoxes(*delta.after, *network_, options_.matcher, &dirty);
    }
    matched.clear();
    for (const geo::Box3& box : dirty) {
      sub_index_.Search(box, [&](const geo::Box3&, index::RTree3::Value v) {
        matched.push_back(v);
      });
    }
    std::sort(matched.begin(), matched.end());
    matched.erase(std::unique(matched.begin(), matched.end()), matched.end());
    for (SubscriptionId id : matched) {
      EvaluateOne(id, subs_.find(id)->second, delta, route_after);
    }
    evals_ += matched.size();
    evals_saved_ += subs_.size() - matched.size();
    if (evals_counter_ != nullptr) evals_counter_->Increment(matched.size());
    if (evals_saved_counter_ != nullptr) {
      evals_saved_counter_->Increment(subs_.size() - matched.size());
    }
  }
}

void SubscriptionEngine::ResetTracking() {
  for (auto& [id, sub] : subs_) sub.state.clear();
}

void SubscriptionEngine::PrimeObject(core::ObjectId id,
                                     const core::PositionAttribute& attr) {
  if (subs_.empty()) return;
  const geo::Route* route = nullptr;
  if (const auto r = network_->FindRoute(attr.route); r.ok()) route = *r;
  if (route == nullptr) return;
  // Priming runs once per recovered object, off the hot path; the plain
  // scan keeps it trivially deterministic.
  for (auto& [sid, sub] : subs_) {
    const core::RegionRelation rel = EvaluatePair(sub, attr, *route);
    if (rel == core::RegionRelation::kOutside) {
      sub.state.erase(id);
    } else {
      sub.state[id] = rel;
    }
  }
}

std::vector<SubscriptionEvent> SubscriptionEngine::TakeEvents() {
  std::vector<SubscriptionEvent> out = std::move(events_);
  events_.clear();
  return out;
}

}  // namespace modb::db
