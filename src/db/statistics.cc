#include "db/statistics.h"

#include <algorithm>

#include "core/bounds.h"

namespace modb::db {

DatabaseStats ComputeStatistics(const ModDatabase& db, core::Time now) {
  DatabaseStats stats;
  stats.as_of = now;
  stats.num_objects = db.num_objects();
  stats.total_updates = db.log().total_updates();

  db.ForEachRecord([&stats, now](const MovingObjectRecord& record) {
    const core::PositionAttribute& attr = record.attr;
    const auto policy_index = static_cast<std::size_t>(attr.policy);
    if (policy_index < stats.objects_per_policy.size()) {
      ++stats.objects_per_policy[policy_index];
    }
    const core::Duration since = std::max(0.0, now - attr.start_time);
    stats.staleness.Add(since);
    stats.bound.Add(core::DeviationBound(attr, since));
    stats.declared_speed.Add(attr.speed);
    stats.updates_per_object.Add(static_cast<double>(record.update_count));
  });
  return stats;
}

util::Table StatisticsTable(const DatabaseStats& stats) {
  util::Table table({"metric", "value"});
  table.NewRow().Add(std::string("as of t")).Add(stats.as_of, 2);
  table.NewRow().Add(std::string("objects")).Add(stats.num_objects);
  table.NewRow()
      .Add(std::string("updates received"))
      .Add(static_cast<std::size_t>(stats.total_updates));
  for (std::size_t i = 0; i < stats.objects_per_policy.size(); ++i) {
    if (stats.objects_per_policy[i] == 0) continue;
    table.NewRow()
        .Add("objects using " +
             std::string(core::PolicyKindName(
                 static_cast<core::PolicyKind>(i))))
        .Add(stats.objects_per_policy[i]);
  }
  if (stats.num_objects > 0) {
    table.NewRow()
        .Add(std::string("bound mean / max"))
        .Add(std::to_string(stats.bound.mean()) + " / " +
             std::to_string(stats.bound.max()));
    table.NewRow()
        .Add(std::string("staleness mean / max"))
        .Add(std::to_string(stats.staleness.mean()) + " / " +
             std::to_string(stats.staleness.max()));
    table.NewRow()
        .Add(std::string("declared speed mean"))
        .Add(stats.declared_speed.mean(), 3);
    table.NewRow()
        .Add(std::string("updates/object mean / max"))
        .Add(std::to_string(stats.updates_per_object.mean()) + " / " +
             std::to_string(stats.updates_per_object.max()));
  }
  return table;
}

}  // namespace modb::db
