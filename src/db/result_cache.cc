#include "db/result_cache.h"

#include <algorithm>
#include <cstdio>

namespace modb::db {

namespace {

// Exact (bitwise) key of a range query: region vertices + time in
// hexfloat, so no two distinct queries collide.
std::string KeyOf(const geo::Polygon& region, core::Time t) {
  std::string key;
  key.reserve(region.size() * 48 + 24);
  char buf[64];
  for (const geo::Point2& v : region.vertices()) {
    std::snprintf(buf, sizeof(buf), "%a,%a;", v.x, v.y);
    key += buf;
  }
  std::snprintf(buf, sizeof(buf), "@%a", t);
  key += buf;
  return key;
}

}  // namespace

RangeQueryCache::RangeQueryCache(const geo::RouteNetwork* network,
                                 Options options)
    : network_(network), options_(options) {
  if (options_.capacity == 0) options_.capacity = 1;
}

void RangeQueryCache::SetMetrics(util::MetricsRegistry* registry,
                                 const std::string& prefix) {
  if (registry == nullptr) {
    hits_counter_ = nullptr;
    misses_counter_ = nullptr;
    invalidations_counter_ = nullptr;
    return;
  }
  hits_counter_ = registry->GetCounter(prefix + "hits");
  misses_counter_ = registry->GetCounter(prefix + "misses");
  invalidations_counter_ = registry->GetCounter(prefix + "invalidations");
}

RangeAnswer RangeQueryCache::GetOrCompute(
    const geo::Polygon& region, core::Time t,
    const std::function<RangeAnswer()>& compute) {
  const std::string key = KeyOf(region, t);
  {
    std::unique_lock lock(mu_);
    const auto it = by_key_.find(key);
    if (it != by_key_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      ++hits_;
      if (hits_counter_ != nullptr) hits_counter_->Increment();
      return it->second->answer;
    }
    ++misses_;
    if (misses_counter_ != nullptr) misses_counter_->Increment();
  }

  // Compute outside the cache mutex: the owning database's lock regime
  // guarantees no delta can commit while any reader is in flight (writers
  // need the exclusive lock), so the computed answer cannot go stale
  // between here and the insert below.
  RangeAnswer answer = compute();

  // Partial answers (quarantined shards excluded from the fan-out) are
  // never cached: a later hit would keep serving the degraded answer after
  // the shards were re-admitted — and invalidation cannot fix that, since
  // re-admission replays no deltas through the cache.
  if (!answer.completeness.complete) return answer;

  std::unique_lock lock(mu_);
  if (const auto it = by_key_.find(key); it != by_key_.end()) {
    // A concurrent reader of the same query beat us to the insert.
    lru_.splice(lru_.begin(), lru_, it->second);
    return answer;
  }
  Entry entry;
  entry.key = key;
  entry.box = geo::Box3(region.BoundingBox(), t, t);
  entry.answer = answer;
  lru_.push_front(std::move(entry));
  by_key_.emplace(lru_.front().key, lru_.begin());
  while (lru_.size() > options_.capacity) {
    by_key_.erase(lru_.back().key);
    lru_.pop_back();
  }
  return answer;
}

void RangeQueryCache::OnDeltaBatch(std::span<const AttributeDelta> deltas) {
  std::unique_lock lock(mu_);
  if (lru_.empty()) return;
  std::vector<geo::Box3> dirty;
  for (const AttributeDelta& delta : deltas) {
    if (delta.before != nullptr) {
      AppendDirtyBoxes(*delta.before, *network_, options_.matcher, &dirty);
    }
    if (delta.after != nullptr) {
      AppendDirtyBoxes(*delta.after, *network_, options_.matcher, &dirty);
    }
  }
  for (auto it = lru_.begin(); it != lru_.end();) {
    const bool stale = std::any_of(
        dirty.begin(), dirty.end(),
        [&](const geo::Box3& box) { return box.Intersects(it->box); });
    if (stale) {
      ++invalidations_;
      if (invalidations_counter_ != nullptr) {
        invalidations_counter_->Increment();
      }
      by_key_.erase(it->key);
      it = lru_.erase(it);
    } else {
      ++it;
    }
  }
}

void RangeQueryCache::Clear() {
  std::unique_lock lock(mu_);
  lru_.clear();
  by_key_.clear();
}

std::size_t RangeQueryCache::size() const {
  std::unique_lock lock(mu_);
  return lru_.size();
}

}  // namespace modb::db
