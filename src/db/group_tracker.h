#ifndef MODB_DB_GROUP_TRACKER_H_
#define MODB_DB_GROUP_TRACKER_H_

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/position_attribute.h"
#include "core/types.h"
#include "db/group_model.h"
#include "geo/box.h"
#include "geo/polygon.h"
#include "geo/route_network.h"
#include "index/object_index.h"
#include "index/oplane.h"
#include "util/metrics.h"
#include "util/status.h"

namespace modb::db {

/// Online convoy detector and group-state machine — the layer between
/// batch ingest and the indexes (MOIST's "school" trick over the paper's
/// motion models). Vehicles on the same route at similar declared speeds
/// carry near-identical position attributes; the tracker clusters them
/// behind one shared `GroupModel` so the index stores a single envelope
/// entry per convoy (under a synthetic id) plus box-less "hidden" member
/// rows, and the WAL logs compact member rows plus the membership
/// transitions.
///
/// Soundness invariant (what keeps MUST/MAY answers byte-identical):
/// a member m is only admitted / retained while, over its whole policy
/// horizon [m.start_time, m.start_time + H],
///     |m's database position - LineAt(t)| + DeviationBound(m, t) <= W,
/// i.e. member uncertainty = group line ⊕ W. The envelope entry covers the
/// line over the group window inflated by W plus a slab-discretisation
/// margin, so every member's o-plane boxes lie inside the envelope's —
/// an envelope candidate is produced whenever any member would have been.
/// Query refinement then expands an envelope candidate into exactly the
/// members whose own (hidden, still-maintained) index state would have
/// matched, via `ObjectIndex::WouldMatchWindow` — candidate sets, and
/// therefore answers, match the group-tracking-off configuration exactly.
///
/// Detection is a heuristic (a missed convoy costs performance, never
/// correctness): the cluster key is (route, direction, speed band), a
/// coarse cell map over ungrouped objects; a formation attempt anchors the
/// line at the updating object and admits up to `max_form_scan` cell peers
/// that fit the tube at the tighter `join_window`.
///
/// Thread-compatibility matches the database: mutating methods require
/// external exclusion (the sharded layer's exclusive shard lock); const
/// methods (`ExpandCandidates`, `ExportGroups`, accessors) are safe
/// concurrently with each other.
class GroupTracker {
 private:
  // State structs live up front so the Plan's undo journal can hold them
  // by value.
  struct ObjState {
    core::PositionAttribute attr;
    GroupId group = 0;  // 0 = ungrouped
  };
  struct GroupState {
    core::ObjectId leader = core::kInvalidObjectId;
    GroupModel model;
    std::vector<core::ObjectId> members;  // sorted ascending, incl. leader
  };

 public:
  /// One structural index row the write path must apply beyond the batch's
  /// own (rewritten) rows: passive-peer hidden installs at formation,
  /// member re-materialisations at dissolve, envelope upserts/removals.
  /// `attr`/`boxes` point into the owning `Plan`'s stable storage.
  struct IndexRow {
    core::ObjectId id = core::kInvalidObjectId;
    const core::PositionAttribute* attr = nullptr;  // null = remove
    const std::vector<geo::Box3>* boxes = nullptr;  // envelope override
    bool hidden = false;
  };

  /// Per-batch plan: the transitions to log, the structural index rows to
  /// apply, and the undo journal that makes the whole batch's group-state
  /// mutation revertible when a later write stage fails. One `Plan` spans
  /// one `ApplyUpdateBatch` (or one `Erase`).
  class Plan {
   public:
    std::vector<GroupTransition> transitions;
    std::vector<IndexRow> rows;
    /// Erase-driven membership changes (not logged: kErase replay
    /// reproduces them) — counted so metrics still see them.
    std::size_t unlogged_splits = 0;

    bool Empty() const { return transitions.empty() && rows.empty(); }

   private:
    friend class GroupTracker;
    // Stable storage the rows point into (deque: no reallocation moves).
    std::deque<core::PositionAttribute> attr_store_;
    std::deque<std::vector<geo::Box3>> box_store_;
    // First-touch undo journal.
    std::map<core::ObjectId, std::optional<ObjState>> saved_objects_;
    std::map<GroupId, std::optional<GroupState>> saved_groups_;
    std::map<std::uint64_t, std::optional<std::vector<core::ObjectId>>>
        saved_cells_;
    std::map<std::uint64_t, std::optional<std::vector<GroupId>>>
        saved_group_cells_;
    GroupId saved_next_group_id_ = 0;
    bool journaling_ = false;
  };

  /// `network` must outlive the tracker. `base_oplane` is the attached
  /// index's base o-plane parameterisation: its horizon H is the cohesion
  /// look-ahead, its slab width the widest time slab any attached index
  /// builds boxes with (the envelope's discretisation margin is sized for
  /// it), and its padding is inherited into the envelope's padding.
  GroupTracker(const geo::RouteNetwork* network, GroupTrackingOptions options,
               index::OPlaneOptions base_oplane);

  bool enabled() const { return options_.enabled; }
  const GroupTrackingOptions& options() const { return options_; }

  // -- Write path -----------------------------------------------------

  /// Folds one accepted update record (in input order) into the group
  /// state: cohesion re-check for members (split on violation), join /
  /// formation attempts for the ungrouped, window refreshes. Appends the
  /// resulting transitions and structural rows to `plan`. Call once per
  /// accepted record between the validate and WAL stages.
  void PlanUpdate(core::ObjectId id, const core::PositionAttribute& attr,
                  Plan* plan);

  /// Attribute-only fold for replay (`bulk` ingest): keeps the tracker's
  /// attribute mirror and detection cells in sync without planning — the
  /// logged transitions are applied verbatim instead.
  void ObserveAttrOnly(core::ObjectId id, const core::PositionAttribute& attr);

  /// Registers a newly inserted object as ungrouped (detection-cell entry).
  void ObserveInsert(core::ObjectId id, const core::PositionAttribute& attr);

  /// Removes an erased object. A member erase cascades deterministically
  /// (leader re-election: freshest start_time, ties to the lowest id;
  /// dissolve below `min_group_size`) so WAL `kErase` replay reproduces it
  /// without logging; the cascade's structural rows are appended to `plan`.
  void ObserveErase(core::ObjectId id, Plan* plan);

  /// Reverts every group-state mutation recorded in `plan`'s journal (WAL
  /// append or index stage failed mid-batch).
  void Rollback(Plan& plan);

  /// Finalises a successfully applied plan: bumps the transition counters
  /// and pushes the group gauges. (State was already mutated by planning.)
  void Commit(const Plan& plan);

  /// Counts batch rows rewritten to hidden member installs (metrics only).
  void NoteHiddenRows(std::size_t n);

  // -- Replay / persistence -------------------------------------------

  /// Applies logged transitions verbatim (recovery replay). No cohesion
  /// checks, no index rows — the caller is mid bulk-ingest and the index
  /// is rebuilt at `FinishBulkIngest`.
  void ApplyTransitions(const std::vector<GroupTransition>& transitions);

  /// Installs snapshot-persisted groups (members must already be observed
  /// via `ObserveInsert`; unknown members are dropped — the revalidation
  /// sweep would evict them anyway).
  void RestoreGroups(const std::vector<PersistedGroup>& groups,
                     GroupId next_group_id);

  /// Snapshot form of the current groups, id-ascending, members sorted.
  std::vector<PersistedGroup> ExportGroups() const;
  GroupId next_group_id() const { return next_group_id_; }

  /// Post-replay soundness sweep (`FinishBulkIngest`): re-checks every
  /// member against its group's persisted model and evicts violators with
  /// the deterministic cascade. A clean replay is a no-op; a torn-tail
  /// prefix (rows applied, transitions lost) is repaired here.
  void Revalidate();

  /// Appends the index rows that re-collapse the groups after a full
  /// per-object index rebuild: a hidden conversion per member plus each
  /// group's envelope row.
  void AppendCollapseRows(Plan* plan) const;

  // -- Query path ------------------------------------------------------

  bool has_groups() const { return !groups_.empty(); }

  /// Replaces envelope candidates in `ids` with the exact member
  /// candidacies (`index.WouldMatchWindow` per member); output sorted and
  /// deduplicated. No-op when `ids` carries no envelope ids.
  void ExpandCandidates(std::vector<core::ObjectId>* ids,
                        const geo::Polygon& region, core::Time t1,
                        core::Time t2, const index::ObjectIndex& index) const;

  // -- Introspection / metrics -----------------------------------------

  std::size_t num_groups() const { return groups_.size(); }
  std::size_t num_grouped_objects() const { return grouped_objects_; }
  /// Group currently holding `id`, or 0 when ungrouped/unknown.
  GroupId GroupOf(core::ObjectId id) const;
  bool IsGrouped(core::ObjectId id) const { return GroupOf(id) != 0; }

  /// Registers `<prefix>count` / `<prefix>size` (signed-delta gauges, so
  /// shards sharing a registry aggregate as sums) and the transition
  /// counters `<prefix>forms`, `<prefix>splits`, `<prefix>joins`,
  /// `<prefix>leader_upserts`, `<prefix>member_skips`.
  void SetMetrics(util::MetricsRegistry* registry, const std::string& prefix);

 private:
  // Detection-cell key (route, direction, coarse speed band) packed into
  // one integer so the journal can index cells cheaply.
  std::uint64_t CellKeyOf(const core::PositionAttribute& attr) const;
  std::uint64_t CellKeyOf(const GroupModel& model) const;

  void StartJournal(Plan* plan);
  void JournalObject(Plan* plan, core::ObjectId id);
  void JournalGroup(Plan* plan, GroupId group);
  void JournalCell(Plan* plan, std::uint64_t key);
  void JournalGroupCell(Plan* plan, std::uint64_t key);

  void CellInsert(Plan* plan, core::ObjectId id,
                  const core::PositionAttribute& attr);
  void CellRemove(Plan* plan, core::ObjectId id,
                  const core::PositionAttribute& attr);
  void GroupCellInsert(Plan* plan, GroupId group, const GroupModel& model);
  void GroupCellRemove(Plan* plan, GroupId group, const GroupModel& model);

  /// Peak of |member line - group line| + deviation bound over the
  /// member's horizon (endpoints + bound critical times — both pieces are
  /// monotone between them, so the sample set is exact for each piece and
  /// the sum of the two maxima is a sound bound on the sum's maximum).
  double CohesionPeak(const core::PositionAttribute& member,
                      const GroupModel& model) const;
  bool Cohesive(const core::PositionAttribute& member, const GroupModel& model,
                double width) const;
  bool WindowContains(const GroupModel& model,
                      const core::PositionAttribute& member) const;

  /// Recomputes the window from current member starts and emits kRefresh +
  /// an envelope re-upsert.
  void RefreshWindow(Plan* plan, GroupId group);
  /// Builds the envelope attribute + padded box cover for `group` into the
  /// plan's storage and appends the upsert row.
  void AppendEnvelopeRow(Plan* plan, GroupId group);
  void AppendEnvelopeRowTo(Plan* plan, const GroupState& g, GroupId id) const;

  void TryJoinOrForm(Plan* plan, core::ObjectId id,
                     const core::PositionAttribute& attr);
  /// Removes `id` from `group` with the full cascade (leader re-election:
  /// freshest start_time, ties to the lowest id; dissolve below min size).
  /// `log` controls whether the kLeave/kLeaderChange/kDissolve transitions
  /// are recorded in the plan (update-driven: yes; erase-driven and
  /// revalidation: no — replay reproduces them deterministically);
  /// structural rows are appended when `plan` is non-null. `erased`
  /// suppresses the leaver's re-insertion into the detection cells.
  void RemoveFromGroup(Plan* plan, GroupId group, core::ObjectId id, bool log,
                       bool erased);
  void DissolveGroup(Plan* plan, GroupId group, bool log);

  void SyncGauges();
  void DetachMetrics();

  const geo::RouteNetwork* network_;
  GroupTrackingOptions options_;
  index::OPlaneOptions base_oplane_;
  core::Duration horizon_;
  core::Duration slack_;

  std::unordered_map<core::ObjectId, ObjState> objects_;
  std::map<GroupId, GroupState> groups_;  // ordered: deterministic export
  std::unordered_map<std::uint64_t, std::vector<core::ObjectId>> cells_;
  std::unordered_map<std::uint64_t, std::vector<GroupId>> group_cells_;
  GroupId next_group_id_ = 1;
  std::size_t grouped_objects_ = 0;

  util::Counter* forms_counter_ = nullptr;           // non-owning
  util::Counter* splits_counter_ = nullptr;          // non-owning
  util::Counter* joins_counter_ = nullptr;           // non-owning
  util::Counter* leader_upserts_counter_ = nullptr;  // non-owning
  util::Counter* member_skips_counter_ = nullptr;    // non-owning
  util::Gauge* count_gauge_ = nullptr;               // non-owning
  util::Gauge* size_gauge_ = nullptr;                // non-owning
  std::int64_t pushed_count_ = 0;
  std::int64_t pushed_size_ = 0;
};

}  // namespace modb::db

#endif  // MODB_DB_GROUP_TRACKER_H_
