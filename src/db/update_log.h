#ifndef MODB_DB_UPDATE_LOG_H_
#define MODB_DB_UPDATE_LOG_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/update_policy.h"

namespace modb::db {

/// Append-only record of the position updates the database received.
///
/// The update traffic is the quantity the paper's policies minimise, so the
/// log doubles as the measurement instrument: totals, per-object counts and
/// the full history (optionally capped) for replay in tests.
class UpdateLog {
 public:
  /// `max_history` caps the retained messages (0 = keep everything);
  /// counters are exact regardless.
  explicit UpdateLog(std::size_t max_history = 0)
      : max_history_(max_history) {}

  /// Records one received update.
  void Append(const core::PositionUpdate& update);

  /// Total number of updates ever appended.
  std::uint64_t total_updates() const { return total_updates_; }

  /// Updates received from a particular object.
  std::uint64_t updates_for(core::ObjectId id) const;

  /// Retained history, oldest first (may be shorter than total_updates()).
  const std::vector<core::PositionUpdate>& history() const { return history_; }

  /// Updates evicted from `history()` by the `max_history` cap. Non-zero
  /// means replay-based consumers (tests, E-benchmarks) are looking at a
  /// truncated measurement — check this before trusting `history()`.
  std::uint64_t dropped_count() const { return dropped_; }

  void Clear();

 private:
  std::size_t max_history_;
  std::uint64_t total_updates_ = 0;
  std::uint64_t dropped_ = 0;
  std::unordered_map<core::ObjectId, std::uint64_t> per_object_;
  std::vector<core::PositionUpdate> history_;
};

}  // namespace modb::db

#endif  // MODB_DB_UPDATE_LOG_H_
