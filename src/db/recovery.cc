#include "db/recovery.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <system_error>
#include <utility>
#include <vector>

namespace modb::db {

namespace {

namespace fs = std::filesystem;

struct CheckpointInfo {
  std::uint64_t id = 0;
  std::string path;
};

/// All checkpoints in `dir`, sorted ascending by id.
std::vector<CheckpointInfo> ListCheckpoints(const std::string& dir) {
  std::vector<CheckpointInfo> checkpoints;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    CheckpointInfo info;
    char trailer = 0;
    if (std::sscanf(name.c_str(), "checkpoint-%" SCNu64 ".sna%c", &info.id,
                    &trailer) == 2 &&
        trailer == 'p') {
      info.path = entry.path().string();
      checkpoints.push_back(std::move(info));
    }
  }
  std::sort(checkpoints.begin(), checkpoints.end(),
            [](const CheckpointInfo& a, const CheckpointInfo& b) {
              return a.id < b.id;
            });
  return checkpoints;
}

/// fsync a file (or directory) by path; best effort on platforms where
/// directories cannot be opened.
void SyncPath(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return;
  (void)::fsync(fd);
  (void)::close(fd);
}

/// Largest epoch mentioned by any file in `dir` (checkpoint ids and WAL
/// epochs live in one sequence).
std::uint64_t MaxEpochOnDisk(const std::string& dir) {
  std::uint64_t max_epoch = 0;
  for (const CheckpointInfo& cp : ListCheckpoints(dir)) {
    max_epoch = std::max(max_epoch, cp.id);
  }
  for (const WalSegmentInfo& seg : ListWalSegments(dir)) {
    max_epoch = std::max(max_epoch, seg.epoch);
  }
  return max_epoch;
}

/// Applies one replayed WAL record to `db`.
util::Status ApplyWalRecord(ModDatabase* db, const WalRecord& record) {
  switch (record.type) {
    case WalRecordType::kInsert:
      return db->Insert(record.id, record.label, record.attr);
    case WalRecordType::kUpdate:
      return db->ApplyUpdate(record.update);
    case WalRecordType::kErase:
      return db->Erase(record.id);
    case WalRecordType::kUpdateBatch: {
      // An all-update batch replays through the same staged batch path the
      // live write took, so a recovered store rebuilds its index with the
      // identical grouped deltas. Mixed batches (BulkInsert logs nested
      // kInsert records) fall back to per-record dispatch; either way the
      // whole frame applies or replay reports the first failure.
      bool updates_only = true;
      for (const WalRecord& sub : record.batch) {
        if (sub.type != WalRecordType::kUpdate) {
          updates_only = false;
          break;
        }
      }
      if (updates_only) {
        std::vector<core::PositionUpdate> updates;
        updates.reserve(record.batch.size());
        for (const WalRecord& sub : record.batch) {
          updates.push_back(sub.update);
        }
        return db->ApplyUpdateBatch(updates).first_error();
      }
      util::Status first;
      for (const WalRecord& sub : record.batch) {
        if (util::Status s = ApplyWalRecord(db, sub); !s.ok() && first.ok()) {
          first = std::move(s);
        }
      }
      return first;
    }
    case WalRecordType::kGroupBatch: {
      // Rehydrate elided positions against the route geometry (they were
      // elided precisely because they bit-equalled it), replay the member
      // rows through the staged batch path, then apply the membership
      // transitions verbatim — groups evolve in lockstep with the updates.
      std::vector<core::PositionUpdate> updates;
      updates.reserve(record.group_rows.size());
      for (const GroupWalRow& row : record.group_rows) {
        core::PositionUpdate update = row.update;
        if (row.position_elided) {
          const auto route = db->network().FindRoute(update.route);
          if (route.ok()) {
            update.position = (*route)->PointAt(update.route_distance);
          }
        }
        updates.push_back(update);
      }
      util::Status first;
      if (!updates.empty()) {
        first = db->ApplyUpdateBatch(updates).first_error();
      }
      db->ApplyGroupTransitions(record.group_transitions);
      return first;
    }
  }
  return util::Status::Internal("unknown WAL record type");
}

void MergeReplayStats(const WalReplayStats& stats, RecoveryReport* report) {
  report->wal_records_replayed += stats.records;
  report->wal_records_skipped += stats.records_skipped;
  report->wal_bytes_truncated += stats.bytes_truncated;
  report->wal_corrupt_segments += stats.corrupt_segments;
  if (!stats.clean || stats.records_skipped > 0) {
    report->clean = false;
    if (report->detail.empty()) report->detail = stats.detail;
  }
}

/// Replays WAL epochs `first_epoch`, `first_epoch + 1`, … in order into
/// `db`. Checkpoint N+1 is by construction checkpoint N plus every record
/// of epoch N, so chaining epochs forward from an older checkpoint recovers
/// everything the newer (corrupt, skipped) checkpoints covered. The chain
/// stops at the first truncation — records beyond a hole cannot be trusted
/// to apply to a consistent base.
///
/// Invariant (enforced, not just documented): `db` must have no WAL
/// attached. Replaying into a logging database would append every replayed
/// record right back into the epoch being read — doubling the log on every
/// restart and, worse, interleaving re-logged records with live ones.
util::Status ReplayEpochChain(const std::string& dir,
                              std::uint64_t first_epoch, ModDatabase* db,
                              RecoveryReport* report,
                              const util::FileReader& reader) {
  if (db->wal() != nullptr) {
    return util::Status::FailedPrecondition(
        "WAL replay into a database that is itself logging (epoch " +
        std::to_string(first_epoch) + " of " + dir +
        "): detach the WAL before replaying");
  }
  std::vector<std::uint64_t> epochs;
  for (const WalSegmentInfo& seg : ListWalSegments(dir)) {
    if (seg.epoch >= first_epoch &&
        (epochs.empty() || epochs.back() != seg.epoch)) {
      epochs.push_back(seg.epoch);
    }
  }
  const auto apply = [db](const WalRecord& record) {
    return ApplyWalRecord(db, record);
  };
  std::uint64_t expected = first_epoch;
  for (std::uint64_t epoch : epochs) {
    if (epoch != expected++) break;  // epoch gap: same rule as a torn frame
    auto stats = ReplayWal(dir, epoch, apply, reader);
    if (!stats.ok()) {
      // A replay *setup* failure (unreadable segment) is not graceful
      // corruption: the epoch's records exist but could not be applied, so
      // recovery must fail — silently stopping here would present a
      // consistent-looking store missing a known-recoverable suffix. The
      // status already names the epoch + segment path (quarantine reason).
      report->clean = false;
      if (report->detail.empty()) report->detail = stats.status().message();
      return stats.status();
    }
    MergeReplayStats(*stats, report);
    if (!stats->clean) break;
  }
  return util::Status::Ok();
}

double ElapsedMs(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - since)
      .count();
}

/// Loads the newest checkpoint that parses, skipping corrupt ones.
util::Result<LoadedSnapshot> LoadNewestCheckpoint(const std::string& dir,
                                                  RecoveryReport* report) {
  const std::vector<CheckpointInfo> checkpoints = ListCheckpoints(dir);
  if (checkpoints.empty()) {
    return util::Status::NotFound("no checkpoint in " + dir);
  }
  for (auto it = checkpoints.rbegin(); it != checkpoints.rend(); ++it) {
    auto loaded = LoadSnapshot(it->path);
    if (loaded.ok()) {
      report->checkpoint_id = it->id;
      report->recovered = true;
      report->objects_restored = loaded->database->num_objects();
      return std::move(loaded).value();
    }
    ++report->checkpoints_skipped;
    report->clean = false;
    if (report->detail.empty()) {
      report->detail =
          "corrupt checkpoint " + it->path + ": " + loaded.status().message();
    }
  }
  return util::Status::InvalidArgument("every checkpoint in " + dir +
                                       " is corrupt");
}

}  // namespace

std::string CheckpointFileName(std::uint64_t id) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "checkpoint-%08" PRIu64 ".snap", id);
  return buf;
}

util::Result<std::unique_ptr<DurabilityManager>> DurabilityManager::Open(
    ModDatabase* db, const std::string& dir,
    const DurabilityOptions& options) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return util::Status::Internal("cannot create " + dir + ": " +
                                  ec.message());
  }
  std::unique_ptr<DurabilityManager> manager(
      new DurabilityManager(db, dir, options));

  const auto started = std::chrono::steady_clock::now();
  const std::vector<CheckpointInfo> checkpoints = ListCheckpoints(dir);
  if (!checkpoints.empty()) {
    if (db->num_objects() != 0) {
      return util::Status::FailedPrecondition(
          "recovering " + dir + " requires an empty database");
    }
    auto loaded = LoadNewestCheckpoint(dir, &manager->report_);
    if (!loaded.ok()) return loaded.status();

    // Stage checkpoint restore + replay at record-map speed; the index is
    // rebuilt once at the end with the bulk path (~10× faster than indexed
    // replay on recovery-sized streams, E14).
    if (util::Status s = db->BeginBulkIngest(); !s.ok()) return s;

    // Restore the checkpoint's objects into the caller's database; its
    // network must resolve every route the checkpoint references.
    util::Status restore_error;
    loaded->database->ForEachRecord([&](const MovingObjectRecord& record) {
      if (!restore_error.ok()) return;
      if (util::Status s = db->Insert(record.id, record.label, record.attr);
          !s.ok()) {
        restore_error = s;
        return;
      }
      if (!record.past.empty()) {
        if (util::Status s = db->RestoreTrajectory(record.id, record.past);
            !s.ok()) {
          restore_error = s;
        }
      }
    });
    if (restore_error.ok()) {
      // Transfer the checkpoint's group state before replay: the replayed
      // transitions mutate membership incrementally from this base.
      db->RestoreGroups(loaded->database->ExportGroups(),
                        loaded->database->group_next_id());
      restore_error =
          ReplayEpochChain(dir, manager->report_.checkpoint_id, db,
                           &manager->report_, options.wal_reader);
    }
    // Rebuild the index even on a failed restore: the caller gets back a
    // database whose index matches whatever records made it in.
    if (util::Status s = db->FinishBulkIngest();
        restore_error.ok() && !s.ok()) {
      restore_error = s;
    }
    if (!restore_error.ok()) return restore_error;
  }

  if (util::Status s = manager->StartFreshEpoch(MaxEpochOnDisk(dir) + 1);
      !s.ok()) {
    return s;
  }
  manager->report_.duration_ms = ElapsedMs(started);
  return manager;
}

DurabilityManager::~DurabilityManager() {
  if (db_ != nullptr) db_->AttachWal(nullptr);
  if (wal_ != nullptr) (void)wal_->Close();
}

util::Status DurabilityManager::StartFreshEpoch(std::uint64_t new_epoch) {
  // 0. Commit the index's page store (no-op for in-memory index storage)
  // so the page file on disk is consistent with the logical state the
  // snapshot below captures. Ordering: the page-store commit must land
  // before the checkpoint publishes — a checkpoint that points past
  // un-flushed index pages would recover a store whose index file trails
  // its records. The reverse (flush lands, checkpoint write then fails)
  // is harmless: the page file simply carries a newer commit than the
  // snapshot, and the next index open replays it independently.
  if (util::Status s = db_->FlushIndexStorage(); !s.ok()) {
    return util::Status(s.code(), "checkpoint epoch " +
                                      std::to_string(new_epoch) +
                                      " index page flush: " + s.message());
  }

  // 1. Write the checkpoint to a tmp file and make its bytes durable — but
  // do not publish it yet.
  const fs::path final_path = fs::path(dir_) / CheckpointFileName(new_epoch);
  const fs::path tmp_path = final_path.string() + ".tmp";
  if (util::Status s = SaveSnapshot(*db_, tmp_path.string()); !s.ok()) {
    return util::Status(s.code(), "checkpoint epoch " +
                                      std::to_string(new_epoch) + " write " +
                                      tmp_path.string() + ": " + s.message());
  }
  SyncPath(tmp_path.string());

  // 2. Open WAL epoch N+1 while checkpoint N is still the newest visible
  // one. Failing here is harmless: the tmp file is invisible to recovery
  // and the previous WAL (if any) stays attached and intact. The reverse
  // order — publish first, open second — is a real durability bug: a
  // visible checkpoint N+1 with the store still logging into epoch N sends
  // recovery to (empty) epoch N+1 and silently drops every record written
  // after the checkpoint.
  auto wal = WalWriter::Open(dir_, new_epoch, options_.wal);
  if (!wal.ok()) {
    std::error_code ec;
    fs::remove(tmp_path, ec);
    return wal.status();
  }

  // 3. Atomically publish checkpoint N+1. From this instant recovery
  // prefers it and replays epoch N+1 — which exists and is empty.
  std::error_code ec;
  fs::rename(tmp_path, final_path, ec);
  if (ec) {
    (void)(*wal)->Close();
    std::error_code ignored;
    fs::remove(fs::path(dir_) / WalSegmentFileName(new_epoch, 1), ignored);
    fs::remove(tmp_path, ignored);
    return util::Status::Internal("checkpoint epoch " +
                                  std::to_string(new_epoch) + " rename to " +
                                  final_path.string() + ": " + ec.message());
  }
  SyncPath(dir_);

  // 4. Swap the live writer and prune superseded files.
  if (wal_ != nullptr) (void)wal_->Close();
  wal_ = std::move(*wal);
  if (metrics_ != nullptr) wal_->SetMetrics(metrics_, wal_metrics_prefix_);
  db_->AttachWal(wal_.get());
  return Prune();
}

util::Status DurabilityManager::Prune() {
  std::error_code ec;
  std::vector<CheckpointInfo> checkpoints = ListCheckpoints(dir_);
  const std::size_t keep = std::max<std::size_t>(options_.checkpoints_to_keep,
                                                 1);
  while (checkpoints.size() > keep) {
    fs::remove(checkpoints.front().path, ec);
    checkpoints.erase(checkpoints.begin());
  }
  // Log truncation: segments below the oldest *retained* checkpoint can
  // never be replayed again. Epochs from that checkpoint on are kept so
  // recovery can fall back across a corrupt newer checkpoint and chain the
  // epochs forward without losing a record.
  const std::uint64_t oldest_needed =
      checkpoints.empty() ? 0 : checkpoints.front().id;
  for (const WalSegmentInfo& seg : ListWalSegments(dir_)) {
    if (seg.epoch < oldest_needed) fs::remove(seg.path, ec);
  }
  return util::Status::Ok();
}

util::Status DurabilityManager::Checkpoint() {
  return StartFreshEpoch(wal_->epoch() + 1);
}

util::Status DurabilityManager::TryReopenWal() {
  if (wal_ == nullptr) {
    return util::Status::FailedPrecondition("no WAL attached to " + dir_);
  }
  if (!wal_->poison().ok()) {
    if (util::Status s = wal_->TryReopen(); !s.ok()) return s;
  }
  // The fresh epoch's checkpoint covers the whole in-memory state, so
  // nothing depends on the abandoned segment's unsynced tail anymore.
  return Checkpoint();
}

void DurabilityManager::ExportMetrics(util::MetricsRegistry* registry,
                                      const std::string& recovery_prefix,
                                      const std::string& wal_prefix) {
  metrics_ = registry;
  wal_metrics_prefix_ = wal_prefix;
  if (registry == nullptr) {
    if (wal_ != nullptr) wal_->SetMetrics(nullptr);
    return;
  }
  registry->GetCounter(recovery_prefix + "records_replayed")
      ->Increment(report_.wal_records_replayed);
  registry->GetCounter(recovery_prefix + "records_skipped")
      ->Increment(report_.wal_records_skipped);
  registry->GetCounter(recovery_prefix + "bytes_truncated")
      ->Increment(report_.wal_bytes_truncated);
  registry->GetCounter(recovery_prefix + "corrupt_segments")
      ->Increment(report_.wal_corrupt_segments);
  registry->GetCounter(recovery_prefix + "checkpoints_skipped")
      ->Increment(report_.checkpoints_skipped);
  registry->GetCounter(recovery_prefix + "duration_ms")
      ->Increment(static_cast<std::uint64_t>(
          std::llround(std::max(0.0, report_.duration_ms))));
  if (wal_ != nullptr) wal_->SetMetrics(registry, wal_prefix);
}

util::Result<RecoveredDatabase> Recover(const std::string& dir,
                                        const DurabilityOptions& options) {
  std::error_code ec;
  if (!fs::is_directory(dir, ec) || ec) {
    return util::Status::NotFound("no durable directory at " + dir);
  }

  const auto started = std::chrono::steady_clock::now();
  RecoveredDatabase result;
  auto loaded = LoadNewestCheckpoint(dir, &result.report);
  if (!loaded.ok()) return loaded.status();
  result.network = std::move(loaded->network);
  result.database = std::move(loaded->database);

  ModDatabase* db = result.database.get();
  if (util::Status s = db->BeginBulkIngest(); !s.ok()) return s;
  const util::Status replayed =
      ReplayEpochChain(dir, result.report.checkpoint_id, db, &result.report,
                       options.wal_reader);
  if (util::Status s = db->FinishBulkIngest(); !s.ok()) return s;
  if (!replayed.ok()) return replayed;

  std::unique_ptr<DurabilityManager> manager(
      new DurabilityManager(db, dir, options));
  manager->report_ = result.report;
  if (util::Status s = manager->StartFreshEpoch(MaxEpochOnDisk(dir) + 1);
      !s.ok()) {
    return s;
  }
  manager->report_.duration_ms = ElapsedMs(started);
  result.report.duration_ms = manager->report_.duration_ms;
  result.durability = std::move(manager);
  return result;
}

}  // namespace modb::db
