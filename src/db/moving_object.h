#ifndef MODB_DB_MOVING_OBJECT_H_
#define MODB_DB_MOVING_OBJECT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/position_attribute.h"
#include "core/types.h"

namespace modb::db {

/// One row of the moving-object class: the identity of the object plus its
/// position attribute (the motion model of paper §2) and bookkeeping.
struct MovingObjectRecord {
  core::ObjectId id = core::kInvalidObjectId;
  std::string label;
  core::PositionAttribute attr;
  /// Time the object was inserted (trip start).
  core::Time insert_time = 0.0;
  /// Number of position updates applied since insertion.
  std::uint64_t update_count = 0;
  /// Superseded attribute versions, oldest first (kept when the database's
  /// `keep_trajectory` option is on). Version k was valid from its own
  /// start_time until version k+1's; `attr` is the open current version.
  /// The paper equates valid- and transaction-time (§2), so this history
  /// is exactly the object's piecewise motion trajectory.
  std::vector<core::PositionAttribute> past;
};

}  // namespace modb::db

#endif  // MODB_DB_MOVING_OBJECT_H_
