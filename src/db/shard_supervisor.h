#ifndef MODB_DB_SHARD_SUPERVISOR_H_
#define MODB_DB_SHARD_SUPERVISOR_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string_view>
#include <thread>
#include <vector>

#include "util/metrics.h"
#include "util/retry.h"
#include "util/status.h"

namespace modb::db {

/// Health of one failure domain (= one shard of `ShardedModDatabase`).
///
///   healthy ──fault──▶ quarantined ──attempt──▶ recovering ──ok──▶ healthy
///      │                    ▲                        │
///      ▼                    └────────── fail ────────┘
///   degraded ──fault──▶ (quarantined)
///
/// `degraded` is the soft tier: the shard still serves reads and writes but
/// lost something an operator should know about (durability bootstrap
/// failed, a checkpoint failed, recovery was unclean). `quarantined` is the
/// hard tier: writes are rejected with `Unavailable`, reads exclude the
/// shard (answers turn partial), and the remediation loop owns it until a
/// re-recovery succeeds.
enum class ShardHealth : int {
  kHealthy = 0,
  kDegraded = 1,
  kQuarantined = 2,
  kRecovering = 3,
};

/// Canonical lowercase name ("healthy", "degraded", ...).
std::string_view ShardHealthName(ShardHealth health);

/// Knobs of the shard supervisor.
struct ShardSupervisorOptions {
  /// Master switch; off restores the pre-supervisor behaviour (no health
  /// tracking, no write rejection, answers always complete).
  bool enabled = true;
  /// Run the background remediation loop. Off = quarantined shards stay
  /// down until `TryRecoverShard` is called explicitly (tests do this to
  /// step the state machine deterministically).
  bool auto_remediate = true;
  /// Backoff between re-recovery attempts of one shard. Each shard gets
  /// its own policy instance seeded with `retry.seed + shard`, so a fleet
  /// of quarantined shards spreads its attempts (jitter) yet every run
  /// with the same seed retries at identical offsets.
  util::RetryPolicy::Options retry;
  /// Idle heartbeat of the remediation loop when nothing is due.
  std::uint64_t poll_interval_ms = 50;
};

/// Per-shard health state machine + background re-recovery driver.
///
/// The supervisor owns *when* a shard is retried; *how* a shard recovers is
/// the owner's business, injected as the `RemediateFn` callback (for
/// `ShardedModDatabase`: reopen the poisoned WAL or replay the epoch chain
/// into a fresh store, under the shard's exclusive lock). The callback runs
/// on the supervisor thread with no supervisor lock held, so it may block
/// on shard locks freely.
///
/// Health reads are lock-free (one relaxed atomic per shard) — they sit on
/// every query/write path. Transitions take the supervisor mutex.
///
/// Observability: per-shard `sharded.shard<k>.state` gauges (numeric
/// `ShardHealth`), `shard.quarantine_total` / `shard.recoveries` /
/// `shard.recovery_failures` counters, and `shard.quarantine_duration` /
/// `shard.recovery_duration` histograms (µs; quarantine duration is
/// fault-to-readmission wall time).
class ShardSupervisor {
 public:
  /// One re-recovery attempt for `shard`; OK re-admits the shard.
  using RemediateFn = std::function<util::Status(std::size_t shard)>;

  ShardSupervisor(std::size_t num_shards, ShardSupervisorOptions options,
                  util::MetricsRegistry* metrics);
  ~ShardSupervisor();
  ShardSupervisor(const ShardSupervisor&) = delete;
  ShardSupervisor& operator=(const ShardSupervisor&) = delete;

  /// Installs the remediation callback and, when `auto_remediate` is on,
  /// starts the background loop. Call once, after the owner is ready to
  /// take callbacks.
  void Start(RemediateFn remediate);

  /// Stops the background loop (idempotent; the destructor calls it). Any
  /// in-flight remediation attempt finishes first.
  void Stop();

  std::size_t num_shards() const { return states_.size(); }

  ShardHealth health(std::size_t shard) const {
    return static_cast<ShardHealth>(
        states_[shard]->health.load(std::memory_order_relaxed));
  }
  /// Quarantined and recovering shards reject writes...
  bool writable(std::size_t shard) const {
    const ShardHealth h = health(shard);
    return h == ShardHealth::kHealthy || h == ShardHealth::kDegraded;
  }
  /// ...and are excluded from read fan-outs (their store may be mid-swap;
  /// excluding them is what makes the partial answers honest).
  bool readable(std::size_t shard) const { return writable(shard); }

  /// Hard fault: healthy/degraded → quarantined (recorded reason, backoff
  /// armed, loop woken). Already-down shards keep their first reason.
  void ReportFault(std::size_t shard, const util::Status& reason);

  /// Soft fault: healthy → degraded. No-op on any other state.
  void ReportDegraded(std::size_t shard, const util::Status& reason);

  /// Degraded → healthy (e.g. the next checkpoint succeeded). No-op on
  /// any other state.
  void ClearDegraded(std::size_t shard);

  /// The typed rejection a caller writing to a quarantined shard gets:
  /// `kUnavailable`, naming the shard, the quarantine reason, and a
  /// `retry_after_ms=<n>` hint (time until the supervisor's own next
  /// attempt — retrying sooner cannot succeed).
  util::Status UnavailableStatus(std::size_t shard) const;

  /// First fault that took the shard down (OK when healthy/degraded-only).
  util::Status reason(std::size_t shard) const;

  /// One remediation attempt, now, on the caller's thread. OK re-admits
  /// the shard; a failure re-arms the backoff. FailedPrecondition when the
  /// shard is not quarantined (healthy shards have nothing to recover;
  /// a concurrent attempt is already running when recovering).
  util::Status TryRecoverShard(std::size_t shard);

  /// Quarantined + recovering shards, ascending — the excluded-shard set
  /// a partial answer reports.
  std::vector<std::size_t> UnavailableShards() const;
  std::size_t num_unavailable() const;

  /// Blocks until no shard is quarantined/recovering, or `timeout` runs
  /// out. True on all-healthy. (Tests and the E18 driver poll with this.)
  bool AwaitAllAvailable(std::chrono::milliseconds timeout);

  const ShardSupervisorOptions& options() const { return options_; }

 private:
  struct State {
    std::atomic<int> health{static_cast<int>(ShardHealth::kHealthy)};
    util::Status reason;  // first fault; OK while up
    util::RetryPolicy retry;
    std::chrono::steady_clock::time_point next_attempt{};
    std::chrono::steady_clock::time_point quarantined_at{};
    util::Gauge* state_gauge = nullptr;

    explicit State(util::RetryPolicy::Options retry_options)
        : retry(retry_options) {}
  };

  void SetHealth(State& state, ShardHealth health);
  void Loop();
  /// The locked core of `TryRecoverShard`; `lock` is held on entry/exit
  /// but released around the remediation callback.
  util::Status RecoverLocked(std::size_t shard,
                             std::unique_lock<std::mutex>& lock);

  ShardSupervisorOptions options_;
  std::vector<std::unique_ptr<State>> states_;
  RemediateFn remediate_;

  mutable std::mutex mu_;
  std::condition_variable wake_;      // remediation loop
  std::condition_variable all_up_;    // AwaitAllAvailable waiters
  bool stop_ = false;
  bool started_ = false;
  std::thread loop_;

  // Shared instruments (may all be null when no registry was given).
  util::Counter* quarantine_total_ = nullptr;
  util::Counter* recoveries_ = nullptr;
  util::Counter* recovery_failures_ = nullptr;
  util::Gauge* quarantined_now_ = nullptr;
  util::LatencyHistogram* quarantine_duration_ = nullptr;
  util::LatencyHistogram* recovery_duration_ = nullptr;
};

}  // namespace modb::db

#endif  // MODB_DB_SHARD_SUPERVISOR_H_
