#ifndef MODB_DB_RECOVERY_H_
#define MODB_DB_RECOVERY_H_

#include <cstdint>
#include <memory>
#include <string>

#include "db/mod_database.h"
#include "db/snapshot.h"
#include "db/wal.h"
#include "util/metrics.h"
#include "util/status.h"

namespace modb::db {

/// Checkpoint + WAL knobs of a durable MOD store directory.
struct DurabilityOptions {
  WalWriterOptions wal;
  /// Checkpoints retained after a successful new checkpoint (>= 1). Keeping
  /// more than one lets recovery fall back when the newest checkpoint file
  /// itself is corrupt.
  std::size_t checkpoints_to_keep = 2;
  /// Read backend for WAL replay; null uses real reads. Chaos schedules
  /// inject read failures here (a failed segment read fails recovery with
  /// a status naming the epoch + path — the quarantine reason).
  util::FileReader wal_reader;
};

/// What recovery found and did. Returned instead of failing: corruption
/// degrades gracefully to the last consistent prefix of the log.
struct RecoveryReport {
  /// True when state was restored from disk (false = fresh bootstrap).
  bool recovered = false;
  /// Id of the checkpoint loaded (0 when bootstrapping a fresh directory).
  std::uint64_t checkpoint_id = 0;
  /// Newer checkpoints skipped because they were unreadable/corrupt.
  std::size_t checkpoints_skipped = 0;
  /// Objects restored from the checkpoint.
  std::uint64_t objects_restored = 0;
  /// WAL records replayed on top of the checkpoint.
  std::uint64_t wal_records_replayed = 0;
  /// WAL records whose replay was rejected by the database (counted and
  /// skipped; a symptom of a log/checkpoint mismatch).
  std::uint64_t wal_records_skipped = 0;
  /// Bytes dropped at and after the first torn/corrupt WAL frame.
  std::uint64_t wal_bytes_truncated = 0;
  std::size_t wal_corrupt_segments = 0;
  /// Wall-clock time of the whole recovery (checkpoint load + replay +
  /// fresh-epoch checkpoint). For the sharded store this is the elapsed
  /// time of the parallel fan-out, not the per-shard sum.
  double duration_ms = 0.0;
  /// False when anything was skipped or truncated; `detail` says what.
  bool clean = true;
  std::string detail;
};

/// Owns the durable home of one `ModDatabase`: the directory layout
/// (`checkpoint-<id>.snap` + `wal-<epoch>-<seq>.log`), the live WAL writer
/// (attached to the database for write-ahead logging), and the checkpoint
/// protocol. The manager must outlive no database it is attached to — it
/// detaches on destruction.
///
/// Invariant: checkpoint id N covers every mutation up to the moment it was
/// written; WAL epoch N holds exactly the mutations after checkpoint N (so
/// checkpoint N+1 ≡ checkpoint N + epoch N). A new checkpoint starts a new
/// epoch and truncates the log: segments of epochs older than the oldest
/// *retained* checkpoint are deleted. Recovery exploits the equivalence —
/// if the newest checkpoint is corrupt it falls back to an older one and
/// chains the surviving epochs forward, losing nothing.
class DurabilityManager {
 public:
  /// Opens `dir` as the durable home of `*db`:
  ///  - missing/empty dir: bootstrap — checkpoints the database's current
  ///    state and starts a fresh WAL epoch;
  ///  - existing durable dir: requires `*db` empty; restores the newest
  ///    readable checkpoint into it (objects must resolve against the
  ///    database's own route network), replays the matching WAL epoch up to
  ///    the first torn/corrupt record, then checkpoints the recovered state
  ///    and starts a fresh epoch (recovery never appends to old segments).
  /// On success the WAL is attached to `*db`. `*db` must outlive the
  /// manager.
  static util::Result<std::unique_ptr<DurabilityManager>> Open(
      ModDatabase* db, const std::string& dir,
      const DurabilityOptions& options = {});

  ~DurabilityManager();
  DurabilityManager(const DurabilityManager&) = delete;
  DurabilityManager& operator=(const DurabilityManager&) = delete;

  /// Checkpoint protocol: write `checkpoint-<epoch+1>.snap` (tmp file +
  /// fsync + atomic rename), switch the database to a fresh WAL epoch, then
  /// delete the superseded segments and stale checkpoints. On failure the
  /// old WAL stays attached and the store keeps running.
  util::Status Checkpoint();

  /// Remediation for a poisoned WAL writer whose in-memory store is intact
  /// (the poison aborted its mutation before the memory commit, so memory
  /// is the source of truth): rotates the writer to a fresh segment via
  /// `WalWriter::TryReopen`, then checkpoints — the fresh epoch covers the
  /// whole in-memory state, restoring the full durability guarantee that
  /// the abandoned segment's unsynced tail weakened. No-op (just the
  /// checkpoint) on a healthy writer.
  util::Status TryReopenWal();

  const RecoveryReport& recovery_report() const { return report_; }
  const WalWriter* wal() const { return wal_.get(); }
  const std::string& dir() const { return dir_; }

  /// Adds this manager's recovery outcome to `<prefix>records_replayed`,
  /// `<prefix>records_skipped`, `<prefix>bytes_truncated`,
  /// `<prefix>corrupt_segments`, `<prefix>checkpoints_skipped` and
  /// `<prefix>duration_ms` (rounded to whole ms) counters,
  /// and wires the live WAL's counters into the same registry. The wiring
  /// survives `Checkpoint()` (each fresh-epoch writer is re-attached).
  void ExportMetrics(util::MetricsRegistry* registry,
                     const std::string& recovery_prefix = "recovery.",
                     const std::string& wal_prefix = "wal.");

 private:
  DurabilityManager(ModDatabase* db, std::string dir,
                    DurabilityOptions options)
      : db_(db), dir_(std::move(dir)), options_(std::move(options)) {}

  /// Shared tail of bootstrap/recovery: checkpoint the current state at
  /// `new_epoch`, open + attach the fresh WAL, prune stale files.
  util::Status StartFreshEpoch(std::uint64_t new_epoch);
  util::Status Prune();

  friend util::Result<struct RecoveredDatabase> Recover(
      const std::string& dir, const DurabilityOptions& options);

  ModDatabase* db_;
  std::string dir_;
  DurabilityOptions options_;
  std::unique_ptr<WalWriter> wal_;
  RecoveryReport report_;
  util::MetricsRegistry* metrics_ = nullptr;  // see ExportMetrics
  std::string wal_metrics_prefix_;
};

/// A database recovered from a durable directory, bundled with the network
/// the checkpoint carried and a live durability manager (fresh WAL epoch,
/// already attached). Destruction order — members in reverse — detaches the
/// WAL before the database and network die.
struct RecoveredDatabase {
  std::unique_ptr<geo::RouteNetwork> network;
  std::unique_ptr<ModDatabase> database;
  std::unique_ptr<DurabilityManager> durability;
  RecoveryReport report;
};

/// Standalone crash recovery: loads the newest readable checkpoint in `dir`
/// (falling back across corrupt ones), replays the WAL suffix up to the
/// first torn/corrupt record, and returns the result with a fresh epoch
/// started. Corruption never fails recovery — it bounds it; the report says
/// exactly what was lost. Fails only when no checkpoint is readable at all.
util::Result<RecoveredDatabase> Recover(const std::string& dir,
                                        const DurabilityOptions& options = {});

/// File name of checkpoint `id` ("checkpoint-<id>.snap", zero-padded).
std::string CheckpointFileName(std::uint64_t id);

}  // namespace modb::db

#endif  // MODB_DB_RECOVERY_H_
