#include "db/snapshot.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <iomanip>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <vector>

#include "index/velocity_partitioned_index.h"

namespace modb::db {

namespace {

// v5 appended the group-tracking configuration to the options line and a
// `groups` section (convoy membership + shared motion models — persisted
// so a restored store re-collapses its convoys instead of re-detecting
// them from scratch); older versions default tracking off and no groups.
// v4 appended the velocity-partitioned index configuration (band count and
// the band speed bounds — persisted so a restored store bands its fleet
// identically to the live one) and allows index_kind 2. v3 appended
// `max_trajectory_versions`; v2 snapshots (which lacked the field,
// silently dropping the cap on restore) are still readable and default it
// to 0 (unlimited). v2/v3 default the velocity fields.
constexpr int kSnapshotVersion = 5;
constexpr int kMinReadableSnapshotVersion = 2;

void WriteAttribute(std::ostream& out, const core::PositionAttribute& a) {
  out << a.start_time << ' ' << a.route << ' ' << a.start_route_distance
      << ' ' << a.start_position.x << ' ' << a.start_position.y << ' '
      << static_cast<int>(a.direction) << ' ' << a.speed << ' '
      << static_cast<int>(a.policy) << ' ' << a.update_cost << ' '
      << a.max_speed << ' ' << a.fixed_threshold << ' ' << a.period << ' '
      << a.step_threshold;
}

bool ReadAttribute(std::istream& in, core::PositionAttribute* a) {
  int direction = 0;
  int policy = 0;
  if (!(in >> a->start_time >> a->route >> a->start_route_distance >>
        a->start_position.x >> a->start_position.y >> direction >> a->speed >>
        policy >> a->update_cost >> a->max_speed >> a->fixed_threshold >>
        a->period >> a->step_threshold)) {
    return false;
  }
  // A corrupted file must not smuggle out-of-range values into the enums.
  if (direction != +1 && direction != -1) return false;
  if (policy < 0 ||
      policy > static_cast<int>(core::PolicyKind::kStepThreshold)) {
    return false;
  }
  a->direction = static_cast<core::TravelDirection>(direction);
  a->policy = static_cast<core::PolicyKind>(policy);
  return true;
}

// Length-prefixed string: "<len> <raw bytes>".
void WriteString(std::ostream& out, const std::string& s) {
  out << s.size() << ' ' << s;
}

// Strings in a snapshot are object labels — human-scale. A length prefix
// past this cap is a corrupted (or hostile) file, and `resize(len)` would
// commit the whole claimed allocation before a single payload byte is
// checked, so the cap must be enforced *before* resizing.
constexpr std::size_t kMaxSnapshotStringLen = std::size_t{1} << 20;  // 1 MiB

bool ReadString(std::istream& in, std::string* s) {
  std::size_t len = 0;
  if (!(in >> len)) return false;
  if (in.get() != ' ') return false;
  if (len > kMaxSnapshotStringLen) return false;
  // Seekable streams also know how many bytes remain: a length past the
  // end of the file is corruption rejectable without allocating anything.
  if (const auto pos = in.tellg(); pos != std::istream::pos_type(-1)) {
    in.seekg(0, std::ios::end);
    const auto end = in.tellg();
    in.seekg(pos);
    if (end != std::istream::pos_type(-1) && end >= pos &&
        static_cast<std::size_t>(end - pos) < len) {
      return false;
    }
  }
  s->resize(len);
  in.read(s->data(), static_cast<std::streamsize>(len));
  return static_cast<bool>(in);
}

bool ExpectToken(std::istream& in, const char* token) {
  std::string word;
  return (in >> word) && word == token;
}

}  // namespace

util::Status WriteSnapshot(const ModDatabase& db, std::ostream& out) {
  out << std::setprecision(std::numeric_limits<double>::max_digits10);
  out << "modb-snapshot " << kSnapshotVersion << '\n';

  const ModDatabaseOptions& options = db.options();
  // Persist the *live* band bounds when the velocity-partitioned index has
  // derived them from fleet quantiles, so the restored store reproduces
  // the exact same banding instead of re-deriving from whatever the fleet
  // looks like then.
  std::vector<double> band_bounds = options.velocity_band_bounds;
  if (options.index_kind == IndexKind::kVelocityPartitioned) {
    if (const auto* vp = dynamic_cast<const index::VelocityPartitionedIndex*>(
            &db.object_index());
        vp != nullptr && !vp->band_bounds().empty()) {
      band_bounds = vp->band_bounds();
    }
  }
  out << "options " << static_cast<int>(options.index_kind) << ' '
      << options.oplane_horizon << ' ' << options.oplane_slab_width << ' '
      << options.max_log_history << ' '
      << (options.keep_trajectory ? 1 : 0) << ' '
      << options.max_trajectory_versions << ' '
      << options.velocity_bands << ' ' << band_bounds.size();
  for (double bound : band_bounds) out << ' ' << bound;
  const GroupTrackingOptions& group = options.group_tracking;
  out << ' ' << (group.enabled ? 1 : 0) << ' ' << group.cohesion_window << ' '
      << group.join_window << ' ' << group.min_group_size << ' '
      << group.speed_band_width << ' ' << group.window_slack << ' '
      << group.max_form_scan;
  out << '\n';

  const geo::RouteNetwork& network = db.network();
  out << "routes " << network.size() << '\n';
  for (const geo::Route& route : network.routes()) {
    out << "route " << route.id() << ' ' << route.shape().points().size();
    for (const geo::Point2& p : route.shape().points()) {
      out << ' ' << p.x << ' ' << p.y;
    }
    out << ' ';
    WriteString(out, route.name());
    out << '\n';
  }

  // Deterministic object order for stable snapshots.
  std::vector<const MovingObjectRecord*> records;
  records.reserve(db.num_objects());
  db.ForEachRecord(
      [&records](const MovingObjectRecord& r) { records.push_back(&r); });
  std::sort(records.begin(), records.end(),
            [](const MovingObjectRecord* a, const MovingObjectRecord* b) {
              return a->id < b->id;
            });

  out << "objects " << records.size() << '\n';
  for (const MovingObjectRecord* r : records) {
    out << "object " << r->id << ' ';
    WriteString(out, r->label);
    out << ' ';
    WriteAttribute(out, r->attr);
    out << ' ' << r->insert_time << ' ' << r->update_count << ' '
        << r->past.size();
    for (const core::PositionAttribute& version : r->past) {
      out << ' ';
      WriteAttribute(out, version);
    }
    out << '\n';
  }

  // Convoy membership + shared motion models (ExportGroups is id-ordered,
  // members sorted — deterministic like the object section).
  const std::vector<PersistedGroup> groups = db.ExportGroups();
  out << "groups " << groups.size() << ' ' << db.group_next_id() << '\n';
  for (const PersistedGroup& g : groups) {
    out << "group " << g.id << ' ' << g.leader << ' ' << g.model.route << ' '
        << static_cast<int>(g.model.direction) << ' ' << g.model.speed << ' '
        << g.model.anchor_time << ' ' << g.model.anchor_distance << ' '
        << g.model.window_lo << ' ' << g.model.window_hi << ' '
        << g.model.vmax << ' ' << g.model.width << ' ' << g.members.size();
    for (core::ObjectId m : g.members) out << ' ' << m;
    out << '\n';
  }
  if (!out) return util::Status::Internal("snapshot write failed");
  return util::Status::Ok();
}

util::Status SaveSnapshot(const ModDatabase& db, const std::string& path) {
  std::ofstream file(path);
  if (!file) return util::Status::NotFound("cannot open " + path);
  return WriteSnapshot(db, file);
}

util::Result<LoadedSnapshot> ReadSnapshot(std::istream& in) {
  const auto malformed = [](const std::string& what) {
    return util::Status::InvalidArgument("malformed snapshot: " + what);
  };

  if (!ExpectToken(in, "modb-snapshot")) return malformed("magic");
  int version = 0;
  if (!(in >> version) || version < kMinReadableSnapshotVersion ||
      version > kSnapshotVersion) {
    return malformed("unsupported version");
  }

  if (!ExpectToken(in, "options")) return malformed("options");
  int index_kind = 0;
  int keep_trajectory = 0;
  ModDatabaseOptions options;
  if (!(in >> index_kind >> options.oplane_horizon >>
        options.oplane_slab_width >> options.max_log_history >>
        keep_trajectory)) {
    return malformed("options fields");
  }
  if (version >= 3 && !(in >> options.max_trajectory_versions)) {
    return malformed("options fields");
  }
  if (version >= 4) {
    std::size_t num_bounds = 0;
    if (!(in >> options.velocity_bands >> num_bounds)) {
      return malformed("options fields");
    }
    if (num_bounds > 1024) return malformed("band bound count");
    options.velocity_band_bounds.resize(num_bounds);
    double prev = -std::numeric_limits<double>::infinity();
    for (double& bound : options.velocity_band_bounds) {
      if (!(in >> bound) || !std::isfinite(bound) || bound < prev) {
        return malformed("band bounds");
      }
      prev = bound;
    }
  }
  if (version >= 5) {
    int group_enabled = 0;
    GroupTrackingOptions& group = options.group_tracking;
    if (!(in >> group_enabled >> group.cohesion_window >> group.join_window >>
          group.min_group_size >> group.speed_band_width >>
          group.window_slack >> group.max_form_scan)) {
      return malformed("options fields");
    }
    group.enabled = group_enabled != 0;
  }
  // An out-of-range kind would leave the database without an index (the
  // factory switch has no such case) — reject it here instead. Pre-v4
  // snapshots can only name the two original kinds.
  const int max_kind = version >= 4
                           ? static_cast<int>(IndexKind::kVelocityPartitioned)
                           : static_cast<int>(IndexKind::kLinearScan);
  if (index_kind < 0 || index_kind > max_kind) {
    return malformed("index kind");
  }
  options.index_kind = static_cast<IndexKind>(index_kind);
  options.keep_trajectory = keep_trajectory != 0;

  LoadedSnapshot snapshot;
  snapshot.network = std::make_unique<geo::RouteNetwork>();

  if (!ExpectToken(in, "routes")) return malformed("routes");
  std::size_t num_routes = 0;
  if (!(in >> num_routes)) return malformed("route count");
  for (std::size_t i = 0; i < num_routes; ++i) {
    if (!ExpectToken(in, "route")) return malformed("route record");
    geo::RouteId id = 0;
    std::size_t num_points = 0;
    if (!(in >> id >> num_points)) return malformed("route header");
    std::vector<geo::Point2> points(num_points);
    for (geo::Point2& p : points) {
      if (!(in >> p.x >> p.y)) return malformed("route point");
    }
    std::string name;
    if (!ReadString(in, &name)) return malformed("route name");
    const geo::RouteId assigned =
        snapshot.network->AddRoute(geo::Polyline(std::move(points)), name);
    if (assigned != id) return malformed("non-sequential route ids");
  }

  snapshot.database =
      std::make_unique<ModDatabase>(snapshot.network.get(), options);

  if (!ExpectToken(in, "objects")) return malformed("objects");
  std::size_t num_objects = 0;
  if (!(in >> num_objects)) return malformed("object count");
  // Stage all objects at record-map speed and build the index once at the
  // end with the packed bulk path — restore time is dominated by the index
  // build otherwise.
  if (util::Status s = snapshot.database->BeginBulkIngest(); !s.ok()) {
    return s;
  }
  for (std::size_t i = 0; i < num_objects; ++i) {
    if (!ExpectToken(in, "object")) return malformed("object record");
    core::ObjectId id = 0;
    if (!(in >> id)) return malformed("object id");
    std::string label;
    if (!ReadString(in, &label)) return malformed("object label");
    core::PositionAttribute a;
    core::Time insert_time = 0.0;
    std::uint64_t update_count = 0;
    std::size_t past_count = 0;
    if (!ReadAttribute(in, &a)) return malformed("object attribute");
    if (!(in >> insert_time >> update_count >> past_count)) {
      return malformed("object fields");
    }
    std::vector<core::PositionAttribute> past(past_count);
    for (core::PositionAttribute& version : past) {
      if (!ReadAttribute(in, &version)) return malformed("past version");
    }
    // Re-insert rejections (unknown route, duplicate id, bad attribute)
    // mean the file is corrupt — surface them uniformly as malformed
    // rather than leaking the database's own error codes.
    if (util::Status s = snapshot.database->Insert(id, label, a); !s.ok()) {
      return malformed("object " + std::to_string(id) + ": " + s.message());
    }
    if (!past.empty()) {
      if (util::Status s =
              snapshot.database->RestoreTrajectory(id, std::move(past));
          !s.ok()) {
        return malformed("object " + std::to_string(id) + ": " + s.message());
      }
    }
    (void)insert_time;   // Insert() re-derives it from the attribute.
    (void)update_count;  // the log is not persisted; counters restart
  }
  if (version >= 5) {
    // Groups restore *before* FinishBulkIngest so the bulk rebuild's
    // revalidation sweep and envelope re-collapse see them.
    if (!ExpectToken(in, "groups")) return malformed("groups");
    std::size_t num_groups = 0;
    GroupId next_group_id = 0;
    if (!(in >> num_groups >> next_group_id)) return malformed("group count");
    if (num_groups > num_objects) return malformed("group count");
    std::vector<PersistedGroup> groups;
    groups.reserve(num_groups);
    for (std::size_t i = 0; i < num_groups; ++i) {
      if (!ExpectToken(in, "group")) return malformed("group record");
      PersistedGroup g;
      int direction = 0;
      std::size_t member_count = 0;
      if (!(in >> g.id >> g.leader >> g.model.route >> direction >>
            g.model.speed >> g.model.anchor_time >> g.model.anchor_distance >>
            g.model.window_lo >> g.model.window_hi >> g.model.vmax >>
            g.model.width >> member_count)) {
        return malformed("group header");
      }
      if (direction != +1 && direction != -1) return malformed("group header");
      g.model.direction = static_cast<core::TravelDirection>(direction);
      if (member_count > num_objects) return malformed("group members");
      g.members.resize(member_count);
      for (core::ObjectId& m : g.members) {
        if (!(in >> m)) return malformed("group members");
      }
      groups.push_back(std::move(g));
    }
    snapshot.database->RestoreGroups(groups, next_group_id);
  }
  if (util::Status s = snapshot.database->FinishBulkIngest(); !s.ok()) {
    return s;
  }
  return snapshot;
}

util::Result<LoadedSnapshot> LoadSnapshot(const std::string& path) {
  std::ifstream file(path);
  if (!file) return util::Status::NotFound("cannot open " + path);
  return ReadSnapshot(file);
}

}  // namespace modb::db
