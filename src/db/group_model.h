#ifndef MODB_DB_GROUP_MODEL_H_
#define MODB_DB_GROUP_MODEL_H_

#include <cstdint>
#include <vector>

#include "core/types.h"
#include "geo/route.h"

namespace modb::db {

/// Identifier of a convoy/group tracked by `db::GroupTracker`.
using GroupId = std::uint64_t;

/// Synthetic object-id namespace for group-envelope index entries. The
/// envelope of group g is stored in the `ObjectIndex` under
/// `EnvelopeIdFor(g)` — never under the leader's id, so the leader's own
/// per-object index state keeps evolving (as a hidden row) without
/// clobbering the envelope boxes. Real object ids with the top bit set are
/// never grouped (the tracker refuses them), so the namespaces stay
/// disjoint; query refinement recognises envelope candidates by this bit
/// and expands them into exact member candidacies.
inline constexpr core::ObjectId kEnvelopeIdBase = core::ObjectId{1} << 63;

constexpr bool IsEnvelopeId(core::ObjectId id) {
  return id != core::kInvalidObjectId && (id & kEnvelopeIdBase) != 0;
}
constexpr core::ObjectId EnvelopeIdFor(GroupId group) {
  return kEnvelopeIdBase | group;
}
constexpr GroupId GroupOfEnvelopeId(core::ObjectId id) {
  return id & ~kEnvelopeIdBase;
}

/// The shared motion model of a convoy: a line in (time, route-distance)
/// space plus the cohesion tube around it. Every member's uncertainty
/// interval over its policy horizon is contained in
/// [LineAt(t) - width, LineAt(t) + width] (the cohesion invariant the
/// tracker enforces on every membership change), which is what makes the
/// single envelope index entry a sound cover for all members.
struct GroupModel {
  geo::RouteId route = geo::kInvalidRouteId;
  core::TravelDirection direction = core::TravelDirection::kForward;
  /// Shared speed v_g (the leader's declared speed at formation).
  double speed = 0.0;
  core::Time anchor_time = 0.0;
  double anchor_distance = 0.0;
  /// Time window the envelope entry covers; every member's
  /// [start_time, start_time + horizon] lies inside it.
  core::Time window_lo = 0.0;
  core::Time window_hi = 0.0;
  /// Max member max_speed, fixed at formation (joins faster than this are
  /// rejected so the envelope padding never needs to grow).
  double vmax = 0.0;
  /// Cohesion half-width W: bound on |member position ± deviation bound -
  /// LineAt(t)| over the member's horizon.
  double width = 0.0;

  /// Route-distance of the group line at `t` (unclamped; clamping is
  /// 1-Lipschitz, so bounds proved on the raw line hold clamped too).
  double LineAt(core::Time t) const {
    return anchor_distance +
           core::DirectionSign(direction) * speed * (t - anchor_time);
  }
};

/// Kind of a group-membership transition. Update-driven transitions are
/// logged in the WAL (`kGroupBatch`) and applied verbatim on replay;
/// erase-driven ones are deterministic consequences of `kErase` records and
/// are reproduced, not logged.
enum class GroupTransitionKind : std::uint8_t {
  kForm = 1,          // group created; `members` incl. leader; carries model
  kJoin = 2,          // `members[0]` joined `group`
  kLeave = 3,         // `members[0]` left `group` (cohesion broke)
  kDissolve = 4,      // group fell below min size; members re-materialize
  kLeaderChange = 5,  // `leader` is the new leader
  kRefresh = 6,       // window extended; carries the updated model
};

/// One group-membership transition, in the order it happened within a
/// batch. `model` is meaningful for kForm and kRefresh only.
struct GroupTransition {
  GroupTransitionKind kind = GroupTransitionKind::kForm;
  GroupId group = 0;
  core::ObjectId leader = core::kInvalidObjectId;
  GroupModel model;
  std::vector<core::ObjectId> members;
};

/// Snapshot form of one group (snapshot v5 `groups` section).
struct PersistedGroup {
  GroupId id = 0;
  core::ObjectId leader = core::kInvalidObjectId;
  GroupModel model;
  /// Sorted ascending, leader included.
  std::vector<core::ObjectId> members;
};

/// Knobs of the online convoy detector. Distances are route-distance
/// units, times are simulation time units (the paper's minutes).
struct GroupTrackingOptions {
  /// Master switch; off reproduces the ungrouped write path byte-for-byte.
  bool enabled = false;
  /// Cohesion half-width W members must stay within to remain grouped.
  double cohesion_window = 8.0;
  /// Tighter half-width applied when joining/forming (hysteresis: a member
  /// admitted at `join_window` has `cohesion_window - join_window` of room
  /// before it splits off, so boundary members do not thrash).
  double join_window = 6.0;
  /// Minimum members (leader included) to form or keep a group.
  std::size_t min_group_size = 3;
  /// Width of the coarse speed band in the detection cell key
  /// (route, direction, floor(speed / speed_band_width)) — the ready-made
  /// clustering key the velocity-partitioned bands motivate.
  double speed_band_width = 0.25;
  /// Extra time the envelope window extends past the newest member's
  /// horizon, so in-cohesion member updates need no window refresh.
  /// <= 0 means "one index horizon".
  double window_slack = 0.0;
  /// Cap on detection-cell peers scanned per formation attempt.
  std::size_t max_form_scan = 64;
};

}  // namespace modb::db

#endif  // MODB_DB_GROUP_MODEL_H_
