#ifndef MODB_DB_MOD_DATABASE_H_
#define MODB_DB_MOD_DATABASE_H_

#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/position_attribute.h"
#include "core/types.h"
#include "core/update_policy.h"
#include "db/group_tracker.h"
#include "db/moving_object.h"
#include "db/query.h"
#include "db/update_log.h"
#include "geo/polygon.h"
#include "geo/route_network.h"
#include "index/object_index.h"
#include "storage/storage_manager.h"
#include "util/metrics.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace modb::db {

class WalWriter;
class DeltaConsumer;
struct AttributeDelta;
class SubscriptionEngine;
class RangeQueryCache;

/// Per-record outcome of `ApplyUpdateBatch` (index-aligned with the input
/// batch). Validation failures are per-record: the rejected record gets its
/// error, the rest of the batch proceeds. A log (WAL) failure fails every
/// accepted record and nothing is applied.
struct UpdateBatchResult {
  std::vector<util::Status> statuses;
  /// Records committed to the store (map + index).
  std::size_t applied = 0;
  /// Records rejected by the validate stage (no side effects).
  std::size_t rejected = 0;

  bool all_ok() const { return applied == statuses.size(); }
  /// First non-OK status in batch order (OK when every record applied).
  util::Status first_error() const {
    for (const util::Status& s : statuses) {
      if (!s.ok()) return s;
    }
    return util::Status::Ok();
  }
};

/// Which access method backs range queries.
enum class IndexKind {
  kTimeSpaceRTree,        // the paper's §4 method
  kLinearScan,            // baseline
  kVelocityPartitioned,   // speed-banded R*-trees (see index/velocity_...)
};

/// Moving-objects database options.
struct ModDatabaseOptions {
  IndexKind index_kind = IndexKind::kTimeSpaceRTree;
  /// O-plane horizon (time span T of §4.2) and slab width for the R*-tree
  /// indexes; ignored by the linear scan. For the velocity-partitioned
  /// index the slab width applies to the slowest band.
  double oplane_horizon = 120.0;
  double oplane_slab_width = 4.0;
  /// Velocity partitioning (kVelocityPartitioned only): number of speed
  /// bands, optional explicit ascending band speed bounds (empty = derive
  /// from fleet speed quantiles; this is what snapshots persist so a
  /// restore bands identically to the live store), and the narrowest slab
  /// fast bands may shrink to.
  std::size_t velocity_bands = 3;
  std::vector<double> velocity_band_bounds;
  double velocity_min_slab_width = 0.5;
  /// Optional pool the velocity-partitioned index fans band probes out on
  /// (non-owning, must outlive the database; not persisted). nullptr
  /// probes bands serially.
  util::ThreadPool* index_pool = nullptr;
  /// Page storage backing the range index's R*-tree nodes (ignored by the
  /// linear scan). Defaults to unbounded in-memory pages — identical
  /// behavior and performance to the pre-paged index. Set `kind = kDisk`
  /// with a `path` and a `pool_pages` budget to bound index memory: nodes
  /// then live in a page file behind a clock-eviction buffer pool, and
  /// `FlushIndexStorage` commits them (the durability manager does this
  /// before each snapshot). The velocity-partitioned index derives one
  /// page file per band from `path` (".band<b>" suffix); the sharded
  /// layer adds a ".shard<i>" suffix per shard. Not persisted in
  /// snapshots — storage placement is a deployment concern, so a restored
  /// database uses whatever config its options carry (default: memory).
  storage::StorageConfig index_storage;
  /// Cap on the update-log history retained for replay (0 = unlimited).
  std::size_t max_log_history = 0;
  /// Keep superseded attribute versions per object so position queries at
  /// past times are answered from the motion model that was valid then
  /// (valid-time == transaction-time, paper §2). Off by default: fleets
  /// with high update rates may not want the per-object history growth.
  bool keep_trajectory = false;
  /// Cap on retained past versions per object (0 = unlimited). When the
  /// cap is hit the oldest versions are dropped; queries before the oldest
  /// retained version answer from that version.
  std::size_t max_trajectory_versions = 0;
  /// Convoy/group tracking (see `db::GroupTracker`): clusters objects that
  /// share a route and velocity band behind one envelope index entry and
  /// compact WAL rows. Off by default; requires an R*-tree index kind
  /// (silently stays off with the linear scan, which has no envelope
  /// support). Query answers are byte-identical either way.
  GroupTrackingOptions group_tracking;
};

/// The moving-objects database (MOD): stores one position attribute per
/// object, ingests position updates, and answers the paper's two query
/// forms — position queries with deviation bounds (§3.3) and range queries
/// with MUST / MAY semantics (§4).
///
/// Thread-compatibility: the class is not internally synchronised; callers
/// serialise access (matching the paper's instantaneous-update model where
/// valid-time equals transaction-time).
class ModDatabase {
 public:
  /// `network` must outlive the database.
  ModDatabase(const geo::RouteNetwork* network, ModDatabaseOptions options);
  explicit ModDatabase(const geo::RouteNetwork* network)
      : ModDatabase(network, ModDatabaseOptions{}) {}

  ModDatabase(const ModDatabase&) = delete;
  ModDatabase& operator=(const ModDatabase&) = delete;

  /// Registers a moving object with its initial position attribute (the
  /// beginning-of-trip write of all sub-attributes, §3.1).
  util::Status Insert(core::ObjectId id, std::string label,
                      const core::PositionAttribute& attr);

  /// One row of a bulk insertion.
  struct BulkObject {
    core::ObjectId id = core::kInvalidObjectId;
    std::string label;
    core::PositionAttribute attr;
  };

  /// Registers a whole fleet at once. All rows are validated first (the
  /// database is unchanged on failure); the index is built with its packed
  /// bulk path — much faster than per-object `Insert` for large fleets.
  /// Logs one batched WAL record for the whole call instead of one per row
  /// (see `AttachWal` for the mid-batch failure semantics).
  util::Status BulkInsert(std::vector<BulkObject> objects);

  /// Applies a position update from a moving object: replaces
  /// P.starttime, P.speed, P.x/y.startposition (and P.route), keeping the
  /// policy parameters. Fails with NotFound for unknown objects and
  /// InvalidArgument for unknown routes or time regressions. Thin wrapper
  /// over `ApplyUpdateBatch` with a batch of one — there is a single
  /// staged write path.
  util::Status ApplyUpdate(const core::PositionUpdate& update);

  /// Applies a batch of position updates through the four-stage write
  /// path, observably equivalent to applying the records sequentially
  /// with `ApplyUpdate`:
  ///
  ///   1. validate — per-record route/speed/policy checks against the
  ///      batch-local evolving state (a second update to the same object
  ///      validates against the first one's result), no side effects;
  ///      rejected records get their status, the rest proceed.
  ///   2. log — all accepted updates in a single framed `kUpdateBatch` WAL
  ///      record (one CRC frame, one group-commit trigger check; a batch
  ///      of one logs the historical plain record). A failed append fails
  ///      every accepted record and aborts before any memory effect.
  ///   3. mutate — fleet-map commit in batch order; every intermediate
  ///      version lands in the trajectory history exactly as the
  ///      sequential path would.
  ///   4. index-delta — one `ApplyDeltaBatch` call with each touched
  ///      object's *final* merged attribute (per-object dedup: the index
  ///      only ever serves the current model, so intermediate upserts
  ///      would be dead work).
  UpdateBatchResult ApplyUpdateBatch(
      std::span<const core::PositionUpdate> updates);

  /// Removes an object (end of trip).
  util::Status Erase(core::ObjectId id);

  /// Starts a bulk-ingest session: until `FinishBulkIngest`, mutations
  /// skip the range index entirely and only touch the record map, so a
  /// recovery stream applies at map speed. Fails if a WAL is attached
  /// (bulk ingest exists for replay, which must never re-log itself) or a
  /// session is already active. Range/nearest queries during a session may
  /// miss objects — callers finish the session before serving reads.
  util::Status BeginBulkIngest();

  /// Ends the session: rebuilds the index once from the surviving records
  /// via the packed STR bulk path (~12× faster than repeated insertion,
  /// E10). The rebuild starts from a fresh index so in-session erases and
  /// route changes cannot leave stale entries behind.
  util::Status FinishBulkIngest();

  bool bulk_ingest_active() const { return bulk_ingest_; }

  /// Replaces the stored past attribute versions of `id` (used by snapshot
  /// restore). Versions must be ascending by start time and must not start
  /// after the current version.
  util::Status RestoreTrajectory(core::ObjectId id,
                                 std::vector<core::PositionAttribute> past);

  /// "What is the current position of m?" at time `t`: database position
  /// plus the deviation bounds the DBMS can derive from the policy (§3.3).
  util::Result<PositionAnswer> QueryPosition(core::ObjectId id,
                                             core::Time t) const;

  /// "Retrieve the objects which are inside polygon G at time t0" (§4):
  /// index candidates refined into MUST / MAY sets.
  RangeAnswer QueryRange(const geo::Polygon& region, core::Time t) const;

  /// The refinement half of `QueryRange`: classifies `candidates` (already
  /// probed from the index) into MUST / MAY against the stored records.
  /// `QueryRange` is exactly `RefineRange(region, t, Candidates(region, t))`.
  /// The split lets the sharded layer probe the index lock-free (when the
  /// index supports it) and take the shard's reader lock only for this
  /// record-map refinement.
  RangeAnswer RefineRange(const geo::Polygon& region, core::Time t,
                          const std::vector<core::ObjectId>& candidates) const;

  /// The refinement half of `QueryRangeInterval` (swap-tolerant in t1/t2),
  /// mirroring `RefineRange`; candidates come from `CandidatesInWindow`.
  IntervalRangeAnswer RefineRangeInterval(
      const geo::Polygon& region, core::Time t1, core::Time t2,
      core::Duration sample_step,
      const std::vector<core::ObjectId>& candidates) const;

  /// "Retrieve the k objects nearest to `point` at time t", with
  /// uncertainty-aware distance brackets. Uses expanding index probes, so
  /// it stays sublinear for small k on large databases.
  NearestAnswer QueryNearest(const geo::Point2& point, std::size_t k,
                             core::Time t) const;

  /// `QueryNearest` with its two kinds of work injected, for callers that
  /// interleave lock-free index probes with locked record refinement (the
  /// sharded layer's optimistic read path):
  ///   - `probe(region)` returns the index candidates for a probe
  ///     rectangle (called without any lock held by this function);
  ///   - `locked(fn)` runs `fn` — which reads this database's record map —
  ///     under whatever exclusion the caller provides, returning false to
  ///     abort the query (e.g. an optimistic version recheck failed).
  /// Returns true with `*out` filled on success, false (out untouched,
  /// beyond possibly-partial scratch) when a `locked` call vetoed; the
  /// caller then falls back to its fully-locked path. The plain
  /// `QueryNearest` delegates here with trivial lambdas.
  bool QueryNearestSplit(
      const geo::Point2& point, std::size_t k, core::Time t,
      const std::function<std::vector<core::ObjectId>(const geo::Polygon&)>&
          probe,
      const std::function<bool(const std::function<void()>&)>& locked,
      NearestAnswer* out) const;

  /// "Retrieve the objects inside `region` at some time within [t1, t2]".
  /// `may` is exact (the uncertainty interval sweeps continuously, so
  /// span-overlap is equivalent to instant-overlap); `must_at_some_time`
  /// is evaluated at instants spaced `sample_step` apart plus the window
  /// edges.
  IntervalRangeAnswer QueryRangeInterval(const geo::Polygon& region,
                                         core::Time t1, core::Time t2,
                                         core::Duration sample_step = 1.0) const;

  /// Record lookup.
  util::Result<const MovingObjectRecord*> Get(core::ObjectId id) const;

  /// Registers this database's instruments in `registry` under `prefix`
  /// (counters `<prefix>updates_applied`, `<prefix>inserts`,
  /// `<prefix>erases`, `<prefix>index_probes`, the write-path stage
  /// counters `<prefix>ingest.validate_reject` / `<prefix>ingest.wal_fail`,
  /// the `<prefix>update.apply_latency_us` histogram and the
  /// `<prefix>ingest.batch_size` distribution (records per ApplyUpdateBatch
  /// call; reuses the latency-histogram machinery with its "µs" unit
  /// reading as a record count, like `wal.group_commit_batch`), plus
  /// whatever the index registers under `<prefix>index.` — e.g.
  /// `remove_miss` or the velocity-partitioned per-band gauges) and starts
  /// updating them;
  /// nullptr detaches. The registry must outlive the database. Several
  /// databases given the same registry and prefix share the instruments —
  /// that is how the sharded layer aggregates across shards. Counter
  /// updates are lock-free, so const queries may bump `index_probes`
  /// concurrently with other readers.
  void SetMetrics(util::MetricsRegistry* registry,
                  const std::string& prefix = "mod.");

  /// Attaches a write-ahead log (nullptr detaches; non-owning — the WAL
  /// must outlive the attachment). Once attached, every mutation is
  /// appended to the log *after* validation but *before* the in-memory
  /// commit, so a WAL append failure aborts the mutation and the log never
  /// trails the memory state. `BulkInsert` and `ApplyUpdateBatch` log one
  /// batched record per call (chunked only near the frame size bound); a
  /// mid-batch append failure leaves the already-logged chunks in the WAL
  /// while the store applies nothing — recovery replays that prefix of the
  /// *logged* record stream, and the poisoned writer guarantees no later
  /// record can land after the hole (batch atomicity is an in-memory
  /// property, durability is per logged record).
  void AttachWal(WalWriter* wal) { wal_ = wal; }
  WalWriter* wal() const { return wal_; }

  /// Registers a delta-stream consumer (non-owning; must outlive the
  /// attachment). Consumers are notified after every committed mutation —
  /// insert, update batch, erase — with the ordered per-record attribute
  /// transitions (see `AttributeDelta`: the stream is per record, not
  /// per-object deduped, so batched and sequential ingest notify
  /// identically). Recovery-style paths that bypass the index
  /// (bulk-ingest sessions, `RestoreTrajectory`) do not notify; finish
  /// recovery before attaching consumers. No-op when already attached.
  void AttachDeltaConsumer(DeltaConsumer* consumer);
  void DetachDeltaConsumer(DeltaConsumer* consumer);

  /// Convenience: attaches `engine` as a delta consumer and remembers it
  /// as *the* subscription engine, which the query language's SUBSCRIBE /
  /// UNSUBSCRIBE / EVENTS statements resolve through `subscriptions()`.
  /// nullptr detaches the previous engine.
  void AttachSubscriptions(SubscriptionEngine* engine);
  SubscriptionEngine* subscriptions() const { return subscriptions_; }

  /// Convenience: attaches `cache` as a delta consumer and routes
  /// `QueryRangeCached` through it. nullptr detaches the previous cache.
  /// The cache's matcher horizon must be >= this database's
  /// `oplane_horizon` (see `RangeQueryCache`'s horizon contract).
  void AttachResultCache(RangeQueryCache* cache);
  RangeQueryCache* result_cache() const { return result_cache_; }

  /// `QueryRange` through the attached result cache: byte-identical
  /// answers (the cache is invalidated by the delta stream), falling back
  /// to a plain `QueryRange` when no cache is attached.
  RangeAnswer QueryRangeCached(const geo::Polygon& region, core::Time t) const;

  /// Flushes the index's dirty pages and commits its page store (no-op for
  /// in-memory storage). The durability manager calls this before writing
  /// a snapshot so the page file on disk is consistent with the snapshot's
  /// logical state; call it likewise before copying the page file.
  util::Status FlushIndexStorage() { return index_->FlushStorage(); }

  /// Invokes `fn` on every stored record (unspecified order). Used by the
  /// snapshot writer and statistics tooling.
  void ForEachRecord(
      const std::function<void(const MovingObjectRecord&)>& fn) const;

  std::size_t num_objects() const { return records_.size(); }
  const UpdateLog& log() const { return log_; }
  const index::ObjectIndex& object_index() const { return *index_; }
  const geo::RouteNetwork& network() const { return *network_; }
  const ModDatabaseOptions& options() const { return options_; }

  /// Shared handle to the current index, for callers that probe it while
  /// this database may be swapped out from under them (the sharded layer's
  /// lock-free read path keeps the index alive across a shard-remediation
  /// db swap). The handle tracks the index instance current at call time;
  /// `FinishBulkIngest` installs a fresh instance under the same mutex, so
  /// a concurrent caller gets either the old complete index or the new one,
  /// never a torn pointer.
  std::shared_ptr<const index::ObjectIndex> SharedIndex() const {
    std::lock_guard lock(index_mu_);
    return index_;
  }

  /// Bumps the `<prefix>index_probes` counter (lock-free; see `SetMetrics`).
  /// Public so the sharded layer's lock-free probe path, which calls the
  /// index directly through `SharedIndex`, counts its probes identically to
  /// the in-database query paths.
  void CountIndexProbe() const {
    if (index_probes_ != nullptr) index_probes_->Increment();
  }

  /// The convoy tracker (never null; check `enabled()` — group tracking
  /// must be switched on in the options *and* the index kind must support
  /// envelope entries).
  const GroupTracker& group_tracker() const { return *group_tracker_; }

  /// Applies logged group-membership transitions verbatim (WAL replay of a
  /// `kGroupBatch` record; no-op when tracking is off).
  void ApplyGroupTransitions(const std::vector<GroupTransition>& transitions);

  /// Installs snapshot-persisted groups (call after the member records are
  /// inserted; no-op when tracking is off).
  void RestoreGroups(const std::vector<PersistedGroup>& groups,
                     GroupId next_group_id);

  /// Snapshot form of the current groups (empty when tracking is off).
  std::vector<PersistedGroup> ExportGroups() const;
  GroupId group_next_id() const { return group_tracker_->next_group_id(); }

 private:
  util::Status ValidateAttribute(const core::PositionAttribute& attr) const;
  /// Fans a committed mutation's transition stream out to every attached
  /// consumer (the pointed-to attributes live only for the call).
  void NotifyDeltas(std::span<const AttributeDelta> deltas);
  /// Replaces group-envelope candidates in `ids` with the exact member
  /// candidacies (no-op without active groups). Callers on the lock-free
  /// read path invoke this under the shard's shared lock — the tracker is
  /// only mutated under the exclusive lock.
  void ExpandGroupCandidates(std::vector<core::ObjectId>* ids,
                             const geo::Polygon& region, core::Time t1,
                             core::Time t2) const;
  bool group_tracking_on() const { return group_tracker_->enabled(); }

  const geo::RouteNetwork* network_;
  ModDatabaseOptions options_;
  std::unordered_map<core::ObjectId, MovingObjectRecord> records_;
  // shared_ptr (not unique_ptr) so `SharedIndex` can hand out handles that
  // outlive a `FinishBulkIngest` swap; `index_mu_` guards only the pointer
  // itself, never index operations.
  std::shared_ptr<index::ObjectIndex> index_;
  mutable std::mutex index_mu_;
  std::unique_ptr<GroupTracker> group_tracker_;  // never null
  UpdateLog log_;
  WalWriter* wal_ = nullptr;  // non-owning, see AttachWal
  // Delta-stream fan-out (all non-owning, see AttachDeltaConsumer).
  std::vector<DeltaConsumer*> consumers_;
  SubscriptionEngine* subscriptions_ = nullptr;
  RangeQueryCache* result_cache_ = nullptr;
  bool bulk_ingest_ = false;  // index updates deferred, see BeginBulkIngest
  // Metrics attachment, remembered so a rebuilt index (FinishBulkIngest)
  // re-registers its instruments. Non-owning, may be null.
  util::MetricsRegistry* metrics_registry_ = nullptr;
  std::string metrics_prefix_;
  // Optional instruments (see SetMetrics); non-owning, may be null.
  util::Counter* updates_applied_ = nullptr;
  util::Counter* inserts_ = nullptr;
  util::Counter* erases_ = nullptr;
  util::Counter* index_probes_ = nullptr;
  util::Counter* validate_rejects_ = nullptr;
  util::Counter* wal_fails_ = nullptr;
  util::LatencyHistogram* apply_latency_ = nullptr;
  util::LatencyHistogram* batch_size_hist_ = nullptr;
};

}  // namespace modb::db

#endif  // MODB_DB_MOD_DATABASE_H_
