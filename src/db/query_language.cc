#include "db/query_language.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

namespace modb::db {

namespace {

// ---- Lexer ----

enum class TokenKind { kWord, kNumber, kComma, kLParen, kRParen, kEnd };

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string word;    // upper-cased for kWord
  double number = 0.0;
  std::size_t offset = 0;  // position in the input, for error messages
};

util::Status LexError(std::size_t offset, const std::string& what) {
  return util::Status::InvalidArgument("query error at offset " +
                                       std::to_string(offset) + ": " + what);
}

util::Result<std::vector<Token>> Lex(std::string_view text) {
  std::vector<Token> tokens;
  std::size_t i = 0;
  while (i < text.size()) {
    const char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token token;
    token.offset = i;
    if (c == ',') {
      token.kind = TokenKind::kComma;
      ++i;
    } else if (c == '(') {
      token.kind = TokenKind::kLParen;
      ++i;
    } else if (c == ')') {
      token.kind = TokenKind::kRParen;
      ++i;
    } else if (std::isdigit(static_cast<unsigned char>(c)) || c == '-' ||
               c == '+' || c == '.') {
      std::size_t end = i;
      while (end < text.size() &&
             (std::isdigit(static_cast<unsigned char>(text[end])) ||
              text[end] == '.' || text[end] == '-' || text[end] == '+' ||
              text[end] == 'e' || text[end] == 'E')) {
        ++end;
      }
      const std::string number(text.substr(i, end - i));
      char* parsed_end = nullptr;
      errno = 0;
      token.number = std::strtod(number.c_str(), &parsed_end);
      if (parsed_end == number.c_str() ||
          static_cast<std::size_t>(parsed_end - number.c_str()) !=
              number.size()) {
        return LexError(i, "malformed number '" + number + "'");
      }
      // strtod reports overflow by returning +/-HUGE_VAL with ERANGE —
      // without this check a literal like 1e999 silently becomes an
      // infinite query-box coordinate. Underflow (also ERANGE, tiny
      // denormal or zero result) is accepted: the nearest representable
      // value is a faithful coordinate. The isfinite guard also rejects
      // any other non-finite parse defensively.
      if ((errno == ERANGE && std::isinf(token.number)) ||
          !std::isfinite(token.number)) {
        return LexError(i, "number out of range '" + number + "'");
      }
      token.kind = TokenKind::kNumber;
      i = end;
    } else if (std::isalpha(static_cast<unsigned char>(c))) {
      std::size_t end = i;
      while (end < text.size() &&
             (std::isalnum(static_cast<unsigned char>(text[end])) ||
              text[end] == '_')) {
        ++end;
      }
      token.kind = TokenKind::kWord;
      token.word.assign(text.substr(i, end - i));
      std::transform(token.word.begin(), token.word.end(), token.word.begin(),
                     [](unsigned char ch) {
                       return static_cast<char>(std::toupper(ch));
                     });
      i = end;
    } else {
      return LexError(i, std::string("unexpected character '") + c + "'");
    }
    tokens.push_back(std::move(token));
  }
  Token end_token;
  end_token.kind = TokenKind::kEnd;
  end_token.offset = text.size();
  tokens.push_back(end_token);
  return tokens;
}

// ---- Parser ----

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  util::Result<ParsedQuery> Parse() {
    const Token& head = Peek();
    if (head.kind != TokenKind::kWord) {
      return Error(
          "expected POSITION, SELECT, NEAREST, SUBSCRIBE, UNSUBSCRIBE, or "
          "EVENTS");
    }
    util::Result<ParsedQuery> query = [&]() -> util::Result<ParsedQuery> {
      if (head.word == "POSITION") return ParsePosition();
      if (head.word == "SELECT") return ParseRange();
      if (head.word == "NEAREST") return ParseNearest();
      if (head.word == "SUBSCRIBE") return ParseSubscribe();
      if (head.word == "UNSUBSCRIBE") return ParseUnsubscribe();
      if (head.word == "EVENTS") {
        Advance();
        return ParsedQuery{EventsSpec{}};
      }
      return Error("unknown query verb '" + head.word + "'");
    }();
    if (!query.ok()) return query;
    if (Peek().kind != TokenKind::kEnd) {
      return Error("trailing input after query");
    }
    return query;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Advance() { return tokens_[pos_++]; }

  util::Status ErrorStatus(const std::string& what) const {
    return util::Status::InvalidArgument(
        "query error at offset " + std::to_string(Peek().offset) + ": " +
        what);
  }
  util::Result<ParsedQuery> Error(const std::string& what) const {
    return ErrorStatus(what);
  }

  bool ConsumeWord(const char* word) {
    if (Peek().kind == TokenKind::kWord && Peek().word == word) {
      Advance();
      return true;
    }
    return false;
  }

  util::Status ExpectWord(const char* word) {
    if (!ConsumeWord(word)) {
      return ErrorStatus(std::string("expected '") + word + "'");
    }
    return util::Status::Ok();
  }

  util::Status ExpectNumber(double* out) {
    if (Peek().kind != TokenKind::kNumber) {
      return ErrorStatus("expected a number");
    }
    *out = Advance().number;
    return util::Status::Ok();
  }

  util::Status Expect(TokenKind kind, const char* what) {
    if (Peek().kind != kind) return ErrorStatus(std::string("expected ") + what);
    Advance();
    return util::Status::Ok();
  }

  util::Status ParseNumberList(std::size_t count, double* out) {
    if (util::Status s = Expect(TokenKind::kLParen, "'('"); !s.ok()) return s;
    for (std::size_t i = 0; i < count; ++i) {
      if (i > 0) {
        if (util::Status s = Expect(TokenKind::kComma, "','"); !s.ok()) {
          return s;
        }
      }
      if (util::Status s = ExpectNumber(&out[i]); !s.ok()) return s;
    }
    return Expect(TokenKind::kRParen, "')'");
  }

  util::Result<ParsedQuery> ParsePosition() {
    Advance();  // POSITION
    if (util::Status s = ExpectWord("OF"); !s.ok()) return s;
    double id = 0.0;
    if (util::Status s = ExpectNumber(&id); !s.ok()) return s;
    if (id < 0.0 || id != std::floor(id)) {
      return Error("object id must be a nonnegative integer");
    }
    if (util::Status s = ExpectWord("AT"); !s.ok()) return s;
    double t = 0.0;
    if (util::Status s = ExpectNumber(&t); !s.ok()) return s;
    PositionQuerySpec spec;
    spec.id = static_cast<core::ObjectId>(id);
    spec.time = t;
    return ParsedQuery{spec};
  }

  // Shared by SELECT and SUBSCRIBE: region := RECT(...) | CIRCLE(...).
  util::Status ParseRegion(geo::Polygon* region, std::string* region_text) {
    char text[96];
    if (ConsumeWord("RECT")) {
      double v[4];
      if (util::Status s = ParseNumberList(4, v); !s.ok()) return s;
      *region = geo::Polygon::Rectangle(v[0], v[1], v[2], v[3]);
      std::snprintf(text, sizeof(text), "RECT(%g, %g, %g, %g)", v[0], v[1],
                    v[2], v[3]);
    } else if (ConsumeWord("CIRCLE")) {
      double v[3];
      if (util::Status s = ParseNumberList(3, v); !s.ok()) return s;
      if (v[2] <= 0.0) return ErrorStatus("circle radius must be positive");
      *region = geo::Polygon::RegularNGon({v[0], v[1]}, v[2], 32);
      std::snprintf(text, sizeof(text), "CIRCLE(%g, %g, %g)", v[0], v[1],
                    v[2]);
    } else {
      return ErrorStatus("expected RECT or CIRCLE");
    }
    *region_text = text;
    return util::Status::Ok();
  }

  // Shared by SELECT and SUBSCRIBE: when := AT <t> | DURING <t1> TO <t2>.
  util::Status ParseWhen(bool* windowed, core::Time* time,
                         core::Time* window_end) {
    if (ConsumeWord("AT")) {
      if (util::Status s = ExpectNumber(time); !s.ok()) return s;
      *windowed = false;
      return util::Status::Ok();
    }
    if (ConsumeWord("DURING")) {
      if (util::Status s = ExpectNumber(time); !s.ok()) return s;
      if (util::Status s = ExpectWord("TO"); !s.ok()) return s;
      if (util::Status s = ExpectNumber(window_end); !s.ok()) return s;
      *windowed = true;
      return util::Status::Ok();
    }
    return ErrorStatus("expected AT <time> or DURING <t1> TO <t2>");
  }

  // Optional trailing modifier on SELECT / NEAREST:
  //   partiality := ALLOW PARTIAL | STRICT   (absent = STRICT)
  util::Status ParsePartiality(bool* allow_partial) {
    if (ConsumeWord("ALLOW")) {
      if (util::Status s = ExpectWord("PARTIAL"); !s.ok()) return s;
      *allow_partial = true;
      return util::Status::Ok();
    }
    if (ConsumeWord("STRICT")) {
      *allow_partial = false;
    }
    return util::Status::Ok();
  }

  util::Result<ParsedQuery> ParseRange() {
    Advance();  // SELECT
    RangeQuerySpec spec;
    if (ConsumeWord("ALL")) {
      spec.scope = RangeQuerySpec::Scope::kAll;
    } else if (ConsumeWord("MUST")) {
      spec.scope = RangeQuerySpec::Scope::kMust;
    } else if (ConsumeWord("MAY")) {
      spec.scope = RangeQuerySpec::Scope::kMay;
    } else {
      return Error("expected ALL, MUST, or MAY after SELECT");
    }
    if (util::Status s = ExpectWord("INSIDE"); !s.ok()) return s;
    if (util::Status s = ParseRegion(&spec.region, &spec.region_text);
        !s.ok()) {
      return s;
    }
    if (util::Status s =
            ParseWhen(&spec.windowed, &spec.time, &spec.window_end);
        !s.ok()) {
      return s;
    }
    if (util::Status s = ParsePartiality(&spec.allow_partial); !s.ok()) {
      return s;
    }
    return ParsedQuery{spec};
  }

  util::Result<ParsedQuery> ParseSubscribe() {
    Advance();  // SUBSCRIBE
    double id = 0.0;
    if (util::Status s = ExpectNumber(&id); !s.ok()) return s;
    if (id < 0.0 || id != std::floor(id)) {
      return Error("subscription id must be a nonnegative integer");
    }
    if (util::Status s = ExpectWord("TO"); !s.ok()) return s;
    SubscribeSpec spec;
    spec.id = static_cast<SubscriptionId>(id);
    if (ConsumeWord("ALL")) {
      spec.subscription.mode = SubscriptionMode::kAll;
    } else if (ConsumeWord("MUST")) {
      spec.subscription.mode = SubscriptionMode::kMust;
    } else if (ConsumeWord("MAY")) {
      spec.subscription.mode = SubscriptionMode::kMay;
    } else {
      return Error("expected ALL, MUST, or MAY after TO");
    }
    if (util::Status s = ExpectWord("INSIDE"); !s.ok()) return s;
    if (util::Status s = ParseRegion(&spec.subscription.region,
                                     &spec.subscription.region_text);
        !s.ok()) {
      return s;
    }
    if (util::Status s =
            ParseWhen(&spec.subscription.windowed, &spec.subscription.time,
                      &spec.subscription.window_end);
        !s.ok()) {
      return s;
    }
    return ParsedQuery{spec};
  }

  util::Result<ParsedQuery> ParseUnsubscribe() {
    Advance();  // UNSUBSCRIBE
    double id = 0.0;
    if (util::Status s = ExpectNumber(&id); !s.ok()) return s;
    if (id < 0.0 || id != std::floor(id)) {
      return Error("subscription id must be a nonnegative integer");
    }
    UnsubscribeSpec spec;
    spec.id = static_cast<SubscriptionId>(id);
    return ParsedQuery{spec};
  }

  util::Result<ParsedQuery> ParseNearest() {
    Advance();  // NEAREST
    double k = 0.0;
    if (util::Status s = ExpectNumber(&k); !s.ok()) return s;
    if (k < 1.0 || k != std::floor(k)) {
      return Error("k must be a positive integer");
    }
    if (util::Status s = ExpectWord("TO"); !s.ok()) return s;
    if (util::Status s = ExpectWord("POINT"); !s.ok()) return s;
    double v[2];
    if (util::Status s = ParseNumberList(2, v); !s.ok()) return s;
    if (util::Status s = ExpectWord("AT"); !s.ok()) return s;
    double t = 0.0;
    if (util::Status s = ExpectNumber(&t); !s.ok()) return s;
    NearestQuerySpec spec;
    spec.k = static_cast<std::size_t>(k);
    spec.point = {v[0], v[1]};
    spec.time = t;
    if (util::Status s = ParsePartiality(&spec.allow_partial); !s.ok()) {
      return s;
    }
    return ParsedQuery{spec};
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

// ---- Evaluation / formatting ----

void AppendIdList(std::string* out,
                  const std::vector<core::ObjectId>& ids,
                  const std::vector<double>* probabilities = nullptr) {
  if (ids.empty()) {
    *out += " (none)";
    return;
  }
  char buf[64];
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (probabilities != nullptr && i < probabilities->size()) {
      std::snprintf(buf, sizeof(buf), " %llu(p=%.2f)",
                    static_cast<unsigned long long>(ids[i]),
                    (*probabilities)[i]);
    } else {
      std::snprintf(buf, sizeof(buf), " %llu",
                    static_cast<unsigned long long>(ids[i]));
    }
    *out += buf;
  }
}

std::string FormatPosition(const PositionAnswer& answer) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "object %llu at t=%g: %s on route %u (distance %.3f), "
                "bound %.3f, interval [%.3f, %.3f]",
                static_cast<unsigned long long>(answer.id),
                answer.query_time, answer.position.ToString().c_str(),
                answer.route, answer.route_distance, answer.deviation_bound,
                answer.uncertainty.lo, answer.uncertainty.hi);
  return buf;
}

std::string FormatRange(const RangeQuerySpec& spec, const RangeAnswer& answer) {
  std::string out = "inside " + spec.region_text + " at t=" +
                    std::to_string(answer.query_time) + ":";
  if (spec.scope != RangeQuerySpec::Scope::kMay) {
    out += "\n  MUST:";
    AppendIdList(&out, answer.must);
  }
  if (spec.scope != RangeQuerySpec::Scope::kMust) {
    out += "\n  MAY:";
    AppendIdList(&out, answer.may, &answer.may_probability);
  }
  return out;
}

std::string FormatWindow(const RangeQuerySpec& spec,
                         const IntervalRangeAnswer& answer) {
  char head[128];
  std::snprintf(head, sizeof(head), "inside %s during [%g, %g]:",
                spec.region_text.c_str(), answer.window_start,
                answer.window_end);
  std::string out = head;
  if (spec.scope != RangeQuerySpec::Scope::kMay) {
    out += "\n  MUST at some instant:";
    AppendIdList(&out, answer.must_at_some_time);
  }
  if (spec.scope != RangeQuerySpec::Scope::kMust) {
    out += "\n  MAY within window:";
    AppendIdList(&out, answer.may);
  }
  return out;
}

std::string FormatNearest(const NearestQuerySpec& spec,
                          const NearestAnswer& answer) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "nearest %zu to (%g, %g) at t=%g:",
                spec.k, spec.point.x, spec.point.y, spec.time);
  std::string out = buf;
  if (answer.items.empty()) out += "\n  (no objects)";
  for (const auto& item : answer.items) {
    std::snprintf(buf, sizeof(buf),
                  "\n  object %llu: distance %.3f (possible %.3f .. %.3f)",
                  static_cast<unsigned long long>(item.id), item.db_distance,
                  item.min_possible_distance, item.max_possible_distance);
    out += buf;
  }
  return out;
}

std::string FormatSubscribed(const SubscribeSpec& spec) {
  const SubscriptionSpec& sub = spec.subscription;
  char buf[192];
  if (sub.windowed) {
    std::snprintf(buf, sizeof(buf), "subscribed %llu: %s inside %s during "
                  "[%g, %g]",
                  static_cast<unsigned long long>(spec.id),
                  std::string(SubscriptionModeName(sub.mode)).c_str(),
                  sub.region_text.c_str(), sub.time, sub.window_end);
  } else {
    std::snprintf(buf, sizeof(buf), "subscribed %llu: %s inside %s at t=%g",
                  static_cast<unsigned long long>(spec.id),
                  std::string(SubscriptionModeName(sub.mode)).c_str(),
                  sub.region_text.c_str(), sub.time);
  }
  return buf;
}

// ---- Degraded-read plumbing (sharded executor) ----

std::string ExcludedShardList(const QueryCompleteness& completeness) {
  std::string out;
  for (std::size_t s : completeness.excluded_shards) {
    if (!out.empty()) out += ", ";
    out += std::to_string(s);
  }
  return out;
}

// STRICT gate: a partial answer is refused with the typed Unavailable
// unless the query opted in with ALLOW PARTIAL.
util::Status PartialityGate(const QueryCompleteness& completeness,
                            bool allow_partial) {
  if (completeness.complete || allow_partial) return util::Status::Ok();
  return util::Status::Unavailable(
      "partial answer refused (STRICT): shard(s) " +
      ExcludedShardList(completeness) +
      " quarantined; retry later or query with ALLOW PARTIAL");
}

// Rendering suffix for an accepted partial answer. MUST entries are still
// sound (each listed object provably satisfies the predicate); the lists
// are lower bounds because the excluded shards' objects are unseen.
std::string FormatCompleteness(const QueryCompleteness& completeness) {
  if (completeness.complete) return "";
  return "\n  partial (excluded shards: " + ExcludedShardList(completeness) +
         "; listed MUST answers remain sound)";
}

util::Result<SubscriptionEngine*> EngineOf(const ModDatabase& db) {
  SubscriptionEngine* engine = db.subscriptions();
  if (engine == nullptr) {
    return util::Status::FailedPrecondition(
        "no subscription engine attached (see "
        "ModDatabase::AttachSubscriptions)");
  }
  return engine;
}

}  // namespace

util::Result<ParsedQuery> ParseQuery(std::string_view text) {
  auto tokens = Lex(text);
  if (!tokens.ok()) return tokens.status();
  Parser parser(std::move(tokens).value());
  return parser.Parse();
}

util::Result<std::string> ExecuteQuery(const ModDatabase& db,
                                       std::string_view text) {
  const auto parsed = ParseQuery(text);
  if (!parsed.ok()) return parsed.status();

  if (const auto* position = std::get_if<PositionQuerySpec>(&*parsed)) {
    const auto answer = db.QueryPosition(position->id, position->time);
    if (!answer.ok()) return answer.status();
    return FormatPosition(*answer);
  }
  if (const auto* range = std::get_if<RangeQuerySpec>(&*parsed)) {
    if (range->windowed) {
      return FormatWindow(*range, db.QueryRangeInterval(
                                      range->region, range->time,
                                      range->window_end));
    }
    return FormatRange(*range, db.QueryRange(range->region, range->time));
  }
  if (const auto* nearest = std::get_if<NearestQuerySpec>(&*parsed)) {
    return FormatNearest(*nearest,
                         db.QueryNearest(nearest->point, nearest->k,
                                         nearest->time));
  }
  if (const auto* subscribe = std::get_if<SubscribeSpec>(&*parsed)) {
    auto engine = EngineOf(db);
    if (!engine.ok()) return engine.status();
    if (util::Status status =
            (*engine)->Subscribe(subscribe->id, subscribe->subscription);
        !status.ok()) {
      return status;
    }
    return FormatSubscribed(*subscribe);
  }
  if (const auto* unsubscribe = std::get_if<UnsubscribeSpec>(&*parsed)) {
    auto engine = EngineOf(db);
    if (!engine.ok()) return engine.status();
    if (util::Status status = (*engine)->Unsubscribe(unsubscribe->id);
        !status.ok()) {
      return status;
    }
    return "unsubscribed " + std::to_string(unsubscribe->id);
  }
  auto engine = EngineOf(db);  // EventsSpec
  if (!engine.ok()) return engine.status();
  std::string out = "events:";
  const auto events = (*engine)->TakeEvents();
  if (events.empty()) return out + " (none)";
  for (const auto& event : events) {
    out += "\n  " + event.ToString();
  }
  return out;
}

util::Result<std::string> ExecuteQuery(ShardedModDatabase& db,
                                       std::string_view text) {
  const auto parsed = ParseQuery(text);
  if (!parsed.ok()) return parsed.status();

  if (const auto* position = std::get_if<PositionQuerySpec>(&*parsed)) {
    // Per-object: the owning shard either answers or is down — the
    // Unavailable (with its retry hint) passes through untouched.
    const auto answer = db.QueryPosition(position->id, position->time);
    if (!answer.ok()) return answer.status();
    return FormatPosition(*answer);
  }
  if (const auto* range = std::get_if<RangeQuerySpec>(&*parsed)) {
    if (range->windowed) {
      IntervalRangeAnswer answer = db.QueryRangeInterval(
          range->region, range->time, range->window_end);
      if (util::Status gate =
              PartialityGate(answer.completeness, range->allow_partial);
          !gate.ok()) {
        return gate;
      }
      return FormatWindow(*range, answer) +
             FormatCompleteness(answer.completeness);
    }
    RangeAnswer answer = db.QueryRange(range->region, range->time);
    if (util::Status gate =
            PartialityGate(answer.completeness, range->allow_partial);
        !gate.ok()) {
      return gate;
    }
    return FormatRange(*range, answer) +
           FormatCompleteness(answer.completeness);
  }
  if (const auto* nearest = std::get_if<NearestQuerySpec>(&*parsed)) {
    NearestAnswer answer =
        db.QueryNearest(nearest->point, nearest->k, nearest->time);
    if (util::Status gate =
            PartialityGate(answer.completeness, nearest->allow_partial);
        !gate.ok()) {
      return gate;
    }
    return FormatNearest(*nearest, answer) +
           FormatCompleteness(answer.completeness);
  }
  if (const auto* subscribe = std::get_if<SubscribeSpec>(&*parsed)) {
    if (util::Status status =
            db.Subscribe(subscribe->id, subscribe->subscription);
        !status.ok()) {
      return status;
    }
    return FormatSubscribed(*subscribe);
  }
  if (const auto* unsubscribe = std::get_if<UnsubscribeSpec>(&*parsed)) {
    if (util::Status status = db.Unsubscribe(unsubscribe->id); !status.ok()) {
      return status;
    }
    return "unsubscribed " + std::to_string(unsubscribe->id);
  }
  // EventsSpec: drain the merged cross-shard stream.
  if (!db.subscriptions_enabled()) {
    return util::Status::FailedPrecondition(
        "subscriptions are not enabled on this database");
  }
  std::string out = "events:";
  const auto events = db.TakeSubscriptionEvents();
  if (events.empty()) return out + " (none)";
  for (const auto& event : events) {
    out += "\n  " + event.ToString();
  }
  return out;
}

}  // namespace modb::db
