#include "db/mod_database.h"

#include <algorithm>

#include "core/bounds.h"
#include "core/uncertainty.h"
#include "db/delta_stream.h"
#include "db/result_cache.h"
#include "db/subscription_engine.h"
#include "db/wal.h"
#include "index/linear_scan_index.h"
#include "index/timespace_index.h"
#include "index/velocity_partitioned_index.h"

namespace modb::db {

namespace {

std::unique_ptr<index::ObjectIndex> MakeIndex(
    const geo::RouteNetwork* network, const ModDatabaseOptions& options) {
  switch (options.index_kind) {
    case IndexKind::kTimeSpaceRTree: {
      index::TimeSpaceIndex::Options idx;
      idx.oplane.horizon = options.oplane_horizon;
      idx.oplane.slab_width = options.oplane_slab_width;
      idx.rtree.storage = options.index_storage;
      return std::make_unique<index::TimeSpaceIndex>(network, idx);
    }
    case IndexKind::kLinearScan:
      return std::make_unique<index::LinearScanIndex>(network);
    case IndexKind::kVelocityPartitioned: {
      index::VelocityPartitionedIndex::Options idx;
      idx.oplane.horizon = options.oplane_horizon;
      idx.oplane.slab_width = options.oplane_slab_width;
      idx.num_bands = options.velocity_bands;
      idx.band_bounds = options.velocity_band_bounds;
      idx.min_slab_width = options.velocity_min_slab_width;
      idx.pool = options.index_pool;
      idx.rtree.storage = options.index_storage;
      return std::make_unique<index::VelocityPartitionedIndex>(network, idx);
    }
  }
  return nullptr;
}

}  // namespace

namespace {

GroupTrackingOptions EffectiveGroupOptions(
    const ModDatabaseOptions& options,
    const index::ObjectIndex& index) {
  GroupTrackingOptions group = options.group_tracking;
  // The linear scan has no envelope support; tracking silently stays off.
  group.enabled = group.enabled && index.supports_group_envelopes();
  return group;
}

index::OPlaneOptions BaseOPlane(const ModDatabaseOptions& options) {
  index::OPlaneOptions oplane;
  oplane.horizon = options.oplane_horizon;
  oplane.slab_width = options.oplane_slab_width;
  return oplane;
}

}  // namespace

ModDatabase::ModDatabase(const geo::RouteNetwork* network,
                         ModDatabaseOptions options)
    : network_(network),
      options_(options),
      index_(MakeIndex(network, options)),
      group_tracker_(std::make_unique<GroupTracker>(
          network, EffectiveGroupOptions(options, *index_),
          BaseOPlane(options))),
      log_(options.max_log_history) {}

void ModDatabase::SetMetrics(util::MetricsRegistry* registry,
                             const std::string& prefix) {
  metrics_registry_ = registry;
  metrics_prefix_ = prefix;
  if (registry == nullptr) {
    updates_applied_ = nullptr;
    inserts_ = nullptr;
    erases_ = nullptr;
    index_probes_ = nullptr;
    validate_rejects_ = nullptr;
    wal_fails_ = nullptr;
    apply_latency_ = nullptr;
    batch_size_hist_ = nullptr;
    index_->SetMetrics(nullptr, "");
    group_tracker_->SetMetrics(nullptr, "");
    return;
  }
  updates_applied_ = registry->GetCounter(prefix + "updates_applied");
  inserts_ = registry->GetCounter(prefix + "inserts");
  erases_ = registry->GetCounter(prefix + "erases");
  index_probes_ = registry->GetCounter(prefix + "index_probes");
  validate_rejects_ = registry->GetCounter(prefix + "ingest.validate_reject");
  wal_fails_ = registry->GetCounter(prefix + "ingest.wal_fail");
  apply_latency_ = registry->GetLatency(prefix + "update.apply_latency_us");
  // Batch-size distribution: reuses the latency-histogram machinery with
  // *records per ApplyUpdateBatch call* as the recorded value (the "µs"
  // unit reads as a record count — the wal.group_commit_batch convention).
  batch_size_hist_ = registry->GetLatency(prefix + "ingest.batch_size");
  index_->SetMetrics(registry, prefix + "index.");
  group_tracker_->SetMetrics(registry, prefix + "group.");
}

void ModDatabase::AttachDeltaConsumer(DeltaConsumer* consumer) {
  if (consumer == nullptr) return;
  if (std::find(consumers_.begin(), consumers_.end(), consumer) !=
      consumers_.end()) {
    return;
  }
  consumers_.push_back(consumer);
}

void ModDatabase::DetachDeltaConsumer(DeltaConsumer* consumer) {
  consumers_.erase(
      std::remove(consumers_.begin(), consumers_.end(), consumer),
      consumers_.end());
}

void ModDatabase::AttachSubscriptions(SubscriptionEngine* engine) {
  if (subscriptions_ != nullptr) DetachDeltaConsumer(subscriptions_);
  subscriptions_ = engine;
  AttachDeltaConsumer(engine);
}

void ModDatabase::AttachResultCache(RangeQueryCache* cache) {
  if (result_cache_ != nullptr) DetachDeltaConsumer(result_cache_);
  result_cache_ = cache;
  AttachDeltaConsumer(cache);
}

void ModDatabase::NotifyDeltas(std::span<const AttributeDelta> deltas) {
  if (deltas.empty()) return;
  for (DeltaConsumer* consumer : consumers_) {
    consumer->OnDeltaBatch(deltas);
  }
}

RangeAnswer ModDatabase::QueryRangeCached(const geo::Polygon& region,
                                          core::Time t) const {
  if (result_cache_ == nullptr) return QueryRange(region, t);
  return result_cache_->GetOrCompute(
      region, t, [&] { return QueryRange(region, t); });
}

util::Status ModDatabase::ValidateAttribute(
    const core::PositionAttribute& attr) const {
  const auto route = network_->FindRoute(attr.route);
  if (!route.ok()) return route.status();
  if (attr.speed < 0.0) {
    return util::Status::InvalidArgument("negative speed");
  }
  if (attr.start_route_distance < 0.0 ||
      attr.start_route_distance > (*route)->Length()) {
    return util::Status::InvalidArgument("start position off the route");
  }
  return util::Status::Ok();
}

util::Status ModDatabase::Insert(core::ObjectId id, std::string label,
                                 const core::PositionAttribute& attr) {
  // Stage 1: validate — no side effects before this point succeeds.
  if (records_.contains(id)) {
    return util::Status::AlreadyExists("object " + std::to_string(id));
  }
  if (util::Status s = ValidateAttribute(attr); !s.ok()) return s;
  // Stage 2: log.
  if (wal_ != nullptr) {
    if (util::Status s = wal_->AppendInsert(id, label, attr); !s.ok()) {
      if (wal_fails_ != nullptr) wal_fails_->Increment();
      return s;
    }
  }
  // Stage 3: mutate.
  MovingObjectRecord record;
  record.id = id;
  record.label = std::move(label);
  record.attr = attr;
  record.insert_time = attr.start_time;
  records_.emplace(id, std::move(record));
  // Stage 4: index-delta.
  if (!bulk_ingest_) {
    if (util::Status s = index_->Upsert(id, attr); !s.ok()) {
      // Unreachable after ValidateAttribute (the route exists), but the
      // index reports maintenance failures as errors now — roll the record
      // back so memory stays consistent and propagate.
      records_.erase(id);
      return s;
    }
  }
  group_tracker_->ObserveInsert(id, attr);
  if (!bulk_ingest_ && !consumers_.empty()) {
    const AttributeDelta delta{0, id, nullptr, &attr};
    NotifyDeltas({&delta, 1});
  }
  if (inserts_ != nullptr) inserts_->Increment();
  return util::Status::Ok();
}

util::Status ModDatabase::BeginBulkIngest() {
  if (wal_ != nullptr) {
    return util::Status::FailedPrecondition(
        "bulk ingest with a WAL attached");
  }
  if (bulk_ingest_) {
    return util::Status::FailedPrecondition("bulk ingest already active");
  }
  bulk_ingest_ = true;
  return util::Status::Ok();
}

util::Status ModDatabase::FinishBulkIngest() {
  if (!bulk_ingest_) {
    return util::Status::FailedPrecondition("no bulk ingest active");
  }
  bulk_ingest_ = false;
  // Destroy the old index *before* constructing the new one: with
  // disk-backed index storage both would otherwise hold the same page
  // file at once, and the old instance's buffered writer could clobber
  // the fresh generation the new instance opens. (Bulk ingest runs during
  // recovery, before any reader can hold a `SharedIndex` handle, so the
  // reset here really does destroy the old instance; the mutex only keeps
  // the pointer swap itself atomic for `SharedIndex`.)
  {
    std::lock_guard lock(index_mu_);
    index_.reset();
    index_ = MakeIndex(network_, options_);
  }
  if (metrics_registry_ != nullptr) {
    index_->SetMetrics(metrics_registry_, metrics_prefix_ + "index.");
  }
  std::vector<std::pair<core::ObjectId, core::PositionAttribute>> for_index;
  for_index.reserve(records_.size());
  for (const auto& [id, record] : records_) {
    for_index.emplace_back(id, record.attr);
  }
  if (util::Status s = index_->BulkUpsert(for_index); !s.ok()) return s;
  if (group_tracker_->enabled()) {
    // Evict members a torn WAL tail left outside their group's cohesion
    // tube (a clean replay is a no-op), then re-collapse the surviving
    // groups: the bulk rebuild above indexed every member individually,
    // so convert members back to hidden rows and re-install envelopes.
    group_tracker_->Revalidate();
    GroupTracker::Plan plan;
    group_tracker_->AppendCollapseRows(&plan);
    if (!plan.rows.empty()) {
      std::vector<index::IndexDelta> deltas;
      deltas.reserve(plan.rows.size());
      for (const GroupTracker::IndexRow& row : plan.rows) {
        deltas.push_back(
            index::IndexDelta{row.id, row.attr, row.boxes, row.hidden});
      }
      if (util::Status s = index_->ApplyDeltaBatch(deltas); !s.ok()) return s;
    }
  }
  return util::Status::Ok();
}

util::Status ModDatabase::BulkInsert(std::vector<BulkObject> objects) {
  // Validate everything up front so failure leaves the database unchanged.
  std::unordered_map<core::ObjectId, bool> batch_ids;
  for (const BulkObject& object : objects) {
    if (records_.contains(object.id) || batch_ids.contains(object.id)) {
      return util::Status::AlreadyExists("object " +
                                         std::to_string(object.id));
    }
    batch_ids.emplace(object.id, true);
    if (util::Status s = ValidateAttribute(object.attr); !s.ok()) return s;
  }
  if (wal_ != nullptr) {
    // One batched record for the whole call instead of a frame per row:
    // same kUpdateBatch framing the update path uses, so a bulk load of N
    // objects costs one CRC frame and one group-commit trigger check, not
    // N. Replay is prefix-exact: a torn batch frame drops the whole call,
    // never half of it (modulo the documented chunk split near the frame
    // sanity bound).
    std::vector<WalRecord> to_log;
    to_log.reserve(objects.size());
    for (const BulkObject& object : objects) {
      WalRecord record;
      record.type = WalRecordType::kInsert;
      record.id = object.id;
      record.label = object.label;
      record.attr = object.attr;
      to_log.push_back(std::move(record));
    }
    if (util::Status s = wal_->AppendBatch(to_log); !s.ok()) {
      if (wal_fails_ != nullptr) wal_fails_->Increment();
      return s;
    }
  }
  std::vector<std::pair<core::ObjectId, core::PositionAttribute>> for_index;
  for_index.reserve(objects.size());
  for (BulkObject& object : objects) {
    MovingObjectRecord record;
    record.id = object.id;
    record.label = std::move(object.label);
    record.attr = object.attr;
    record.insert_time = object.attr.start_time;
    for_index.emplace_back(object.id, object.attr);
    records_.emplace(object.id, std::move(record));
  }
  if (!bulk_ingest_) {
    if (util::Status s = index_->BulkUpsert(for_index); !s.ok()) {
      // Unreachable after up-front validation; keep the "unchanged on
      // failure" contract by rolling the batch's records back.
      for (const auto& [id, attr] : for_index) records_.erase(id);
      return s;
    }
  }
  for (const auto& [id, attr] : for_index) {
    group_tracker_->ObserveInsert(id, attr);
  }
  if (!bulk_ingest_ && !consumers_.empty()) {
    // One insert transition per row, in input order (`for_index` was
    // built in input order).
    std::vector<AttributeDelta> stream;
    stream.reserve(for_index.size());
    for (std::size_t i = 0; i < for_index.size(); ++i) {
      stream.push_back(
          AttributeDelta{i, for_index[i].first, nullptr, &for_index[i].second});
    }
    NotifyDeltas(stream);
  }
  if (inserts_ != nullptr) inserts_->Increment(for_index.size());
  return util::Status::Ok();
}

util::Status ModDatabase::ApplyUpdate(const core::PositionUpdate& update) {
  // One staged write path: a single update is a batch of one.
  return ApplyUpdateBatch({&update, 1}).first_error();
}

UpdateBatchResult ModDatabase::ApplyUpdateBatch(
    std::span<const core::PositionUpdate> updates) {
  UpdateBatchResult result;
  result.statuses.assign(updates.size(), util::Status::Ok());
  if (updates.empty()) return result;
  util::ScopedLatencyTimer timer(apply_latency_);
  if (batch_size_hist_ != nullptr) {
    // Records per call (the "µs" unit reads as a count, see SetMetrics).
    batch_size_hist_->RecordNanos(updates.size() * 1000);
  }

  // --- Stage 1: validate (no side effects). Each record is checked
  // against the batch-local evolving state — a second update to the same
  // object validates against the first one's merged result, not the stale
  // store — so acceptance matches the sequential path exactly.
  std::vector<core::PositionAttribute> merged(updates.size());
  std::vector<bool> accepted(updates.size(), false);
  // Object -> index into `merged` of its last accepted update; doubles as
  // the per-object registry behind the stage-4 dedup.
  std::unordered_map<core::ObjectId, std::size_t> last_accepted;
  std::size_t num_accepted = 0;
  std::size_t first_accepted = 0;
  for (std::size_t i = 0; i < updates.size(); ++i) {
    const core::PositionUpdate& update = updates[i];
    const core::PositionAttribute* base = nullptr;
    if (const auto pending = last_accepted.find(update.object);
        pending != last_accepted.end()) {
      base = &merged[pending->second];
    } else if (const auto it = records_.find(update.object);
               it != records_.end()) {
      base = &it->second.attr;
    }
    if (base == nullptr) {
      result.statuses[i] =
          util::Status::NotFound("object " + std::to_string(update.object));
      continue;
    }
    if (update.time < base->start_time) {
      result.statuses[i] =
          util::Status::InvalidArgument("update time regresses");
      continue;
    }
    core::PositionAttribute attr = *base;  // keep policy parameters
    attr.start_time = update.time;
    attr.route = update.route;
    attr.start_route_distance = update.route_distance;
    attr.start_position = update.position;
    attr.direction = update.direction;
    attr.speed = update.speed;
    if (util::Status s = ValidateAttribute(attr); !s.ok()) {
      result.statuses[i] = std::move(s);
      continue;
    }
    merged[i] = attr;
    accepted[i] = true;
    if (num_accepted == 0) first_accepted = i;
    ++num_accepted;
    last_accepted[update.object] = i;
  }
  result.rejected = updates.size() - num_accepted;
  if (result.rejected > 0 && validate_rejects_ != nullptr) {
    validate_rejects_->Increment(result.rejected);
  }
  if (num_accepted == 0) return result;

  // --- Stage 1b: group plan. Fold every accepted record — in input order,
  // so membership evolves exactly as sequential ingest would — into the
  // group tracker. Planning mutates tracker state directly and journals
  // the pre-image; a WAL or index failure below rolls it back. During
  // replay (`bulk_ingest_`) only the attribute mirror is kept in sync:
  // the logged transitions are applied verbatim by the recovery driver.
  GroupTracker::Plan gplan;
  const bool tracking = group_tracker_->enabled();
  if (tracking) {
    for (std::size_t i = 0; i < updates.size(); ++i) {
      if (!accepted[i]) continue;
      if (bulk_ingest_) {
        group_tracker_->ObserveAttrOnly(updates[i].object, merged[i]);
      } else {
        group_tracker_->PlanUpdate(updates[i].object, merged[i], &gplan);
      }
    }
  }

  // --- Stage 2: log. One framed kUpdateBatch record holds every accepted
  // update (a batch of one logs the historical plain kUpdate framing). A
  // failed append fails all accepted records before any memory effect; the
  // writer poisons itself, so the log cannot trail the store.
  if (wal_ != nullptr) {
    util::Status logged;
    if (tracking) {
      // With group tracking on, every accepted batch (batches of one
      // included) logs the compact kGroupBatch framing: member rows elide
      // the fields the route geometry implies, and the batch's membership
      // transitions ride in the same frame so replay restores groups in
      // lockstep with the updates.
      std::vector<core::PositionUpdate> to_log;
      to_log.reserve(num_accepted);
      for (std::size_t i = 0; i < updates.size(); ++i) {
        if (accepted[i]) to_log.push_back(updates[i]);
      }
      logged = wal_->AppendGroupBatch(to_log, gplan.transitions, *network_);
    } else if (num_accepted == 1) {
      logged = wal_->AppendUpdate(updates[first_accepted]);
    } else {
      std::vector<core::PositionUpdate> to_log;
      to_log.reserve(num_accepted);
      for (std::size_t i = 0; i < updates.size(); ++i) {
        if (accepted[i]) to_log.push_back(updates[i]);
      }
      logged = wal_->AppendUpdateBatch(to_log);
    }
    if (!logged.ok()) {
      if (wal_fails_ != nullptr) wal_fails_->Increment();
      group_tracker_->Rollback(gplan);
      for (std::size_t i = 0; i < updates.size(); ++i) {
        if (accepted[i]) result.statuses[i] = logged;
      }
      return result;
    }
  }

  // --- Stage 3: mutate. Commit the fleet map in batch order; every
  // superseded version lands in the trajectory history exactly as the
  // sequential path would. Each touched object's pre-batch state is saved
  // so the index-delta stage can roll the whole batch back — unreachable
  // with the in-tree indexes (stage 1 validated every row and they
  // validate again before touching a tree), but a handled error, not a
  // torn store.
  struct Saved {
    core::ObjectId id = core::kInvalidObjectId;
    core::PositionAttribute attr;
    std::uint64_t update_count = 0;
    std::size_t past_size = 0;
    // Trajectory entries the version cap evicted during this batch, oldest
    // first (empty in the common path; needed to restore exactly).
    std::vector<core::PositionAttribute> evicted;
  };
  std::vector<Saved> saved;
  saved.reserve(last_accepted.size());
  std::unordered_map<core::ObjectId, std::size_t> saved_of;
  for (std::size_t i = 0; i < updates.size(); ++i) {
    if (!accepted[i]) continue;
    MovingObjectRecord& record = records_.find(updates[i].object)->second;
    const auto [sit, first_touch] =
        saved_of.try_emplace(updates[i].object, saved.size());
    if (first_touch) {
      Saved sv;
      sv.id = updates[i].object;
      sv.attr = record.attr;
      sv.update_count = record.update_count;
      sv.past_size = record.past.size();
      saved.push_back(std::move(sv));
    }
    if (options_.keep_trajectory) {
      record.past.push_back(record.attr);
      const std::size_t cap = options_.max_trajectory_versions;
      if (cap > 0 && record.past.size() > cap) {
        const auto cut =
            record.past.end() - static_cast<std::ptrdiff_t>(cap);
        Saved& sv = saved[sit->second];
        sv.evicted.insert(sv.evicted.end(), record.past.begin(), cut);
        record.past.erase(record.past.begin(), cut);
      }
    }
    record.attr = merged[i];
    ++record.update_count;
  }

  // --- Stage 4: index-delta. One ApplyDeltaBatch call with each touched
  // object's *final* merged attribute, in first-touch order (deterministic
  // input; intermediate models would be dead work — the index only ever
  // serves the current one, and queries refine candidates exactly).
  std::size_t hidden_rows = 0;
  if (!bulk_ingest_) {
    std::vector<index::IndexDelta> deltas;
    deltas.reserve(gplan.rows.size() + saved.size());
    // Structural group rows first (envelope upserts, passive-peer hidden
    // installs, re-materialisations): rows apply in order and later wins,
    // so the batch's own rows below — which carry each object's *final*
    // merged attribute and final membership — override any structural row
    // planned mid-batch from a since-superseded attribute. Only objects
    // without a batch row (passive peers) and the synthetic envelope ids
    // are decided by the structural rows.
    for (const GroupTracker::IndexRow& row : gplan.rows) {
      deltas.push_back(
          index::IndexDelta{row.id, row.attr, row.boxes, row.hidden});
    }
    for (const Saved& sv : saved) {
      index::IndexDelta delta{
          sv.id, &merged[last_accepted.find(sv.id)->second]};
      if (tracking && group_tracker_->IsGrouped(sv.id)) {
        // Grouped members keep their per-object index state evolving but
        // touch no tree nodes — the group envelope covers them.
        delta.hidden = true;
        ++hidden_rows;
      }
      deltas.push_back(delta);
    }
    if (util::Status s = index_->ApplyDeltaBatch(deltas); !s.ok()) {
      // Restore every touched record. The concatenation evicted+past is
      // the full uncapped history in order, so its first past_size entries
      // are exactly the pre-batch trajectory.
      for (Saved& sv : saved) {
        MovingObjectRecord& record = records_.find(sv.id)->second;
        record.attr = std::move(sv.attr);
        record.update_count = sv.update_count;
        if (record.past.size() != sv.past_size || !sv.evicted.empty()) {
          std::vector<core::PositionAttribute> past = std::move(sv.evicted);
          past.insert(past.end(),
                      std::make_move_iterator(record.past.begin()),
                      std::make_move_iterator(record.past.end()));
          past.resize(sv.past_size);
          record.past = std::move(past);
        }
      }
      group_tracker_->Rollback(gplan);
      for (std::size_t i = 0; i < updates.size(); ++i) {
        if (accepted[i]) result.statuses[i] = s;
      }
      return result;
    }
  }

  // Success bookkeeping, deferred to here so the rollback above never has
  // to unwind it.
  if (tracking) {
    group_tracker_->NoteHiddenRows(hidden_rows);
    group_tracker_->Commit(gplan);
  }
  if (!bulk_ingest_ && !consumers_.empty()) {
    // Per-record transition stream, chained through the batch-local
    // intermediate attributes: record i's `before` is the previous
    // accepted merged attribute of the same object (or the saved
    // pre-batch attribute on first touch), NOT the stage-4 deduped final
    // — so a batch notifies exactly what sequential ingest would, and a
    // superseded mid-batch excursion through a region still reports its
    // enter/leave pair instead of a spurious or missing transition.
    std::vector<AttributeDelta> stream;
    stream.reserve(num_accepted);
    std::unordered_map<core::ObjectId, const core::PositionAttribute*> prev;
    for (std::size_t i = 0; i < updates.size(); ++i) {
      if (!accepted[i]) continue;
      const auto [pit, first_touch] =
          prev.try_emplace(updates[i].object, nullptr);
      const core::PositionAttribute* before =
          first_touch ? &saved[saved_of.find(updates[i].object)->second].attr
                      : pit->second;
      stream.push_back(AttributeDelta{i, updates[i].object, before, &merged[i]});
      pit->second = &merged[i];
    }
    NotifyDeltas(stream);
  }
  for (std::size_t i = 0; i < updates.size(); ++i) {
    if (accepted[i]) log_.Append(updates[i]);
  }
  if (updates_applied_ != nullptr) updates_applied_->Increment(num_accepted);
  result.applied = num_accepted;
  return result;
}

util::Status ModDatabase::RestoreTrajectory(
    core::ObjectId id, std::vector<core::PositionAttribute> past) {
  const auto it = records_.find(id);
  if (it == records_.end()) {
    return util::Status::NotFound("object " + std::to_string(id));
  }
  for (std::size_t i = 0; i < past.size(); ++i) {
    if (util::Status s = ValidateAttribute(past[i]); !s.ok()) return s;
    const core::Time next_start = i + 1 < past.size()
                                      ? past[i + 1].start_time
                                      : it->second.attr.start_time;
    if (past[i].start_time > next_start) {
      return util::Status::InvalidArgument("trajectory versions unordered");
    }
  }
  it->second.past = std::move(past);
  return util::Status::Ok();
}

util::Status ModDatabase::Erase(core::ObjectId id) {
  // Stage 1: validate.
  const auto it = records_.find(id);
  if (it == records_.end()) {
    return util::Status::NotFound("object " + std::to_string(id));
  }
  // Stage 2: log.
  if (wal_ != nullptr) {
    if (util::Status s = wal_->AppendErase(id); !s.ok()) {
      if (wal_fails_ != nullptr) wal_fails_->Increment();
      return s;
    }
  }
  // Stage 3: mutate; stage 4: index-delta. A member erase cascades through
  // the group tracker (deterministic leader re-election / dissolve — the
  // kErase record reproduces it on replay, so nothing extra is logged);
  // the cascade's structural rows ride one index batch with the removal.
  const core::PositionAttribute before = it->second.attr;
  GroupTracker::Plan gplan;
  group_tracker_->ObserveErase(id, &gplan);
  MovingObjectRecord saved = std::move(it->second);
  records_.erase(it);
  if (!bulk_ingest_) {
    if (gplan.rows.empty()) {
      index_->Remove(id);
    } else {
      std::vector<index::IndexDelta> deltas;
      deltas.reserve(gplan.rows.size() + 1);
      deltas.push_back(index::IndexDelta{id, nullptr});
      for (const GroupTracker::IndexRow& row : gplan.rows) {
        deltas.push_back(
            index::IndexDelta{row.id, row.attr, row.boxes, row.hidden});
      }
      if (util::Status s = index_->ApplyDeltaBatch(deltas); !s.ok()) {
        records_.emplace(id, std::move(saved));
        group_tracker_->Rollback(gplan);
        return s;
      }
    }
  }
  group_tracker_->Commit(gplan);
  if (!bulk_ingest_ && !consumers_.empty()) {
    const AttributeDelta delta{0, id, &before, nullptr};
    NotifyDeltas({&delta, 1});
  }
  if (erases_ != nullptr) erases_->Increment();
  return util::Status::Ok();
}

namespace {

// The attribute version that was valid at time `t`: the current one for
// t >= its start, else the newest past version starting at or before `t`
// (the oldest version for times before the object existed).
const core::PositionAttribute& AttributeValidAt(
    const MovingObjectRecord& record, core::Time t) {
  if (t >= record.attr.start_time || record.past.empty()) return record.attr;
  const auto it = std::upper_bound(
      record.past.begin(), record.past.end(), t,
      [](core::Time time, const core::PositionAttribute& attr) {
        return time < attr.start_time;
      });
  if (it == record.past.begin()) return record.past.front();
  return *(it - 1);
}

}  // namespace

util::Result<PositionAnswer> ModDatabase::QueryPosition(core::ObjectId id,
                                                        core::Time t) const {
  const auto it = records_.find(id);
  if (it == records_.end()) {
    return util::Status::NotFound("object " + std::to_string(id));
  }
  const core::PositionAttribute& attr = AttributeValidAt(it->second, t);
  const auto route = network_->FindRoute(attr.route);
  if (!route.ok()) return route.status();

  PositionAnswer answer;
  answer.id = id;
  answer.query_time = t;
  answer.route = attr.route;
  answer.route_distance =
      attr.ClampedDatabaseRouteDistanceAt(t, (*route)->Length());
  answer.position = (*route)->PointAt(answer.route_distance);
  const core::Duration elapsed = std::max(0.0, t - attr.start_time);
  answer.slow_bound = core::SlowDeviationBound(attr, elapsed);
  answer.fast_bound = core::FastDeviationBound(attr, elapsed);
  answer.deviation_bound = core::DeviationBound(attr, elapsed);
  answer.uncertainty = core::ComputeUncertainty(attr, **route, t);
  return answer;
}

RangeAnswer ModDatabase::QueryRange(const geo::Polygon& region,
                                    core::Time t) const {
  const std::vector<core::ObjectId> candidates =
      index_->Candidates(region, t);
  CountIndexProbe();
  return RefineRange(region, t, candidates);
}

RangeAnswer ModDatabase::RefineRange(
    const geo::Polygon& region, core::Time t,
    const std::vector<core::ObjectId>& candidates) const {
  RangeAnswer answer;
  answer.query_time = t;
  // Envelope candidates expand into the exact member candidacies first, so
  // `candidates_examined` counts the refinement work actually done —
  // identical to the group-tracking-off configuration.
  const std::vector<core::ObjectId>* cand = &candidates;
  std::vector<core::ObjectId> expanded;
  if (group_tracker_->has_groups()) {
    expanded = candidates;
    group_tracker_->ExpandCandidates(&expanded, region, t, t, *index_);
    cand = &expanded;
  }
  answer.candidates_examined = cand->size();
  for (core::ObjectId id : *cand) {
    const auto it = records_.find(id);
    if (it == records_.end()) continue;  // stale index entry
    const core::PositionAttribute& attr = it->second.attr;
    const auto route = network_->FindRoute(attr.route);
    if (!route.ok()) continue;
    const core::UncertaintyInterval iv =
        core::ComputeUncertainty(attr, **route, t);
    switch (core::ClassifyAgainstPolygon(iv, **route, region)) {
      case core::RegionRelation::kMustBeIn:
        answer.must.push_back(id);
        break;
      case core::RegionRelation::kMayBeIn:
        answer.may.push_back(id);
        answer.may_probability.push_back(
            core::ProbabilityInPolygon(iv, **route, region));
        break;
      case core::RegionRelation::kOutside:
        break;
    }
  }
  std::sort(answer.must.begin(), answer.must.end());
  // Sort `may` keeping its probability column aligned.
  std::vector<std::size_t> order(answer.may.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return answer.may[a] < answer.may[b];
  });
  std::vector<core::ObjectId> sorted_may;
  std::vector<double> sorted_prob;
  sorted_may.reserve(order.size());
  sorted_prob.reserve(order.size());
  for (std::size_t i : order) {
    sorted_may.push_back(answer.may[i]);
    sorted_prob.push_back(answer.may_probability[i]);
  }
  answer.may = std::move(sorted_may);
  answer.may_probability = std::move(sorted_prob);
  return answer;
}

NearestAnswer ModDatabase::QueryNearest(const geo::Point2& point,
                                        std::size_t k, core::Time t) const {
  NearestAnswer answer;
  QueryNearestSplit(
      point, k, t,
      [&](const geo::Polygon& probe) {
        CountIndexProbe();
        return index_->Candidates(probe, t);
      },
      [](const std::function<void()>& fn) {
        fn();
        return true;
      },
      &answer);
  return answer;
}

bool ModDatabase::QueryNearestSplit(
    const geo::Point2& point, std::size_t k, core::Time t,
    const std::function<std::vector<core::ObjectId>(const geo::Polygon&)>&
        probe,
    const std::function<bool(const std::function<void()>&)>& locked,
    NearestAnswer* out) const {
  NearestAnswer answer;
  answer.query_time = t;
  bool have_records = false;
  if (!locked([&] { have_records = !records_.empty(); })) return false;
  if (k == 0 || !have_records) {
    *out = std::move(answer);
    return true;
  }

  // Expanding probes: grow a square around the query point until it yields
  // at least k *surviving* candidates (or covers the whole network), then
  // widen once more to the k-th database-position distance so no closer
  // object on the fringe is missed. Survivors are counted after refinement
  // so that candidates dropped there (stale index entries, unknown routes)
  // cannot leave the answer short of k while closer objects sit outside
  // the probe. `candidates_examined` accumulates over every probe: it is
  // the total refinement work done, not the last probe's yield.
  const geo::Box2 world = network_->BoundingBox();
  const double world_span =
      std::max(world.Width(), world.Height()) + 1.0;
  double radius = std::max(world_span / 64.0, 1e-6);
  std::vector<core::ObjectId> candidates;

  auto build_items = [&](const std::vector<core::ObjectId>& ids) {
    std::vector<NearestAnswer::Item> items;
    items.reserve(ids.size());
    for (core::ObjectId id : ids) {
      const auto it = records_.find(id);
      if (it == records_.end()) continue;
      const core::PositionAttribute& attr = it->second.attr;
      const auto route = network_->FindRoute(attr.route);
      if (!route.ok()) continue;
      NearestAnswer::Item item;
      item.id = id;
      const double db_s =
          attr.ClampedDatabaseRouteDistanceAt(t, (*route)->Length());
      item.db_distance = geo::Distance(point, (*route)->PointAt(db_s));
      const core::UncertaintyInterval iv =
          core::ComputeUncertainty(attr, **route, t);
      item.min_possible_distance =
          (*route)->shape().SubDistanceFromPoint(point, iv.lo, iv.hi);
      item.max_possible_distance =
          (*route)->shape().SubMaxDistanceFromPoint(point, iv.lo, iv.hi);
      items.push_back(item);
    }
    std::sort(items.begin(), items.end(),
              [](const NearestAnswer::Item& a, const NearestAnswer::Item& b) {
                return a.db_distance < b.db_distance;
              });
    return items;
  };

  std::vector<NearestAnswer::Item> items;
  for (;;) {
    const geo::Polygon probe_region =
        geo::Polygon::CenteredRectangle(point, radius, radius);
    candidates = probe(probe_region);
    // Envelope expansion reads tracker + index state, so it runs inside
    // the same locked section as refinement; `candidates_examined` counts
    // post-expansion work, matching the group-tracking-off configuration.
    if (!locked([&] {
          ExpandGroupCandidates(&candidates, probe_region, t, t);
          answer.candidates_examined += candidates.size();
          items = build_items(candidates);
        })) {
      return false;
    }
    if (items.size() >= k || radius >= world_span) break;
    radius *= 2.0;
  }

  if (!items.empty() && radius < world_span) {
    const double kth =
        items[std::min(k, items.size()) - 1].db_distance;
    if (kth > radius) {
      const geo::Polygon wide =
          geo::Polygon::CenteredRectangle(point, kth, kth);
      candidates = probe(wide);
      if (!locked([&] {
            ExpandGroupCandidates(&candidates, wide, t, t);
            answer.candidates_examined += candidates.size();
            items = build_items(candidates);
          })) {
        return false;
      }
    }
  }
  if (items.size() > k) items.resize(k);
  answer.items = std::move(items);
  *out = std::move(answer);
  return true;
}

IntervalRangeAnswer ModDatabase::QueryRangeInterval(
    const geo::Polygon& region, core::Time t1, core::Time t2,
    core::Duration sample_step) const {
  if (t1 > t2) std::swap(t1, t2);
  const std::vector<core::ObjectId> candidates =
      index_->CandidatesInWindow(region, t1, t2);
  CountIndexProbe();
  return RefineRangeInterval(region, t1, t2, sample_step, candidates);
}

IntervalRangeAnswer ModDatabase::RefineRangeInterval(
    const geo::Polygon& region, core::Time t1, core::Time t2,
    core::Duration sample_step,
    const std::vector<core::ObjectId>& candidates) const {
  IntervalRangeAnswer answer;
  if (t1 > t2) std::swap(t1, t2);
  answer.window_start = t1;
  answer.window_end = t2;
  const std::vector<core::ObjectId>* cand = &candidates;
  std::vector<core::ObjectId> expanded;
  if (group_tracker_->has_groups()) {
    expanded = candidates;
    group_tracker_->ExpandCandidates(&expanded, region, t1, t2, *index_);
    cand = &expanded;
  }
  answer.candidates_examined = cand->size();

  for (core::ObjectId id : *cand) {
    const auto it = records_.find(id);
    if (it == records_.end()) continue;
    const core::PositionAttribute& attr = it->second.attr;
    const auto route = network_->FindRoute(attr.route);
    if (!route.ok()) continue;

    // Exact MAY: the interval endpoints move continuously, so the swept
    // span intersects the region iff the interval does at some instant.
    const core::UncertaintyInterval span =
        core::ComputeUncertaintySpan(attr, **route, t1, t2);
    if (!(*route)->shape().SubIntersectsPolygon(span.lo, span.hi, region)) {
      continue;
    }
    answer.may.push_back(id);

    // Sampled MUST-at-some-time. The last iteration clamps to t2 so both
    // window edges are always sampled (the header's contract), even when
    // `sample_step` overshoots the window.
    const double step =
        std::max(sample_step > 0.0 ? sample_step : t2 - t1, 1e-9);
    bool must = false;
    for (core::Time t = t1; !must; t += step) {
      const core::Time clamped = std::min(t, t2);
      const core::UncertaintyInterval iv =
          core::ComputeUncertainty(attr, **route, clamped);
      must = core::ClassifyAgainstPolygon(iv, **route, region) ==
             core::RegionRelation::kMustBeIn;
      if (clamped >= t2) break;
    }
    if (must) answer.must_at_some_time.push_back(id);
  }
  std::sort(answer.may.begin(), answer.may.end());
  std::sort(answer.must_at_some_time.begin(), answer.must_at_some_time.end());
  return answer;
}

void ModDatabase::ExpandGroupCandidates(std::vector<core::ObjectId>* ids,
                                        const geo::Polygon& region,
                                        core::Time t1, core::Time t2) const {
  if (!group_tracker_->has_groups()) return;
  group_tracker_->ExpandCandidates(ids, region, t1, t2, *index_);
}

void ModDatabase::ApplyGroupTransitions(
    const std::vector<GroupTransition>& transitions) {
  group_tracker_->ApplyTransitions(transitions);
}

void ModDatabase::RestoreGroups(const std::vector<PersistedGroup>& groups,
                                GroupId next_group_id) {
  group_tracker_->RestoreGroups(groups, next_group_id);
}

std::vector<PersistedGroup> ModDatabase::ExportGroups() const {
  return group_tracker_->ExportGroups();
}

util::Result<const MovingObjectRecord*> ModDatabase::Get(
    core::ObjectId id) const {
  const auto it = records_.find(id);
  if (it == records_.end()) {
    return util::Status::NotFound("object " + std::to_string(id));
  }
  return &it->second;
}

void ModDatabase::ForEachRecord(
    const std::function<void(const MovingObjectRecord&)>& fn) const {
  for (const auto& [id, record] : records_) fn(record);
}

}  // namespace modb::db
