#include "db/mod_database.h"

#include <algorithm>

#include "core/bounds.h"
#include "core/uncertainty.h"
#include "db/wal.h"
#include "index/linear_scan_index.h"
#include "index/timespace_index.h"
#include "index/velocity_partitioned_index.h"

namespace modb::db {

namespace {

std::unique_ptr<index::ObjectIndex> MakeIndex(
    const geo::RouteNetwork* network, const ModDatabaseOptions& options) {
  switch (options.index_kind) {
    case IndexKind::kTimeSpaceRTree: {
      index::TimeSpaceIndex::Options idx;
      idx.oplane.horizon = options.oplane_horizon;
      idx.oplane.slab_width = options.oplane_slab_width;
      return std::make_unique<index::TimeSpaceIndex>(network, idx);
    }
    case IndexKind::kLinearScan:
      return std::make_unique<index::LinearScanIndex>(network);
    case IndexKind::kVelocityPartitioned: {
      index::VelocityPartitionedIndex::Options idx;
      idx.oplane.horizon = options.oplane_horizon;
      idx.oplane.slab_width = options.oplane_slab_width;
      idx.num_bands = options.velocity_bands;
      idx.band_bounds = options.velocity_band_bounds;
      idx.min_slab_width = options.velocity_min_slab_width;
      idx.pool = options.index_pool;
      return std::make_unique<index::VelocityPartitionedIndex>(network, idx);
    }
  }
  return nullptr;
}

}  // namespace

ModDatabase::ModDatabase(const geo::RouteNetwork* network,
                         ModDatabaseOptions options)
    : network_(network),
      options_(options),
      index_(MakeIndex(network, options)),
      log_(options.max_log_history) {}

void ModDatabase::SetMetrics(util::MetricsRegistry* registry,
                             const std::string& prefix) {
  metrics_registry_ = registry;
  metrics_prefix_ = prefix;
  if (registry == nullptr) {
    updates_applied_ = nullptr;
    inserts_ = nullptr;
    erases_ = nullptr;
    index_probes_ = nullptr;
    index_->SetMetrics(nullptr, "");
    return;
  }
  updates_applied_ = registry->GetCounter(prefix + "updates_applied");
  inserts_ = registry->GetCounter(prefix + "inserts");
  erases_ = registry->GetCounter(prefix + "erases");
  index_probes_ = registry->GetCounter(prefix + "index_probes");
  index_->SetMetrics(registry, prefix + "index.");
}

util::Status ModDatabase::ValidateAttribute(
    const core::PositionAttribute& attr) const {
  const auto route = network_->FindRoute(attr.route);
  if (!route.ok()) return route.status();
  if (attr.speed < 0.0) {
    return util::Status::InvalidArgument("negative speed");
  }
  if (attr.start_route_distance < 0.0 ||
      attr.start_route_distance > (*route)->Length()) {
    return util::Status::InvalidArgument("start position off the route");
  }
  return util::Status::Ok();
}

util::Status ModDatabase::Insert(core::ObjectId id, std::string label,
                                 const core::PositionAttribute& attr) {
  if (records_.contains(id)) {
    return util::Status::AlreadyExists("object " + std::to_string(id));
  }
  if (util::Status s = ValidateAttribute(attr); !s.ok()) return s;
  if (wal_ != nullptr) {
    if (util::Status s = wal_->AppendInsert(id, label, attr); !s.ok()) {
      return s;
    }
  }
  MovingObjectRecord record;
  record.id = id;
  record.label = std::move(label);
  record.attr = attr;
  record.insert_time = attr.start_time;
  records_.emplace(id, std::move(record));
  if (!bulk_ingest_) {
    if (util::Status s = index_->Upsert(id, attr); !s.ok()) {
      // Unreachable after ValidateAttribute (the route exists), but the
      // index reports maintenance failures as errors now — roll the record
      // back so memory stays consistent and propagate.
      records_.erase(id);
      return s;
    }
  }
  if (inserts_ != nullptr) inserts_->Increment();
  return util::Status::Ok();
}

util::Status ModDatabase::BeginBulkIngest() {
  if (wal_ != nullptr) {
    return util::Status::FailedPrecondition(
        "bulk ingest with a WAL attached");
  }
  if (bulk_ingest_) {
    return util::Status::FailedPrecondition("bulk ingest already active");
  }
  bulk_ingest_ = true;
  return util::Status::Ok();
}

util::Status ModDatabase::FinishBulkIngest() {
  if (!bulk_ingest_) {
    return util::Status::FailedPrecondition("no bulk ingest active");
  }
  bulk_ingest_ = false;
  index_ = MakeIndex(network_, options_);
  if (metrics_registry_ != nullptr) {
    index_->SetMetrics(metrics_registry_, metrics_prefix_ + "index.");
  }
  std::vector<std::pair<core::ObjectId, core::PositionAttribute>> for_index;
  for_index.reserve(records_.size());
  for (const auto& [id, record] : records_) {
    for_index.emplace_back(id, record.attr);
  }
  return index_->BulkUpsert(for_index);
}

util::Status ModDatabase::BulkInsert(std::vector<BulkObject> objects) {
  // Validate everything up front so failure leaves the database unchanged.
  std::unordered_map<core::ObjectId, bool> batch_ids;
  for (const BulkObject& object : objects) {
    if (records_.contains(object.id) || batch_ids.contains(object.id)) {
      return util::Status::AlreadyExists("object " +
                                         std::to_string(object.id));
    }
    batch_ids.emplace(object.id, true);
    if (util::Status s = ValidateAttribute(object.attr); !s.ok()) return s;
  }
  if (wal_ != nullptr) {
    for (const BulkObject& object : objects) {
      if (util::Status s =
              wal_->AppendInsert(object.id, object.label, object.attr);
          !s.ok()) {
        return s;
      }
    }
  }
  std::vector<std::pair<core::ObjectId, core::PositionAttribute>> for_index;
  for_index.reserve(objects.size());
  for (BulkObject& object : objects) {
    MovingObjectRecord record;
    record.id = object.id;
    record.label = std::move(object.label);
    record.attr = object.attr;
    record.insert_time = object.attr.start_time;
    for_index.emplace_back(object.id, object.attr);
    records_.emplace(object.id, std::move(record));
  }
  if (!bulk_ingest_) {
    if (util::Status s = index_->BulkUpsert(for_index); !s.ok()) {
      // Unreachable after up-front validation; keep the "unchanged on
      // failure" contract by rolling the batch's records back.
      for (const auto& [id, attr] : for_index) records_.erase(id);
      return s;
    }
  }
  if (inserts_ != nullptr) inserts_->Increment(for_index.size());
  return util::Status::Ok();
}

util::Status ModDatabase::ApplyUpdate(const core::PositionUpdate& update) {
  const auto it = records_.find(update.object);
  if (it == records_.end()) {
    return util::Status::NotFound("object " + std::to_string(update.object));
  }
  MovingObjectRecord& record = it->second;
  if (update.time < record.attr.start_time) {
    return util::Status::InvalidArgument("update time regresses");
  }
  core::PositionAttribute attr = record.attr;  // keep policy parameters
  attr.start_time = update.time;
  attr.route = update.route;
  attr.start_route_distance = update.route_distance;
  attr.start_position = update.position;
  attr.direction = update.direction;
  attr.speed = update.speed;
  if (util::Status s = ValidateAttribute(attr); !s.ok()) return s;
  if (wal_ != nullptr) {
    if (util::Status s = wal_->AppendUpdate(update); !s.ok()) return s;
  }
  // Index before record: an index maintenance failure (unreachable after
  // validation, but a handled error now rather than release-build UB)
  // aborts the update with the record untouched.
  if (!bulk_ingest_) {
    if (util::Status s = index_->Upsert(update.object, attr); !s.ok()) {
      return s;
    }
  }
  if (options_.keep_trajectory) {
    record.past.push_back(record.attr);
    const std::size_t cap = options_.max_trajectory_versions;
    if (cap > 0 && record.past.size() > cap) {
      record.past.erase(record.past.begin(),
                        record.past.end() - static_cast<std::ptrdiff_t>(cap));
    }
  }
  record.attr = attr;
  ++record.update_count;
  log_.Append(update);
  if (updates_applied_ != nullptr) updates_applied_->Increment();
  return util::Status::Ok();
}

util::Status ModDatabase::RestoreTrajectory(
    core::ObjectId id, std::vector<core::PositionAttribute> past) {
  const auto it = records_.find(id);
  if (it == records_.end()) {
    return util::Status::NotFound("object " + std::to_string(id));
  }
  for (std::size_t i = 0; i < past.size(); ++i) {
    if (util::Status s = ValidateAttribute(past[i]); !s.ok()) return s;
    const core::Time next_start = i + 1 < past.size()
                                      ? past[i + 1].start_time
                                      : it->second.attr.start_time;
    if (past[i].start_time > next_start) {
      return util::Status::InvalidArgument("trajectory versions unordered");
    }
  }
  it->second.past = std::move(past);
  return util::Status::Ok();
}

util::Status ModDatabase::Erase(core::ObjectId id) {
  const auto it = records_.find(id);
  if (it == records_.end()) {
    return util::Status::NotFound("object " + std::to_string(id));
  }
  if (wal_ != nullptr) {
    if (util::Status s = wal_->AppendErase(id); !s.ok()) return s;
  }
  records_.erase(it);
  if (!bulk_ingest_) index_->Remove(id);
  if (erases_ != nullptr) erases_->Increment();
  return util::Status::Ok();
}

namespace {

// The attribute version that was valid at time `t`: the current one for
// t >= its start, else the newest past version starting at or before `t`
// (the oldest version for times before the object existed).
const core::PositionAttribute& AttributeValidAt(
    const MovingObjectRecord& record, core::Time t) {
  if (t >= record.attr.start_time || record.past.empty()) return record.attr;
  const auto it = std::upper_bound(
      record.past.begin(), record.past.end(), t,
      [](core::Time time, const core::PositionAttribute& attr) {
        return time < attr.start_time;
      });
  if (it == record.past.begin()) return record.past.front();
  return *(it - 1);
}

}  // namespace

util::Result<PositionAnswer> ModDatabase::QueryPosition(core::ObjectId id,
                                                        core::Time t) const {
  const auto it = records_.find(id);
  if (it == records_.end()) {
    return util::Status::NotFound("object " + std::to_string(id));
  }
  const core::PositionAttribute& attr = AttributeValidAt(it->second, t);
  const auto route = network_->FindRoute(attr.route);
  if (!route.ok()) return route.status();

  PositionAnswer answer;
  answer.id = id;
  answer.query_time = t;
  answer.route = attr.route;
  answer.route_distance =
      attr.ClampedDatabaseRouteDistanceAt(t, (*route)->Length());
  answer.position = (*route)->PointAt(answer.route_distance);
  const core::Duration elapsed = std::max(0.0, t - attr.start_time);
  answer.slow_bound = core::SlowDeviationBound(attr, elapsed);
  answer.fast_bound = core::FastDeviationBound(attr, elapsed);
  answer.deviation_bound = core::DeviationBound(attr, elapsed);
  answer.uncertainty = core::ComputeUncertainty(attr, **route, t);
  return answer;
}

RangeAnswer ModDatabase::QueryRange(const geo::Polygon& region,
                                    core::Time t) const {
  RangeAnswer answer;
  answer.query_time = t;
  const std::vector<core::ObjectId> candidates =
      index_->Candidates(region, t);
  CountIndexProbe();
  answer.candidates_examined = candidates.size();
  for (core::ObjectId id : candidates) {
    const auto it = records_.find(id);
    if (it == records_.end()) continue;  // stale index entry
    const core::PositionAttribute& attr = it->second.attr;
    const auto route = network_->FindRoute(attr.route);
    if (!route.ok()) continue;
    const core::UncertaintyInterval iv =
        core::ComputeUncertainty(attr, **route, t);
    switch (core::ClassifyAgainstPolygon(iv, **route, region)) {
      case core::RegionRelation::kMustBeIn:
        answer.must.push_back(id);
        break;
      case core::RegionRelation::kMayBeIn:
        answer.may.push_back(id);
        answer.may_probability.push_back(
            core::ProbabilityInPolygon(iv, **route, region));
        break;
      case core::RegionRelation::kOutside:
        break;
    }
  }
  std::sort(answer.must.begin(), answer.must.end());
  // Sort `may` keeping its probability column aligned.
  std::vector<std::size_t> order(answer.may.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return answer.may[a] < answer.may[b];
  });
  std::vector<core::ObjectId> sorted_may;
  std::vector<double> sorted_prob;
  sorted_may.reserve(order.size());
  sorted_prob.reserve(order.size());
  for (std::size_t i : order) {
    sorted_may.push_back(answer.may[i]);
    sorted_prob.push_back(answer.may_probability[i]);
  }
  answer.may = std::move(sorted_may);
  answer.may_probability = std::move(sorted_prob);
  return answer;
}

NearestAnswer ModDatabase::QueryNearest(const geo::Point2& point,
                                        std::size_t k, core::Time t) const {
  NearestAnswer answer;
  answer.query_time = t;
  if (k == 0 || records_.empty()) return answer;

  // Expanding probes: grow a square around the query point until it yields
  // at least k *surviving* candidates (or covers the whole network), then
  // widen once more to the k-th database-position distance so no closer
  // object on the fringe is missed. Survivors are counted after refinement
  // so that candidates dropped there (stale index entries, unknown routes)
  // cannot leave the answer short of k while closer objects sit outside
  // the probe. `candidates_examined` accumulates over every probe: it is
  // the total refinement work done, not the last probe's yield.
  const geo::Box2 world = network_->BoundingBox();
  const double world_span =
      std::max(world.Width(), world.Height()) + 1.0;
  double radius = std::max(world_span / 64.0, 1e-6);
  std::vector<core::ObjectId> candidates;

  auto build_items = [&](const std::vector<core::ObjectId>& ids) {
    std::vector<NearestAnswer::Item> items;
    items.reserve(ids.size());
    for (core::ObjectId id : ids) {
      const auto it = records_.find(id);
      if (it == records_.end()) continue;
      const core::PositionAttribute& attr = it->second.attr;
      const auto route = network_->FindRoute(attr.route);
      if (!route.ok()) continue;
      NearestAnswer::Item item;
      item.id = id;
      const double db_s =
          attr.ClampedDatabaseRouteDistanceAt(t, (*route)->Length());
      item.db_distance = geo::Distance(point, (*route)->PointAt(db_s));
      const core::UncertaintyInterval iv =
          core::ComputeUncertainty(attr, **route, t);
      item.min_possible_distance =
          (*route)->shape().SubDistanceFromPoint(point, iv.lo, iv.hi);
      item.max_possible_distance =
          (*route)->shape().SubMaxDistanceFromPoint(point, iv.lo, iv.hi);
      items.push_back(item);
    }
    std::sort(items.begin(), items.end(),
              [](const NearestAnswer::Item& a, const NearestAnswer::Item& b) {
                return a.db_distance < b.db_distance;
              });
    return items;
  };

  std::vector<NearestAnswer::Item> items;
  for (;;) {
    const geo::Polygon probe =
        geo::Polygon::CenteredRectangle(point, radius, radius);
    candidates = index_->Candidates(probe, t);
    CountIndexProbe();
    answer.candidates_examined += candidates.size();
    items = build_items(candidates);
    if (items.size() >= k || radius >= world_span) break;
    radius *= 2.0;
  }

  if (!items.empty() && radius < world_span) {
    const double kth =
        items[std::min(k, items.size()) - 1].db_distance;
    if (kth > radius) {
      const geo::Polygon wide =
          geo::Polygon::CenteredRectangle(point, kth, kth);
      candidates = index_->Candidates(wide, t);
      CountIndexProbe();
      answer.candidates_examined += candidates.size();
      items = build_items(candidates);
    }
  }
  if (items.size() > k) items.resize(k);
  answer.items = std::move(items);
  return answer;
}

IntervalRangeAnswer ModDatabase::QueryRangeInterval(
    const geo::Polygon& region, core::Time t1, core::Time t2,
    core::Duration sample_step) const {
  IntervalRangeAnswer answer;
  if (t1 > t2) std::swap(t1, t2);
  answer.window_start = t1;
  answer.window_end = t2;
  const std::vector<core::ObjectId> candidates =
      index_->CandidatesInWindow(region, t1, t2);
  CountIndexProbe();
  answer.candidates_examined = candidates.size();

  for (core::ObjectId id : candidates) {
    const auto it = records_.find(id);
    if (it == records_.end()) continue;
    const core::PositionAttribute& attr = it->second.attr;
    const auto route = network_->FindRoute(attr.route);
    if (!route.ok()) continue;

    // Exact MAY: the interval endpoints move continuously, so the swept
    // span intersects the region iff the interval does at some instant.
    const core::UncertaintyInterval span =
        core::ComputeUncertaintySpan(attr, **route, t1, t2);
    if (!(*route)->shape().SubIntersectsPolygon(span.lo, span.hi, region)) {
      continue;
    }
    answer.may.push_back(id);

    // Sampled MUST-at-some-time. The last iteration clamps to t2 so both
    // window edges are always sampled (the header's contract), even when
    // `sample_step` overshoots the window.
    const double step =
        std::max(sample_step > 0.0 ? sample_step : t2 - t1, 1e-9);
    bool must = false;
    for (core::Time t = t1; !must; t += step) {
      const core::Time clamped = std::min(t, t2);
      const core::UncertaintyInterval iv =
          core::ComputeUncertainty(attr, **route, clamped);
      must = core::ClassifyAgainstPolygon(iv, **route, region) ==
             core::RegionRelation::kMustBeIn;
      if (clamped >= t2) break;
    }
    if (must) answer.must_at_some_time.push_back(id);
  }
  std::sort(answer.may.begin(), answer.may.end());
  std::sort(answer.must_at_some_time.begin(), answer.must_at_some_time.end());
  return answer;
}

util::Result<const MovingObjectRecord*> ModDatabase::Get(
    core::ObjectId id) const {
  const auto it = records_.find(id);
  if (it == records_.end()) {
    return util::Status::NotFound("object " + std::to_string(id));
  }
  return &it->second;
}

void ModDatabase::ForEachRecord(
    const std::function<void(const MovingObjectRecord&)>& fn) const {
  for (const auto& [id, record] : records_) fn(record);
}

}  // namespace modb::db
