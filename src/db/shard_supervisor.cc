#include "db/shard_supervisor.h"

#include <algorithm>
#include <cstdio>
#include <utility>

namespace modb::db {

namespace {

std::int64_t ElapsedMicros(std::chrono::steady_clock::time_point since,
                           std::chrono::steady_clock::time_point now) {
  return std::chrono::duration_cast<std::chrono::microseconds>(now - since)
      .count();
}

}  // namespace

std::string_view ShardHealthName(ShardHealth health) {
  switch (health) {
    case ShardHealth::kHealthy:
      return "healthy";
    case ShardHealth::kDegraded:
      return "degraded";
    case ShardHealth::kQuarantined:
      return "quarantined";
    case ShardHealth::kRecovering:
      return "recovering";
  }
  return "unknown";
}

ShardSupervisor::ShardSupervisor(std::size_t num_shards,
                                 ShardSupervisorOptions options,
                                 util::MetricsRegistry* metrics)
    : options_(options) {
  states_.reserve(num_shards);
  for (std::size_t i = 0; i < num_shards; ++i) {
    util::RetryPolicy::Options retry = options_.retry;
    retry.seed = options_.retry.seed + i;  // de-synchronise shard backoffs
    states_.push_back(std::make_unique<State>(retry));
  }
  if (metrics != nullptr) {
    quarantine_total_ = metrics->GetCounter("shard.quarantine_total");
    recoveries_ = metrics->GetCounter("shard.recoveries");
    recovery_failures_ = metrics->GetCounter("shard.recovery_failures");
    quarantined_now_ = metrics->GetGauge("shard.quarantined");
    quarantine_duration_ = metrics->GetLatency("shard.quarantine_duration");
    recovery_duration_ = metrics->GetLatency("shard.recovery_duration");
    for (std::size_t i = 0; i < num_shards; ++i) {
      char name[64];
      std::snprintf(name, sizeof(name), "sharded.shard%zu.state", i);
      states_[i]->state_gauge = metrics->GetGauge(name);
      states_[i]->state_gauge->Set(static_cast<std::int64_t>(
          ShardHealth::kHealthy));
    }
  }
}

ShardSupervisor::~ShardSupervisor() { Stop(); }

void ShardSupervisor::Start(RemediateFn remediate) {
  std::unique_lock<std::mutex> lock(mu_);
  remediate_ = std::move(remediate);
  if (options_.enabled && options_.auto_remediate && !started_) {
    started_ = true;
    stop_ = false;
    loop_ = std::thread([this] { Loop(); });
  }
}

void ShardSupervisor::Stop() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (!started_) return;
    stop_ = true;
  }
  wake_.notify_all();
  if (loop_.joinable()) loop_.join();
  std::unique_lock<std::mutex> lock(mu_);
  started_ = false;
}

void ShardSupervisor::SetHealth(State& state, ShardHealth health) {
  state.health.store(static_cast<int>(health), std::memory_order_relaxed);
  if (state.state_gauge != nullptr) {
    state.state_gauge->Set(static_cast<std::int64_t>(health));
  }
}

void ShardSupervisor::ReportFault(std::size_t shard,
                                  const util::Status& reason) {
  if (!options_.enabled || shard >= states_.size()) return;
  {
    std::unique_lock<std::mutex> lock(mu_);
    State& state = *states_[shard];
    const ShardHealth h = health(shard);
    if (h == ShardHealth::kQuarantined || h == ShardHealth::kRecovering) {
      return;  // keep the first fault as the quarantine reason
    }
    SetHealth(state, ShardHealth::kQuarantined);
    state.reason = reason;
    state.quarantined_at = std::chrono::steady_clock::now();
    state.retry.Reset();
    state.next_attempt = state.quarantined_at +
                         std::chrono::milliseconds(state.retry.NextDelayMs());
    if (quarantine_total_ != nullptr) quarantine_total_->Increment();
    if (quarantined_now_ != nullptr) quarantined_now_->Add(1);
  }
  wake_.notify_all();
}

void ShardSupervisor::ReportDegraded(std::size_t shard,
                                     const util::Status& reason) {
  if (!options_.enabled || shard >= states_.size()) return;
  std::unique_lock<std::mutex> lock(mu_);
  State& state = *states_[shard];
  if (health(shard) != ShardHealth::kHealthy) return;
  SetHealth(state, ShardHealth::kDegraded);
  state.reason = reason;
}

void ShardSupervisor::ClearDegraded(std::size_t shard) {
  if (!options_.enabled || shard >= states_.size()) return;
  std::unique_lock<std::mutex> lock(mu_);
  State& state = *states_[shard];
  if (health(shard) != ShardHealth::kDegraded) return;
  SetHealth(state, ShardHealth::kHealthy);
  state.reason = util::Status::Ok();
}

util::Status ShardSupervisor::UnavailableStatus(std::size_t shard) const {
  std::unique_lock<std::mutex> lock(mu_);
  const State& state = *states_[shard];
  const auto now = std::chrono::steady_clock::now();
  std::int64_t retry_after_ms = 0;
  if (state.next_attempt > now) {
    retry_after_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                         state.next_attempt - now)
                         .count();
  }
  std::string msg = "shard " + std::to_string(shard) + " quarantined (" +
                    state.reason.message() +
                    "); retry_after_ms=" + std::to_string(retry_after_ms);
  return util::Status::Unavailable(std::move(msg));
}

util::Status ShardSupervisor::reason(std::size_t shard) const {
  std::unique_lock<std::mutex> lock(mu_);
  return states_[shard]->reason;
}

util::Status ShardSupervisor::TryRecoverShard(std::size_t shard) {
  if (!options_.enabled || shard >= states_.size()) {
    return util::Status::FailedPrecondition("shard supervisor disabled");
  }
  std::unique_lock<std::mutex> lock(mu_);
  return RecoverLocked(shard, lock);
}

util::Status ShardSupervisor::RecoverLocked(
    std::size_t shard, std::unique_lock<std::mutex>& lock) {
  State& state = *states_[shard];
  if (health(shard) != ShardHealth::kQuarantined) {
    return util::Status::FailedPrecondition(
        "shard " + std::to_string(shard) + " is " +
        std::string(ShardHealthName(health(shard))) + ", not quarantined");
  }
  if (!remediate_) {
    return util::Status::FailedPrecondition("no remediator installed");
  }
  SetHealth(state, ShardHealth::kRecovering);
  RemediateFn remediate = remediate_;
  lock.unlock();

  const auto attempt_start = std::chrono::steady_clock::now();
  util::Status status = remediate(shard);
  const auto attempt_end = std::chrono::steady_clock::now();

  lock.lock();
  if (status.ok()) {
    SetHealth(state, ShardHealth::kHealthy);
    state.reason = util::Status::Ok();
    state.retry.Reset();
    if (recoveries_ != nullptr) recoveries_->Increment();
    if (quarantined_now_ != nullptr) quarantined_now_->Add(-1);
    if (recovery_duration_ != nullptr) {
      recovery_duration_->RecordNanos(
          ElapsedMicros(attempt_start, attempt_end) * 1000);
    }
    if (quarantine_duration_ != nullptr) {
      quarantine_duration_->RecordNanos(
          ElapsedMicros(state.quarantined_at, attempt_end) * 1000);
    }
    all_up_.notify_all();
  } else {
    SetHealth(state, ShardHealth::kQuarantined);
    // Keep the original fault as the reason; the failed attempt only
    // re-arms the backoff.
    state.next_attempt =
        attempt_end + std::chrono::milliseconds(state.retry.NextDelayMs());
    if (recovery_failures_ != nullptr) recovery_failures_->Increment();
  }
  return status;
}

std::vector<std::size_t> ShardSupervisor::UnavailableShards() const {
  std::vector<std::size_t> down;
  for (std::size_t i = 0; i < states_.size(); ++i) {
    if (!readable(i)) down.push_back(i);
  }
  return down;
}

std::size_t ShardSupervisor::num_unavailable() const {
  std::size_t n = 0;
  for (std::size_t i = 0; i < states_.size(); ++i) {
    if (!readable(i)) ++n;
  }
  return n;
}

bool ShardSupervisor::AwaitAllAvailable(std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  std::unique_lock<std::mutex> lock(mu_);
  return all_up_.wait_until(lock, deadline,
                            [this] { return num_unavailable() == 0; });
}

void ShardSupervisor::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    // Earliest due attempt among quarantined shards, if any.
    bool have_due = false;
    std::chrono::steady_clock::time_point next{};
    for (const auto& state : states_) {
      if (static_cast<ShardHealth>(state->health.load(
              std::memory_order_relaxed)) != ShardHealth::kQuarantined) {
        continue;
      }
      if (!have_due || state->next_attempt < next) {
        have_due = true;
        next = state->next_attempt;
      }
    }
    if (!have_due) {
      wake_.wait_for(lock,
                     std::chrono::milliseconds(options_.poll_interval_ms));
      continue;
    }
    const auto now = std::chrono::steady_clock::now();
    if (next > now) {
      wake_.wait_until(lock, next);
      continue;  // re-scan: faults/stop may have arrived while waiting
    }
    for (std::size_t i = 0; i < states_.size() && !stop_; ++i) {
      State& state = *states_[i];
      if (static_cast<ShardHealth>(state.health.load(
              std::memory_order_relaxed)) != ShardHealth::kQuarantined) {
        continue;
      }
      if (state.next_attempt > std::chrono::steady_clock::now()) continue;
      // Outcome is recorded in the state machine + metrics; nothing to
      // propagate from the background loop.
      (void)RecoverLocked(i, lock);
    }
  }
}

}  // namespace modb::db
