#ifndef MODB_DB_DELTA_STREAM_H_
#define MODB_DB_DELTA_STREAM_H_

#include <cstddef>
#include <span>
#include <vector>

#include "core/position_attribute.h"
#include "core/types.h"
#include "geo/box.h"
#include "geo/route_network.h"
#include "index/oplane.h"

namespace modb::db {

/// One committed attribute transition on the database's delta stream: the
/// motion model of `id` changed from `before` to `after`. A null `before`
/// is an insert, a null `after` an erase (never both null).
///
/// Unlike `index::IndexDelta` — which carries only each object's *final*
/// per-batch attribute because the index serves nothing but the current
/// model — the delta stream is per record: a batch that updates the same
/// object twice produces two transitions, chained through the intermediate
/// attribute, exactly as sequential ingest would. Continuous queries need
/// that chain (a mid-batch excursion through a region is an enter+leave
/// pair, not silence), so the stream must not be collapsed by the stage-4
/// supersede dedup.
struct AttributeDelta {
  /// Input slot of the record within the originating call (0 for
  /// single-record mutations). The sharded layer rewrites shard-local
  /// ordinals back to global input slots before merging event streams.
  std::size_t ordinal = 0;
  core::ObjectId id = core::kInvalidObjectId;
  const core::PositionAttribute* before = nullptr;  // null = insert
  const core::PositionAttribute* after = nullptr;   // null = erase
};

/// Observer of committed mutations. Implementations are invoked by
/// `ModDatabase` after a mutation fully commits (map + index), in the same
/// thread, under whatever exclusion the database itself runs under — the
/// consumer inherits the database's thread-compatibility contract and
/// needs no locking of its own when the caller serialises writes.
///
/// The pointed-to attributes are only valid for the duration of the call.
class DeltaConsumer {
 public:
  virtual ~DeltaConsumer() = default;

  /// `deltas` arrive ordered by `ordinal` (ascending input slot).
  virtual void OnDeltaBatch(std::span<const AttributeDelta> deltas) = 0;
};

/// Appends a conservative 3-D cover of every (position, time) the motion
/// model `attr` can occupy within `oplane.horizon` of its start time: the
/// o-plane slab boxes of §4.1.1, one per time slab. Consumers that index
/// standing predicates as 3-D boxes (subscription matcher, result cache)
/// intersect these against their own boxes to find the predicates a delta
/// can possibly affect. An unknown route appends nothing (the database
/// never commits such an attribute).
void AppendDirtyBoxes(const core::PositionAttribute& attr,
                      const geo::RouteNetwork& network,
                      const index::OPlaneOptions& oplane,
                      std::vector<geo::Box3>* out);

}  // namespace modb::db

#endif  // MODB_DB_DELTA_STREAM_H_
