#include "db/update_log.h"

namespace modb::db {

void UpdateLog::Append(const core::PositionUpdate& update) {
  ++total_updates_;
  ++per_object_[update.object];
  if (max_history_ > 0 && history_.size() >= max_history_) {
    // Drop the oldest half to keep amortised O(1) appends.
    const std::size_t drop = history_.size() / 2;
    dropped_ += drop;
    history_.erase(history_.begin(),
                   history_.begin() + static_cast<std::ptrdiff_t>(drop));
  }
  history_.push_back(update);
}

std::uint64_t UpdateLog::updates_for(core::ObjectId id) const {
  const auto it = per_object_.find(id);
  return it == per_object_.end() ? 0 : it->second;
}

void UpdateLog::Clear() {
  total_updates_ = 0;
  dropped_ = 0;
  per_object_.clear();
  history_.clear();
}

}  // namespace modb::db
