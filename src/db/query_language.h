#ifndef MODB_DB_QUERY_LANGUAGE_H_
#define MODB_DB_QUERY_LANGUAGE_H_

#include <string>
#include <string_view>
#include <variant>

#include "db/mod_database.h"
#include "db/sharded_database.h"
#include "db/subscription_engine.h"
#include "geo/polygon.h"
#include "util/status.h"

namespace modb::db {

// A small textual query language over the moving-objects database — the
// paper's conclusion names "developing query languages ... for these
// databases" as the next step; this is the minimal concrete instance
// covering every query form the engine supports.
//
// Grammar (keywords case-insensitive; numbers are plain doubles):
//
//   query     := position | range | nearest | subscribe | unsubscribe
//              | events
//   position  := POSITION OF <id> AT <time>
//   range     := SELECT scope INSIDE region when partiality?
//   scope     := ALL | MUST | MAY
//   when      := AT <time> | DURING <t1> TO <t2>
//   nearest   := NEAREST <k> TO point AT <time> partiality?
//   subscribe := SUBSCRIBE <id> TO scope INSIDE region when
//   unsubscribe := UNSUBSCRIBE <id>
//   events    := EVENTS
//   region    := RECT ( x0 , y0 , x1 , y1 ) | CIRCLE ( x , y , r )
//   point     := POINT ( x , y )
//   partiality := ALLOW PARTIAL | STRICT
//
// Examples:
//   POSITION OF 7 AT 6
//   SELECT MUST INSIDE RECT(0, -1, 20, 1) AT 6
//   SELECT ALL INSIDE CIRCLE(3, 4, 1.5) DURING 10 TO 20
//   SELECT ALL INSIDE RECT(0, -1, 20, 1) AT 6 ALLOW PARTIAL
//   NEAREST 3 TO POINT(5, 5) AT 12
//   SUBSCRIBE 42 TO MAY INSIDE RECT(0, -1, 20, 1) AT 6
//   UNSUBSCRIBE 42
//   EVENTS
//
// The `partiality` modifier matters only on a sharded database with
// quarantined shards: STRICT (the default) refuses a partial answer with
// `Unavailable` naming the excluded shards; ALLOW PARTIAL answers from
// the surviving shards and annotates the rendering. On a fully healthy
// store (or an unsharded one) both behave identically.
//
// SUBSCRIBE registers a standing query on the database's attached
// `SubscriptionEngine` (scope maps to the engine's transition mode);
// EVENTS drains the engine's pending transition events. Both fail with
// FailedPrecondition when no engine is attached.

/// Parsed form of `POSITION OF <id> AT <t>`.
struct PositionQuerySpec {
  core::ObjectId id = core::kInvalidObjectId;
  core::Time time = 0.0;
};

/// Parsed form of `SELECT <scope> INSIDE <region> <when>`.
struct RangeQuerySpec {
  enum class Scope { kAll, kMust, kMay };
  Scope scope = Scope::kAll;
  geo::Polygon region;
  std::string region_text;  // original spelling, for echoing
  bool windowed = false;
  core::Time time = 0.0;      // AT form
  core::Time window_end = 0.0;  // DURING form: [time, window_end]
  /// ALLOW PARTIAL: accept (and annotate) an answer that excludes
  /// quarantined shards. Default is STRICT — refuse with `Unavailable`.
  bool allow_partial = false;
};

/// Parsed form of `NEAREST <k> TO POINT(x, y) AT <t>`.
struct NearestQuerySpec {
  std::size_t k = 0;
  geo::Point2 point;
  core::Time time = 0.0;
  /// See `RangeQuerySpec::allow_partial`.
  bool allow_partial = false;
};

/// Parsed form of `SUBSCRIBE <id> TO <scope> INSIDE <region> <when>`.
struct SubscribeSpec {
  SubscriptionId id = 0;
  SubscriptionSpec subscription;
};

/// Parsed form of `UNSUBSCRIBE <id>`.
struct UnsubscribeSpec {
  SubscriptionId id = 0;
};

/// Parsed form of `EVENTS`.
struct EventsSpec {};

using ParsedQuery =
    std::variant<PositionQuerySpec, RangeQuerySpec, NearestQuerySpec,
                 SubscribeSpec, UnsubscribeSpec, EventsSpec>;

/// Parses `text` into a query, or InvalidArgument with a message that
/// points at the offending token.
util::Result<ParsedQuery> ParseQuery(std::string_view text);

/// Executes a textual query against `db` and renders a human-readable
/// answer. Parse errors and unknown objects surface as error statuses.
util::Result<std::string> ExecuteQuery(const ModDatabase& db,
                                       std::string_view text);

/// Sharded overload with degraded-read semantics: fan-out answers carry a
/// `QueryCompleteness`; a STRICT query (the default) over a partial answer
/// fails `Unavailable` naming the excluded shards, while `ALLOW PARTIAL`
/// renders the surviving shards' answer with a `partial (excluded shards:
/// ...)` annotation. SUBSCRIBE/UNSUBSCRIBE/EVENTS route to the sharded
/// subscription API (non-const for the same reason that API is).
util::Result<std::string> ExecuteQuery(ShardedModDatabase& db,
                                       std::string_view text);

}  // namespace modb::db

#endif  // MODB_DB_QUERY_LANGUAGE_H_
