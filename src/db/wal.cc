#include "db/wal.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <system_error>
#include <utility>

#include "util/crc32c.h"

namespace modb::db {

namespace {

// Frame header: payload length + masked CRC32C of the payload.
constexpr std::size_t kFrameHeaderBytes = 8;
// Sanity bound: no legal record is near this (labels are the only variable
// part); a length beyond it is corruption, not a huge record.
constexpr std::uint32_t kMaxPayloadBytes = 1u << 20;
// Batch records are split into chunks before their payload approaches
// `kMaxPayloadBytes`, so the reader's sanity bound never rejects a legal
// batch (a single update encodes to ~70 bytes; ~3700 fit per chunk).
constexpr std::size_t kBatchChunkPayloadBytes = 256u << 10;

void PutU32(std::string* out, std::uint32_t v) {
  char buf[4];
  buf[0] = static_cast<char>(v & 0xff);
  buf[1] = static_cast<char>((v >> 8) & 0xff);
  buf[2] = static_cast<char>((v >> 16) & 0xff);
  buf[3] = static_cast<char>((v >> 24) & 0xff);
  out->append(buf, 4);
}

void PutU64(std::string* out, std::uint64_t v) {
  PutU32(out, static_cast<std::uint32_t>(v & 0xffffffffu));
  PutU32(out, static_cast<std::uint32_t>(v >> 32));
}

void PutF64(std::string* out, double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

void PutU8(std::string* out, std::uint8_t v) {
  out->push_back(static_cast<char>(v));
}

/// Bounds-checked little-endian cursor over a payload.
class Cursor {
 public:
  explicit Cursor(std::string_view data) : data_(data) {}

  bool GetU8(std::uint8_t* v) {
    if (data_.size() < 1) return false;
    *v = static_cast<std::uint8_t>(data_[0]);
    data_.remove_prefix(1);
    return true;
  }

  bool GetU32(std::uint32_t* v) {
    if (data_.size() < 4) return false;
    *v = 0;
    for (int i = 3; i >= 0; --i) {
      *v = (*v << 8) | static_cast<std::uint8_t>(data_[i]);
    }
    data_.remove_prefix(4);
    return true;
  }

  bool GetU64(std::uint64_t* v) {
    std::uint32_t lo = 0;
    std::uint32_t hi = 0;
    if (!GetU32(&lo) || !GetU32(&hi)) return false;
    *v = (static_cast<std::uint64_t>(hi) << 32) | lo;
    return true;
  }

  bool GetF64(double* v) {
    std::uint64_t bits = 0;
    if (!GetU64(&bits)) return false;
    std::memcpy(v, &bits, sizeof(bits));
    return true;
  }

  bool GetString(std::string* s) {
    std::uint32_t len = 0;
    if (!GetU32(&len)) return false;
    if (data_.size() < len) return false;
    s->assign(data_.substr(0, len));
    data_.remove_prefix(len);
    return true;
  }

  bool AtEnd() const { return data_.empty(); }

 private:
  std::string_view data_;
};

void PutDirection(std::string* out, core::TravelDirection d) {
  PutU8(out, d == core::TravelDirection::kForward ? 1 : 0);
}

bool GetDirection(Cursor* cursor, core::TravelDirection* d) {
  std::uint8_t raw = 0;
  if (!cursor->GetU8(&raw)) return false;
  if (raw > 1) return false;
  *d = raw == 1 ? core::TravelDirection::kForward
                : core::TravelDirection::kBackward;
  return true;
}

void PutAttribute(std::string* out, const core::PositionAttribute& a) {
  PutF64(out, a.start_time);
  PutU32(out, a.route);
  PutF64(out, a.start_route_distance);
  PutF64(out, a.start_position.x);
  PutF64(out, a.start_position.y);
  PutDirection(out, a.direction);
  PutF64(out, a.speed);
  PutU8(out, static_cast<std::uint8_t>(a.policy));
  PutF64(out, a.update_cost);
  PutF64(out, a.max_speed);
  PutF64(out, a.fixed_threshold);
  PutF64(out, a.period);
  PutF64(out, a.step_threshold);
}

bool GetAttribute(Cursor* cursor, core::PositionAttribute* a) {
  std::uint32_t route = 0;
  std::uint8_t policy = 0;
  if (!cursor->GetF64(&a->start_time) || !cursor->GetU32(&route) ||
      !cursor->GetF64(&a->start_route_distance) ||
      !cursor->GetF64(&a->start_position.x) ||
      !cursor->GetF64(&a->start_position.y) ||
      !GetDirection(cursor, &a->direction) || !cursor->GetF64(&a->speed) ||
      !cursor->GetU8(&policy) || !cursor->GetF64(&a->update_cost) ||
      !cursor->GetF64(&a->max_speed) || !cursor->GetF64(&a->fixed_threshold) ||
      !cursor->GetF64(&a->period) || !cursor->GetF64(&a->step_threshold)) {
    return false;
  }
  if (policy > static_cast<std::uint8_t>(core::PolicyKind::kStepThreshold)) {
    return false;
  }
  a->route = route;
  a->policy = static_cast<core::PolicyKind>(policy);
  return true;
}

// kGroupBatch row flags.
constexpr std::uint8_t kRowTimeElided = 1u << 0;
constexpr std::uint8_t kRowPositionElided = 1u << 1;
// Minimum encoded sizes, for the decoder's count sanity bounds.
constexpr std::size_t kMinGroupRowBytes = 30;        // both fields elided
constexpr std::size_t kMinGroupTransitionBytes = 21;  // kind+group+leader+count

void PutGroupModel(std::string* out, const GroupModel& m) {
  PutU32(out, m.route);
  PutDirection(out, m.direction);
  PutF64(out, m.speed);
  PutF64(out, m.anchor_time);
  PutF64(out, m.anchor_distance);
  PutF64(out, m.window_lo);
  PutF64(out, m.window_hi);
  PutF64(out, m.vmax);
  PutF64(out, m.width);
}

bool GetGroupModel(Cursor* cursor, GroupModel* m) {
  std::uint32_t route = 0;
  if (!cursor->GetU32(&route) || !GetDirection(cursor, &m->direction) ||
      !cursor->GetF64(&m->speed) || !cursor->GetF64(&m->anchor_time) ||
      !cursor->GetF64(&m->anchor_distance) ||
      !cursor->GetF64(&m->window_lo) || !cursor->GetF64(&m->window_hi) ||
      !cursor->GetF64(&m->vmax) || !cursor->GetF64(&m->width)) {
    return false;
  }
  m->route = route;
  return true;
}

bool SameBits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

std::string FrameRecord(const std::string& payload) {
  std::string frame;
  frame.reserve(kFrameHeaderBytes + payload.size());
  PutU32(&frame, static_cast<std::uint32_t>(payload.size()));
  PutU32(&frame, util::Crc32cMask(util::Crc32c(payload)));
  frame += payload;
  return frame;
}

}  // namespace

std::string EncodeWalRecord(const WalRecord& record) {
  std::string payload;
  PutU8(&payload, static_cast<std::uint8_t>(record.type));
  switch (record.type) {
    case WalRecordType::kInsert:
      PutU64(&payload, record.id);
      PutU32(&payload, static_cast<std::uint32_t>(record.label.size()));
      payload += record.label;
      PutAttribute(&payload, record.attr);
      break;
    case WalRecordType::kUpdate:
      PutU64(&payload, record.update.object);
      PutF64(&payload, record.update.time);
      PutU32(&payload, record.update.route);
      PutF64(&payload, record.update.route_distance);
      PutF64(&payload, record.update.position.x);
      PutF64(&payload, record.update.position.y);
      PutDirection(&payload, record.update.direction);
      PutF64(&payload, record.update.speed);
      break;
    case WalRecordType::kErase:
      PutU64(&payload, record.id);
      break;
    case WalRecordType::kUpdateBatch:
      PutU32(&payload, static_cast<std::uint32_t>(record.batch.size()));
      for (const WalRecord& sub : record.batch) {
        const std::string sub_payload = EncodeWalRecord(sub);
        PutU32(&payload, static_cast<std::uint32_t>(sub_payload.size()));
        payload += sub_payload;
      }
      break;
    case WalRecordType::kGroupBatch: {
      PutF64(&payload, record.group_base_time);
      PutU32(&payload, static_cast<std::uint32_t>(record.group_rows.size()));
      for (const GroupWalRow& row : record.group_rows) {
        std::uint8_t flags = 0;
        if (row.time_elided) flags |= kRowTimeElided;
        if (row.position_elided) flags |= kRowPositionElided;
        PutU8(&payload, flags);
        PutU64(&payload, row.update.object);
        PutU32(&payload, row.update.route);
        PutDirection(&payload, row.update.direction);
        PutF64(&payload, row.update.speed);
        PutF64(&payload, row.update.route_distance);
        if (!row.time_elided) PutF64(&payload, row.update.time);
        if (!row.position_elided) {
          PutF64(&payload, row.update.position.x);
          PutF64(&payload, row.update.position.y);
        }
      }
      PutU32(&payload,
             static_cast<std::uint32_t>(record.group_transitions.size()));
      for (const GroupTransition& t : record.group_transitions) {
        PutU8(&payload, static_cast<std::uint8_t>(t.kind));
        PutU64(&payload, t.group);
        PutU64(&payload, t.leader);
        if (t.kind == GroupTransitionKind::kForm ||
            t.kind == GroupTransitionKind::kRefresh) {
          PutGroupModel(&payload, t.model);
        }
        PutU32(&payload, static_cast<std::uint32_t>(t.members.size()));
        for (core::ObjectId m : t.members) PutU64(&payload, m);
      }
      break;
    }
  }
  return payload;
}

bool DecodeWalRecord(std::string_view payload, WalRecord* record) {
  Cursor cursor(payload);
  std::uint8_t type = 0;
  if (!cursor.GetU8(&type)) return false;
  switch (type) {
    case static_cast<std::uint8_t>(WalRecordType::kInsert): {
      record->type = WalRecordType::kInsert;
      if (!cursor.GetU64(&record->id) || !cursor.GetString(&record->label) ||
          !GetAttribute(&cursor, &record->attr)) {
        return false;
      }
      break;
    }
    case static_cast<std::uint8_t>(WalRecordType::kUpdate): {
      record->type = WalRecordType::kUpdate;
      core::PositionUpdate& u = record->update;
      std::uint32_t route = 0;
      if (!cursor.GetU64(&u.object) || !cursor.GetF64(&u.time) ||
          !cursor.GetU32(&route) || !cursor.GetF64(&u.route_distance) ||
          !cursor.GetF64(&u.position.x) || !cursor.GetF64(&u.position.y) ||
          !GetDirection(&cursor, &u.direction) || !cursor.GetF64(&u.speed)) {
        return false;
      }
      u.route = route;
      break;
    }
    case static_cast<std::uint8_t>(WalRecordType::kErase): {
      record->type = WalRecordType::kErase;
      if (!cursor.GetU64(&record->id)) return false;
      break;
    }
    case static_cast<std::uint8_t>(WalRecordType::kGroupBatch): {
      record->type = WalRecordType::kGroupBatch;
      std::uint32_t row_count = 0;
      if (!cursor.GetF64(&record->group_base_time) ||
          !cursor.GetU32(&row_count)) {
        return false;
      }
      // Each row costs at least its fully-elided encoding; a count beyond
      // that is corruption, not a huge batch.
      if (row_count > payload.size() / kMinGroupRowBytes) return false;
      record->group_rows.clear();
      record->group_rows.reserve(row_count);
      for (std::uint32_t i = 0; i < row_count; ++i) {
        GroupWalRow row;
        std::uint8_t flags = 0;
        std::uint32_t route = 0;
        if (!cursor.GetU8(&flags) ||
            flags > (kRowTimeElided | kRowPositionElided) ||
            !cursor.GetU64(&row.update.object) || !cursor.GetU32(&route) ||
            !GetDirection(&cursor, &row.update.direction) ||
            !cursor.GetF64(&row.update.speed) ||
            !cursor.GetF64(&row.update.route_distance)) {
          return false;
        }
        row.update.route = route;
        row.time_elided = (flags & kRowTimeElided) != 0;
        row.position_elided = (flags & kRowPositionElided) != 0;
        if (row.time_elided) {
          row.update.time = record->group_base_time;
        } else if (!cursor.GetF64(&row.update.time)) {
          return false;
        }
        if (!row.position_elided &&
            (!cursor.GetF64(&row.update.position.x) ||
             !cursor.GetF64(&row.update.position.y))) {
          return false;
        }
        record->group_rows.push_back(row);
      }
      std::uint32_t transition_count = 0;
      if (!cursor.GetU32(&transition_count)) return false;
      if (transition_count > payload.size() / kMinGroupTransitionBytes) {
        return false;
      }
      record->group_transitions.clear();
      record->group_transitions.reserve(transition_count);
      for (std::uint32_t i = 0; i < transition_count; ++i) {
        GroupTransition t;
        std::uint8_t kind = 0;
        if (!cursor.GetU8(&kind)) return false;
        if (kind < static_cast<std::uint8_t>(GroupTransitionKind::kForm) ||
            kind > static_cast<std::uint8_t>(GroupTransitionKind::kRefresh)) {
          return false;
        }
        t.kind = static_cast<GroupTransitionKind>(kind);
        if (!cursor.GetU64(&t.group) || !cursor.GetU64(&t.leader)) {
          return false;
        }
        if (t.kind == GroupTransitionKind::kForm ||
            t.kind == GroupTransitionKind::kRefresh) {
          if (!GetGroupModel(&cursor, &t.model)) return false;
        }
        std::uint32_t member_count = 0;
        if (!cursor.GetU32(&member_count)) return false;
        if (member_count > payload.size() / 8) return false;
        t.members.reserve(member_count);
        for (std::uint32_t j = 0; j < member_count; ++j) {
          std::uint64_t m = 0;
          if (!cursor.GetU64(&m)) return false;
          t.members.push_back(m);
        }
        record->group_transitions.push_back(std::move(t));
      }
      break;
    }
    case static_cast<std::uint8_t>(WalRecordType::kUpdateBatch): {
      record->type = WalRecordType::kUpdateBatch;
      std::uint32_t count = 0;
      if (!cursor.GetU32(&count)) return false;
      // Every sub-record costs at least its length prefix, so a count
      // beyond that is corruption, not a huge batch.
      if (count > payload.size() / 4) return false;
      record->batch.clear();
      record->batch.reserve(std::min<std::uint32_t>(count, 1024));
      std::string sub_payload;
      for (std::uint32_t i = 0; i < count; ++i) {
        if (!cursor.GetString(&sub_payload)) return false;
        // Nesting depth is exactly one; rejecting a nested batch *before*
        // the recursive decode also bounds the recursion itself.
        if (!sub_payload.empty() &&
            (static_cast<std::uint8_t>(sub_payload[0]) ==
                 static_cast<std::uint8_t>(WalRecordType::kUpdateBatch) ||
             static_cast<std::uint8_t>(sub_payload[0]) ==
                 static_cast<std::uint8_t>(WalRecordType::kGroupBatch))) {
          return false;
        }
        WalRecord sub;
        if (!DecodeWalRecord(sub_payload, &sub)) return false;
        record->batch.push_back(std::move(sub));
      }
      break;
    }
    default:
      return false;
  }
  return cursor.AtEnd();
}

std::string WalSegmentFileName(std::uint64_t epoch, std::uint64_t seq) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "wal-%08" PRIu64 "-%08" PRIu64 ".log", epoch,
                seq);
  return buf;
}

std::vector<WalSegmentInfo> ListWalSegments(const std::string& dir) {
  std::vector<WalSegmentInfo> segments;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    WalSegmentInfo info;
    char trailer = 0;
    if (std::sscanf(name.c_str(), "wal-%" SCNu64 "-%" SCNu64 ".lo%c",
                    &info.epoch, &info.seq, &trailer) == 3 &&
        trailer == 'g') {
      info.path = entry.path().string();
      segments.push_back(std::move(info));
    }
  }
  std::sort(segments.begin(), segments.end(),
            [](const WalSegmentInfo& a, const WalSegmentInfo& b) {
              return a.epoch != b.epoch ? a.epoch < b.epoch : a.seq < b.seq;
            });
  return segments;
}

util::Result<std::unique_ptr<WalWriter>> WalWriter::Open(
    const std::string& dir, std::uint64_t epoch, WalWriterOptions options) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return util::Status::Internal("cannot create " + dir + ": " +
                                  ec.message());
  }
  if (!options.file_factory) {
    options.file_factory = util::DefaultWritableFileFactory();
  }
  std::unique_ptr<WalWriter> writer(
      new WalWriter(dir, epoch, std::move(options)));
  if (util::Status s = writer->OpenNextSegment(); !s.ok()) return s;
  return writer;
}

WalWriter::~WalWriter() { (void)Close(); }

util::Status WalWriter::Poison(util::Status status) {
  if (poison_.ok()) poison_ = status;
  return status;
}

util::Status WalWriter::WithSegmentContext(util::Status status,
                                          const std::string& path) const {
  if (status.ok()) return status;
  // Idempotent: errors forwarded through several layers keep one prefix.
  if (status.message().rfind("wal epoch ", 0) == 0) return status;
  return util::Status(status.code(), "wal epoch " + std::to_string(epoch_) +
                                         " segment " + path + ": " +
                                         status.message());
}

std::string WalWriter::SegmentPath(std::uint64_t seq) const {
  return (std::filesystem::path(dir_) / WalSegmentFileName(epoch_, seq))
      .string();
}

util::Status WalWriter::OpenNextSegment() {
  if (segment_ != nullptr) {
    // Under a bounded sync window the rotated-away segment must be durable
    // before appends continue in the next one, or a crash could lose a
    // mid-log run of records while newer (synced) ones survive — recovery
    // would then stop at the hole anyway, voiding the window guarantee.
    if (BoundedSyncWindow() && unsynced_appends_ > 0) {
      if (util::Status s = Sync(); !s.ok()) return s;
    }
    if (util::Status s = segment_->Close(); !s.ok()) {
      return Poison(WithSegmentContext(std::move(s), segment_path_));
    }
  }
  ++seq_;
  const std::string path = SegmentPath(seq_);
  auto file = options_.file_factory(path);
  if (!file.ok()) {
    // The old segment is already closed; appending anywhere now would
    // leave a gap, so the writer is done.
    if (segment_ != nullptr) {
      return Poison(WithSegmentContext(file.status(), path));
    }
    return WithSegmentContext(file.status(), path);
  }
  segment_ = std::move(*file);
  segment_path_ = path;
  segment_bytes_ = 0;
  if (seq_ > 1 && rotations_counter_ != nullptr) {
    rotations_counter_->Increment();
  }
  return util::Status::Ok();
}

util::Status WalWriter::AppendRecord(const WalRecord& record) {
  return AppendEncoded(EncodeWalRecord(record));
}

util::Status WalWriter::AppendEncoded(const std::string& payload) {
  if (closed_) return util::Status::FailedPrecondition("WAL closed");
  if (!poison_.ok()) return poison_;
  if (segment_bytes_ >= options_.segment_max_bytes) {
    if (util::Status s = OpenNextSegment(); !s.ok()) return s;
  }
  const std::string frame = FrameRecord(payload);
  if (util::Status s = segment_->Append(frame); !s.ok()) {
    return Poison(WithSegmentContext(std::move(s), segment_path_));
  }
  segment_bytes_ += frame.size();
  bytes_ += frame.size();
  ++appends_;
  unsynced_bytes_ += frame.size();
  ++unsynced_appends_;
  if (appends_counter_ != nullptr) appends_counter_->Increment();
  if (bytes_counter_ != nullptr) bytes_counter_->Increment(frame.size());
  return MaybeSync();
}

util::Status WalWriter::MaybeSync() {
  bool due = options_.sync_every_append;
  if (!due && options_.sync_every_bytes > 0 &&
      unsynced_bytes_ >= options_.sync_every_bytes) {
    due = true;
  }
  if (!due && options_.sync_interval_ms > 0.0) {
    const double elapsed_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - last_sync_)
            .count();
    due = elapsed_ms >= options_.sync_interval_ms;
  }
  if (!due) return util::Status::Ok();
  return Sync();
}

util::Status WalWriter::AppendInsert(core::ObjectId id, std::string_view label,
                                     const core::PositionAttribute& attr) {
  WalRecord record;
  record.type = WalRecordType::kInsert;
  record.id = id;
  record.label = label;
  record.attr = attr;
  return AppendRecord(record);
}

util::Status WalWriter::AppendUpdate(const core::PositionUpdate& update) {
  WalRecord record;
  record.type = WalRecordType::kUpdate;
  record.update = update;
  return AppendRecord(record);
}

util::Status WalWriter::AppendErase(core::ObjectId id) {
  WalRecord record;
  record.type = WalRecordType::kErase;
  record.id = id;
  return AppendRecord(record);
}

util::Status WalWriter::AppendBatch(const std::vector<WalRecord>& records) {
  if (records.empty()) return util::Status::Ok();
  if (records.size() == 1) return AppendRecord(records[0]);
  std::vector<std::string> encoded;
  encoded.reserve(records.size());
  for (const WalRecord& record : records) {
    if (record.type == WalRecordType::kUpdateBatch ||
        record.type == WalRecordType::kGroupBatch) {
      return util::Status::InvalidArgument("nested WAL batch");
    }
    encoded.push_back(EncodeWalRecord(record));
  }
  // Pack length-prefixed sub-records into chunk payloads, splitting before
  // the reader's payload sanity bound. The common batch fits in one chunk:
  // one frame, one append, one group-commit trigger check.
  std::size_t i = 0;
  while (i < encoded.size()) {
    std::string payload;
    PutU8(&payload, static_cast<std::uint8_t>(WalRecordType::kUpdateBatch));
    std::uint32_t count = 0;
    std::string body;
    while (i < encoded.size() &&
           (count == 0 ||
            body.size() + 4 + encoded[i].size() <= kBatchChunkPayloadBytes)) {
      PutU32(&body, static_cast<std::uint32_t>(encoded[i].size()));
      body += encoded[i];
      ++count;
      ++i;
    }
    PutU32(&payload, count);
    payload += body;
    if (util::Status s = AppendEncoded(payload); !s.ok()) return s;
  }
  return util::Status::Ok();
}

util::Status WalWriter::AppendUpdateBatch(
    const std::vector<core::PositionUpdate>& updates) {
  std::vector<WalRecord> records;
  records.reserve(updates.size());
  for (const core::PositionUpdate& update : updates) {
    WalRecord record;
    record.type = WalRecordType::kUpdate;
    record.update = update;
    records.push_back(std::move(record));
  }
  return AppendBatch(records);
}

util::Status WalWriter::AppendGroupBatch(
    const std::vector<core::PositionUpdate>& updates,
    const std::vector<GroupTransition>& transitions,
    const geo::RouteNetwork& network) {
  if (updates.empty() && transitions.empty()) return util::Status::Ok();
  // Decide per-row position elision up front: a position that bit-equals
  // the route geometry at the row's route distance (the common case — the
  // sender computed it the same way) costs nothing in the log and is
  // rehydrated exactly on replay.
  std::vector<GroupWalRow> rows;
  rows.reserve(updates.size());
  for (const core::PositionUpdate& update : updates) {
    GroupWalRow row;
    row.update = update;
    if (const auto route = network.FindRoute(update.route); route.ok()) {
      const geo::Point2 p = (*route)->PointAt(update.route_distance);
      row.position_elided = SameBits(p.x, update.position.x) &&
                            SameBits(p.y, update.position.y);
    }
    rows.push_back(row);
  }
  // Pack rows into chunk records, splitting before the reader's payload
  // sanity bound; each chunk carries its own base time (its first row's),
  // and the transitions ride the last chunk so replay applies them after
  // every member row of the batch.
  std::size_t i = 0;
  bool emitted = false;
  while (i < rows.size() || !emitted) {
    WalRecord chunk;
    chunk.type = WalRecordType::kGroupBatch;
    chunk.group_base_time = i < rows.size() ? rows[i].update.time : 0.0;
    std::size_t body = 0;
    while (i < rows.size()) {
      GroupWalRow row = rows[i];
      row.time_elided = SameBits(row.update.time, chunk.group_base_time);
      const std::size_t row_bytes = kMinGroupRowBytes +
                                    (row.time_elided ? 0 : 8) +
                                    (row.position_elided ? 0 : 16);
      if (!chunk.group_rows.empty() &&
          body + row_bytes > kBatchChunkPayloadBytes) {
        break;
      }
      body += row_bytes;
      chunk.group_rows.push_back(std::move(row));
      ++i;
    }
    if (i == rows.size()) chunk.group_transitions = transitions;
    if (util::Status s = AppendRecord(chunk); !s.ok()) return s;
    emitted = true;
  }
  return util::Status::Ok();
}

util::Status WalWriter::Sync() {
  if (closed_) return util::Status::FailedPrecondition("WAL closed");
  if (!poison_.ok()) return poison_;
  if (unsynced_appends_ == 0) return util::Status::Ok();
  if (syncs_counter_ != nullptr) syncs_counter_->Increment();
  if (util::Status s = segment_->Sync(); !s.ok()) {
    return Poison(WithSegmentContext(std::move(s), segment_path_));
  }
  if (batch_hist_ != nullptr) {
    // Group-commit batch size: records flushed by this fsync (the
    // histogram's "µs" unit reads as a record count here).
    batch_hist_->RecordNanos(unsynced_appends_ * 1000);
  }
  unsynced_appends_ = 0;
  unsynced_bytes_ = 0;
  last_sync_ = std::chrono::steady_clock::now();
  return util::Status::Ok();
}

util::Status WalWriter::TryReopen() {
  if (closed_) return util::Status::FailedPrecondition("WAL closed");
  if (segment_ != nullptr) {
    // Best-effort close: the segment is suspect, and close flushes what
    // stdio buffered — the most durability the abandoned tail can get.
    (void)segment_->Close();
    segment_.reset();
  }
  // Decide where the log resumes. If the current sequence number's file
  // made it to disk, drop any torn frame past the last whole-frame
  // boundary (`segment_bytes_` counts only fully-appended frames) and
  // move to the next sequence number. If it never did — the poisoned
  // rotation's open failed — reuse the same number: replay treats a
  // sequence gap as corruption and would drop everything after it.
  const std::string current = SegmentPath(seq_);
  const auto size = util::FileSize(current);
  if (size.ok()) {
    if (*size > segment_bytes_) {
      if (util::Status s = util::TruncateFile(current, segment_bytes_);
          !s.ok()) {
        // The torn tail is still on disk; clearing the poison now would
        // let the log grow past a frame replay stops at.
        return WithSegmentContext(std::move(s), current);
      }
    }
    ++seq_;
  }
  const std::string path = SegmentPath(seq_);
  auto file = options_.file_factory(path);
  if (!file.ok()) {
    // Still poisoned; the caller's retry loop comes back later.
    return WithSegmentContext(file.status(), path);
  }
  segment_ = std::move(*file);
  segment_path_ = path;
  segment_bytes_ = 0;
  // Frames of the abandoned segment can no longer be fsynced through this
  // writer; they are flushed, not synced (see header). The counters track
  // the *open* group-commit batch, which is now empty.
  unsynced_appends_ = 0;
  unsynced_bytes_ = 0;
  last_sync_ = std::chrono::steady_clock::now();
  if (rotations_counter_ != nullptr) rotations_counter_->Increment();
  poison_ = util::Status::Ok();
  return util::Status::Ok();
}

util::Status WalWriter::Close() {
  if (closed_) return util::Status::Ok();
  closed_ = true;
  if (segment_ == nullptr) return util::Status::Ok();
  return segment_->Close();
}

void WalWriter::SetMetrics(util::MetricsRegistry* registry,
                           const std::string& prefix) {
  if (registry == nullptr) {
    appends_counter_ = nullptr;
    bytes_counter_ = nullptr;
    syncs_counter_ = nullptr;
    rotations_counter_ = nullptr;
    batch_hist_ = nullptr;
    return;
  }
  appends_counter_ = registry->GetCounter(prefix + "appends");
  bytes_counter_ = registry->GetCounter(prefix + "bytes");
  syncs_counter_ = registry->GetCounter(prefix + "syncs");
  rotations_counter_ = registry->GetCounter(prefix + "rotations");
  batch_hist_ = registry->GetLatency(prefix + "group_commit_batch");
}

util::Result<WalReplayStats> ReplayWal(
    const std::string& dir, std::uint64_t epoch,
    const std::function<util::Status(const WalRecord&)>& apply,
    util::FileReader reader) {
  std::error_code ec;
  const bool exists = std::filesystem::is_directory(dir, ec);
  if (ec || !exists) {
    return util::Status::NotFound("WAL directory missing: " + dir);
  }
  if (!reader) reader = util::DefaultFileReader();

  std::vector<WalSegmentInfo> segments;
  for (WalSegmentInfo& info : ListWalSegments(dir)) {
    if (info.epoch == epoch) segments.push_back(std::move(info));
  }

  WalReplayStats stats;
  std::uint64_t expected_seq = 1;
  bool stopped = false;
  for (const WalSegmentInfo& segment : segments) {
    auto data = reader(segment.path);
    if (!data.ok()) {
      return util::Status(data.status().code(),
                          "wal epoch " + std::to_string(epoch) + " segment " +
                              segment.path + ": " + data.status().message());
    }
    // A sequence gap (a deleted or lost segment) ends the replayable
    // prefix just like a corrupt frame would.
    if (stopped || segment.seq != expected_seq++) {
      stats.bytes_truncated += data->size();
      ++stats.corrupt_segments;
      if (!stopped) {
        stats.clean = false;
        stats.detail = "segment sequence gap before " + segment.path;
        stopped = true;
      }
      continue;
    }
    ++stats.segments;

    std::string_view rest(*data);
    while (!rest.empty()) {
      Cursor header(rest.substr(0, kFrameHeaderBytes));
      std::uint32_t len = 0;
      std::uint32_t masked_crc = 0;
      const bool header_ok = header.GetU32(&len) && header.GetU32(&masked_crc);
      if (!header_ok || len > kMaxPayloadBytes ||
          rest.size() < kFrameHeaderBytes + len) {
        // Torn tail (most often a crash mid-append) or a corrupt length.
        stats.clean = false;
        stats.detail = "torn frame in " + segment.path;
        stats.bytes_truncated += rest.size();
        ++stats.corrupt_segments;
        stopped = true;
        break;
      }
      const std::string_view payload = rest.substr(kFrameHeaderBytes, len);
      WalRecord record;
      if (util::Crc32cMask(util::Crc32c(payload)) != masked_crc ||
          !DecodeWalRecord(payload, &record)) {
        stats.clean = false;
        stats.detail = "corrupt frame in " + segment.path;
        stats.bytes_truncated += rest.size();
        ++stats.corrupt_segments;
        stopped = true;
        break;
      }
      rest.remove_prefix(kFrameHeaderBytes + len);
      ++stats.records;
      stats.bytes_replayed += kFrameHeaderBytes + len;
      if (util::Status s = apply(record); !s.ok()) ++stats.records_skipped;
    }
  }
  return stats;
}

}  // namespace modb::db
