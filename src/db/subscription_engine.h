#ifndef MODB_DB_SUBSCRIPTION_ENGINE_H_
#define MODB_DB_SUBSCRIPTION_ENGINE_H_

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/types.h"
#include "core/uncertainty.h"
#include "db/delta_stream.h"
#include "geo/polygon.h"
#include "geo/route_network.h"
#include "index/oplane.h"
#include "index/rtree3.h"
#include "util/metrics.h"
#include "util/status.h"

namespace modb::db {

using SubscriptionId = std::uint64_t;

/// Which membership transitions a subscriber wants to hear about.
///   kMay  — changes of "may be in G" (outside <-> may-or-must);
///   kMust — changes of "must be in G";
///   kAll  — every relation change, including MAY <-> MUST upgrades.
enum class SubscriptionMode { kMay, kMust, kAll };

std::string_view SubscriptionModeName(SubscriptionMode mode);

/// A standing MAY/MUST region query: "notify me when an object's relation
/// to `region` at the subscribed time (or within the subscribed window)
/// changes". The same region/when shapes as the ad-hoc `SELECT` forms.
struct SubscriptionSpec {
  geo::Polygon region;
  std::string region_text;      // original spelling, for echoing
  bool windowed = false;
  core::Time time = 0.0;        // AT form, or window start
  core::Time window_end = 0.0;  // DURING form: [time, window_end]
  SubscriptionMode mode = SubscriptionMode::kMay;
};

/// A membership-transition event: object `object`'s relation to
/// subscription `subscription`'s region changed from `from` to `to` when
/// the motion model starting at `at` was committed.
struct SubscriptionEvent {
  SubscriptionId subscription = 0;
  core::ObjectId object = core::kInvalidObjectId;
  core::RegionRelation from = core::RegionRelation::kOutside;
  core::RegionRelation to = core::RegionRelation::kOutside;
  /// Start time of the attribute version that caused the transition (the
  /// commit "time" in the paper's instantaneous-update model).
  core::Time at = 0.0;
  /// Input slot of the causing record within its batch. Plumbing for the
  /// sharded merge; not part of the event's identity (batched and
  /// sequential ingest produce the same events with different ordinals).
  std::size_t ordinal = 0;

  /// Rendering without the ordinal — byte-comparable across ingest shapes.
  std::string ToString() const;
};

/// Registry of standing MAY/MUST region queries, maintained incrementally
/// from the database's delta stream (ROADMAP item 2; the update-stream
/// architecture of MOIST, Jiang et al.).
///
/// The subscriptions are themselves indexed as a 3-D rectangle set — each
/// subscription is one box (region bounding box x subscribed time range)
/// in an `index::RTree3` — so a delta batch becomes a spatial join: for
/// each record, the o-plane dirty boxes of its before/after attributes
/// probe the subscription tree, and only the intersected subscriptions are
/// re-evaluated. Subscribers receive MUST/MAY *transition* events
/// (enter / leave / upgrade), not full result sets.
///
/// Determinism: the relation of an object to a subscription is a pure
/// function of (current attribute, subscription spec) — `EvaluatePair`
/// below — gated to the subscribed window clipped against
/// [start, start + matcher.horizon] (the same visibility horizon the
/// o-plane indexes implement). Because no global clock is involved, the
/// event stream is byte-identical between incremental and naive-rescan
/// modes and between batched and sequential ingest; the spatial join can
/// only skip pairs whose relation is Outside before and after.
///
/// Thread-compatibility: not internally synchronised, same contract as
/// `ModDatabase` (the sharded layer drives each shard's engine under that
/// shard's exclusive lock).
class SubscriptionEngine final : public DeltaConsumer {
 public:
  struct Options {
    /// Horizon gate and dirty-box slabbing for the spatial join. The
    /// horizon should match the database's `oplane_horizon` so standing
    /// queries see exactly what ad-hoc queries see; the slab width only
    /// trades join probes against precision (it does not affect which
    /// events fire) and so defaults coarser than the index's.
    index::OPlaneOptions matcher;
    /// Sampling step for the MUST-at-some-instant half of windowed
    /// subscriptions (same contract as `QueryRangeInterval`).
    core::Duration must_sample_step = 1.0;
    /// Evaluate every subscription against every record instead of the
    /// spatial join — the E17 baseline. Event streams are identical.
    bool naive_rescan = false;

    Options() {
      matcher.horizon = 120.0;
      matcher.slab_width = 10.0;
    }
  };

  /// `network` must outlive the engine.
  SubscriptionEngine(const geo::RouteNetwork* network, Options options);
  explicit SubscriptionEngine(const geo::RouteNetwork* network)
      : SubscriptionEngine(network, Options{}) {}

  SubscriptionEngine(const SubscriptionEngine&) = delete;
  SubscriptionEngine& operator=(const SubscriptionEngine&) = delete;

  /// Registers a standing query. AlreadyExists for a duplicate id,
  /// InvalidArgument for a degenerate region. No catch-up scan is run:
  /// membership state starts at Outside for every object, so the first
  /// matching delta after Subscribe reports the enter transition. (Callers
  /// that need the current result set run one ad-hoc query.)
  util::Status Subscribe(SubscriptionId id, SubscriptionSpec spec);

  /// Drops a standing query (NotFound when absent) and its tracked state.
  util::Status Unsubscribe(SubscriptionId id);

  bool contains(SubscriptionId id) const { return subs_.contains(id); }
  std::size_t num_subscriptions() const { return subs_.size(); }

  /// Delta-stream hook: re-evaluates affected subscriptions record by
  /// record and buffers transition events. Within one record, events are
  /// emitted in ascending subscription id; across records, in record
  /// (ordinal) order.
  void OnDeltaBatch(std::span<const AttributeDelta> deltas) override;

  /// Drains the buffered events (oldest first).
  std::vector<SubscriptionEvent> TakeEvents();
  std::size_t num_pending_events() const { return events_.size(); }

  /// Drops every subscription's tracked per-object state (specs stay
  /// registered). Step one of re-attaching the engine to a recovered
  /// store: forget the dead store's memberships, then `PrimeObject` each
  /// recovered object.
  void ResetTracking();

  /// Silently sets the tracked relation of `id` under every subscription
  /// from `attr` — no events are emitted. With `ResetTracking` this
  /// reprimes the engine after a shard recovery swap: the recovered store
  /// holds exactly the durably-committed attributes, so priming from them
  /// leaves the engine in the same state it had after those commits, and
  /// the post-recovery event stream continues as if the crash never
  /// happened (events are a pure function of each object's update
  /// sequence).
  void PrimeObject(core::ObjectId id, const core::PositionAttribute& attr);

  /// Registers counters `<prefix>evals` (pair evaluations run),
  /// `<prefix>evals_saved` (evaluations the spatial join skipped vs. a
  /// naive rescan), `<prefix>events_emitted`, and the
  /// `<prefix>match_latency_us` histogram (one OnDeltaBatch call).
  /// nullptr detaches. Counters are shared across engines given the same
  /// registry and prefix (the sharded layer's per-shard engines).
  void SetMetrics(util::MetricsRegistry* registry,
                  const std::string& prefix = "sub.");

  /// Lifetime totals, also kept locally so tests need no registry.
  std::uint64_t evals() const { return evals_; }
  std::uint64_t evals_saved() const { return evals_saved_; }
  std::uint64_t events_emitted() const { return events_emitted_; }

  const Options& options() const { return options_; }

  /// The tracked relation of `object` under subscription `id` (kOutside
  /// for untracked pairs or unknown subscriptions). For tests.
  core::RegionRelation RelationOf(SubscriptionId id,
                                  core::ObjectId object) const;

 private:
  struct Subscription {
    SubscriptionSpec spec;
    geo::Box3 box;  // region bbox x [time, window_end] — the join key
    // Tracked relation per object; absence means kOutside, so the map
    // only holds objects currently MAY or MUST.
    std::unordered_map<core::ObjectId, core::RegionRelation> state;
  };

  /// The pure relation function (see class comment). `route` is the
  /// resolved route of `attr`.
  core::RegionRelation EvaluatePair(const Subscription& sub,
                                    const core::PositionAttribute& attr,
                                    const geo::Route& route) const;

  /// Re-evaluates one (subscription, record) pair: updates tracked state
  /// and buffers an event when the transition passes the mode filter.
  void EvaluateOne(SubscriptionId id, Subscription& sub,
                   const AttributeDelta& delta, const geo::Route* route_after);

  const geo::RouteNetwork* network_;
  Options options_;
  std::map<SubscriptionId, Subscription> subs_;  // ordered: deterministic
  index::RTree3 sub_index_;
  std::vector<SubscriptionEvent> events_;

  std::uint64_t evals_ = 0;
  std::uint64_t evals_saved_ = 0;
  std::uint64_t events_emitted_ = 0;
  // Optional instruments (see SetMetrics); non-owning, may be null.
  util::Counter* evals_counter_ = nullptr;
  util::Counter* evals_saved_counter_ = nullptr;
  util::Counter* events_counter_ = nullptr;
  util::LatencyHistogram* match_latency_ = nullptr;
};

}  // namespace modb::db

#endif  // MODB_DB_SUBSCRIPTION_ENGINE_H_
