#include "db/delta_stream.h"

namespace modb::db {

void AppendDirtyBoxes(const core::PositionAttribute& attr,
                      const geo::RouteNetwork& network,
                      const index::OPlaneOptions& oplane,
                      std::vector<geo::Box3>* out) {
  const auto route = network.FindRoute(attr.route);
  if (!route.ok()) return;
  std::vector<geo::Box3> boxes =
      index::BuildOPlaneBoxes(attr, **route, oplane);
  out->insert(out->end(), boxes.begin(), boxes.end());
}

}  // namespace modb::db
