#ifndef MODB_DB_SHARDED_DATABASE_H_
#define MODB_DB_SHARDED_DATABASE_H_

#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <string>
#include <vector>

#include "db/mod_database.h"
#include "db/recovery.h"
#include "db/result_cache.h"
#include "db/shard_supervisor.h"
#include "db/subscription_engine.h"
#include "util/metrics.h"
#include "util/thread_pool.h"

namespace modb::db {

/// Options for the sharded concurrency layer.
struct ShardedModDatabaseOptions {
  /// Sentinel: size the query pool from the hardware at construction.
  static constexpr std::size_t kAutoQueryThreads =
      std::numeric_limits<std::size_t>::max();

  /// Number of shards (>= 1; 0 is promoted to 1). More shards means less
  /// write contention; fan-out queries touch all of them regardless.
  std::size_t num_shards = 8;
  /// Worker threads in the internal fan-out pool. 0 runs fan-outs inline
  /// on the calling thread — the right choice on single-core hosts. The
  /// default (`kAutoQueryThreads`) resolves to
  /// min(num_shards, hardware_concurrency - 1), or 0 when the hardware
  /// offers no parallelism.
  std::size_t num_query_threads = kAutoQueryThreads;
  /// Options applied to every per-shard `ModDatabase`.
  ModDatabaseOptions db;
  /// Root directory for durability; each shard gets its own WAL and
  /// checkpoints under `<durable_dir>/shard-<i>`. On construction a shard
  /// directory with existing state is recovered (checkpoint + WAL replay);
  /// a fresh one is bootstrapped. Shards recover in parallel on the
  /// fan-out pool, so restart time is bounded by the largest shard; the
  /// recovered state is identical for any pool size. Empty disables
  /// durability (pure in-memory, the previous behaviour).
  std::string durable_dir;
  /// WAL + checkpoint knobs, used when `durable_dir` is set.
  DurabilityOptions durability;
  /// Continuous queries: when true, every shard gets its own
  /// `SubscriptionEngine` on its delta stream; `Subscribe` registers a
  /// standing query on all of them (each shard matches only the objects it
  /// owns) and `TakeSubscriptionEvents` drains the deterministically
  /// merged event stream.
  bool enable_subscriptions = false;
  /// Options for the per-shard engines (`enable_subscriptions` only). The
  /// matcher horizon should match `db.oplane_horizon` (both default 120).
  SubscriptionEngine::Options subscriptions;
  /// Hot ad-hoc result cache: entries per shard for `QueryRangeCached`
  /// (0 disables — cached queries fall back to plain fan-out). The
  /// cache's invalidation horizon is clamped up to `db.oplane_horizon`.
  std::size_t result_cache_entries = 0;
  /// Failure-domain isolation (see `ShardSupervisor`): faults quarantine
  /// their shard instead of wedging the store; quarantined shards reject
  /// writes with `Unavailable`, fan-out answers turn partial, and a
  /// background loop re-runs recovery under capped backoff until the
  /// shard is re-admitted. `supervisor.enabled = false` restores the
  /// pre-supervisor behaviour.
  ShardSupervisorOptions supervisor;
  /// Optimistic lock-free index probes on the fan-out query paths. When
  /// the per-shard index supports concurrent reads
  /// (`ObjectIndex::lock_free_probes()` — the time-space R*-tree over
  /// resident storage does), `QueryRange` / `QueryNearest` /
  /// `QueryRangeInterval` probe the index candidates *without* the shard's
  /// reader lock, then take the shared lock only for record-map refinement,
  /// re-validating against the shard's mutation counter; a concurrent
  /// write voids the probe and the query falls back to the fully-locked
  /// path, so answers are byte-identical either way. `false` always takes
  /// the shard lock for the whole per-shard query (the previous
  /// behaviour).
  bool lock_free_index_probes = true;
};

/// Concurrency layer over `ModDatabase`: N shards keyed by ObjectId hash,
/// each wrapping one single-threaded `ModDatabase` behind a shared mutex.
///
/// Writes (`Insert` / `ApplyUpdate` / `Erase`) take the owning shard's
/// exclusive lock, so updates to different shards proceed in parallel.
/// Fan-out queries (`QueryRange` / `QueryNearest` / `QueryRangeInterval`)
/// take each shard's shared lock, run the per-shard query on the internal
/// thread pool, and merge: MUST / MAY unions re-sorted by id, and a global
/// top-k re-merge for nearest.
///
/// Consistency: per-object operations are linearisable (one shard, one
/// lock). A fan-out query does not freeze the whole database — each shard
/// is read atomically, but concurrent updates may land between shard
/// visits, exactly as if the query and updates had been serialised in some
/// order per shard. This matches the paper's instantaneous-update model,
/// where answers are only ever as fresh as the last update anyway.
///
/// All instruments live in an internal lock-free-read `MetricsRegistry`
/// (per-shard databases share the `mod.*` counters; the layer adds
/// `sharded.*` query counters and latency histograms), dumped as text by
/// `DumpMetrics()`.
///
/// Failure domains: each shard is supervised (see `ShardSupervisor`). A
/// fault — WAL poison, durability bootstrap failure, an Internal write
/// status — quarantines only its shard: writes routed there return
/// `Unavailable` with a retry-after hint, fan-out queries keep answering
/// from the surviving shards with `completeness` marking the exclusion
/// (MUST stays sound per object; MAY becomes a lower bound), and the
/// supervisor re-runs that shard's recovery under capped backoff until it
/// is re-admitted — subscription engines are silently re-primed from the
/// recovered state, so the merged event stream continues as if the fault
/// never happened.
class ShardedModDatabase {
 public:
  using BulkObject = ModDatabase::BulkObject;

  /// `network` must outlive the database.
  ShardedModDatabase(const geo::RouteNetwork* network,
                     ShardedModDatabaseOptions options);
  explicit ShardedModDatabase(const geo::RouteNetwork* network)
      : ShardedModDatabase(network, ShardedModDatabaseOptions{}) {}

  ShardedModDatabase(const ShardedModDatabase&) = delete;
  ShardedModDatabase& operator=(const ShardedModDatabase&) = delete;

  util::Status Insert(core::ObjectId id, std::string label,
                      const core::PositionAttribute& attr);

  /// Partitions the batch by shard and bulk-loads the shards in parallel.
  /// On failure the shards that had already loaded their partition are
  /// rolled back, so the database is unchanged (same contract as
  /// `ModDatabase::BulkInsert`).
  util::Status BulkInsert(std::vector<BulkObject> objects);

  util::Status ApplyUpdate(const core::PositionUpdate& update);

  /// Staged batch ingest across shards: partitions the batch by owning
  /// shard (input order preserved within a shard, so same-object updates
  /// stay ordered), runs each non-empty sub-batch through that shard's
  /// `ModDatabase::ApplyUpdateBatch` in parallel on the internal pool —
  /// one WAL frame and one grouped index delta per shard — and scatters
  /// the per-record statuses back into input order. Equivalent to calling
  /// `ApplyUpdate` per record sequentially, but with the per-call lock,
  /// log, and tree-touch costs paid once per shard instead of once per
  /// update.
  UpdateBatchResult ApplyUpdateBatch(
      std::span<const core::PositionUpdate> updates);

  util::Status Erase(core::ObjectId id);

  util::Result<PositionAnswer> QueryPosition(core::ObjectId id,
                                             core::Time t) const;
  RangeAnswer QueryRange(const geo::Polygon& region, core::Time t) const;
  /// `QueryRange` through the per-shard result caches (byte-identical
  /// answers; plain fan-out when caching is disabled).
  RangeAnswer QueryRangeCached(const geo::Polygon& region, core::Time t) const;
  NearestAnswer QueryNearest(const geo::Point2& point, std::size_t k,
                             core::Time t) const;
  IntervalRangeAnswer QueryRangeInterval(
      const geo::Polygon& region, core::Time t1, core::Time t2,
      core::Duration sample_step = 1.0) const;

  /// Copy of the record (a pointer into a shard would dangle once the
  /// shard lock is released, so the concurrent API copies).
  util::Result<MovingObjectRecord> GetRecord(core::ObjectId id) const;

  /// Invokes `fn` on every stored record, shard by shard (unspecified
  /// order). Each shard is read under its shared lock; `fn` must not call
  /// back into this database's write API (self-deadlock).
  void ForEachRecord(
      const std::function<void(const MovingObjectRecord&)>& fn) const;

  std::size_t num_objects() const;
  std::size_t num_shards() const { return shards_.size(); }
  std::size_t num_query_threads() const { return pool_.num_threads(); }
  const geo::RouteNetwork& network() const { return *network_; }

  /// Shard that owns `id` (stable hash; exposed for tests and tooling).
  std::size_t ShardOf(core::ObjectId id) const;

  /// Registers a standing query on every shard (each shard's engine
  /// matches the objects it owns). All-or-nothing: a failure on one shard
  /// rolls the registration back everywhere. FailedPrecondition when
  /// `enable_subscriptions` is off.
  util::Status Subscribe(SubscriptionId id, const SubscriptionSpec& spec);
  util::Status Unsubscribe(SubscriptionId id);
  bool subscriptions_enabled() const;
  std::size_t num_subscriptions() const;

  /// Drains the merged cross-shard event stream (oldest mutation first).
  /// Events of one mutation call are ordered deterministically — by input
  /// record slot, then subscription id — regardless of shard count or
  /// fan-out timing, so the stream is byte-identical to an unsharded
  /// database fed the same mutations.
  std::vector<SubscriptionEvent> TakeSubscriptionEvents();

  util::MetricsRegistry& metrics() { return metrics_; }

  /// Checkpoints every durable shard — per-shard snapshot plus WAL
  /// truncation — in parallel on the fan-out pool, each under its own
  /// exclusive lock (the store keeps serving shards not currently locked).
  /// Shard failures are isolated: every shard attempts its checkpoint
  /// regardless of the others, a failed shard keeps its previous WAL
  /// attached and intact (a shard's log is never truncated before its
  /// replacement snapshot is durably synced and published), and the error
  /// names each failed shard and how many succeeded. FailedPrecondition
  /// when durability is off.
  util::Status Checkpoint();

  /// OK when durability is off or every shard bootstrapped/recovered. A
  /// failed shard is quarantined (the supervisor keeps retrying its
  /// recovery); the rest of the store stays usable.
  const util::Status& durability_status() const { return durability_status_; }

  /// The failure-domain supervisor: per-shard health, quarantine reasons,
  /// manual recovery stepping (`TryRecoverShard`), `AwaitAllAvailable`.
  ShardSupervisor& supervisor() { return *supervisor_; }
  const ShardSupervisor& supervisor() const { return *supervisor_; }

  /// Health of shard `s` (`kHealthy` for every shard when the supervisor
  /// is disabled — `ShardSupervisor` no-ops its transitions then).
  ShardHealth shard_health(std::size_t s) const {
    return supervisor_->health(s);
  }

  /// Aggregated recovery outcome across shards (sums of counts; `clean`
  /// is the conjunction). Default-constructed when durability is off.
  const RecoveryReport& recovery_report() const { return recovery_report_; }

  /// Text dump of every counter and latency histogram plus per-shard
  /// object counts — the monitoring endpoint used by the throughput
  /// benchmark.
  std::string DumpMetrics() const;

 private:
  struct alignas(64) Shard {
    mutable std::shared_mutex mu;
    // shared_ptr (not unique_ptr) so the lock-free probe path can pin the
    // database across a remediation swap; `db_swap_mu` guards only the
    // pointer itself (see SnapshotDb) — all database *operations* are
    // still serialised by `mu`.
    std::shared_ptr<ModDatabase> db;
    mutable std::mutex db_swap_mu;
    // Bumped at the end of every mutation's critical section (while `mu`
    // is still held exclusively) — including a remediation db swap. The
    // optimistic read path loads it before a lock-free index probe and
    // re-checks under the shared lock: equality proves no mutation
    // completed in between (a mutation in flight during the probe has not
    // yet bumped, but then its exclusive hold of `mu` forces the recheck
    // to run after its bump), so the probe's candidates are consistent
    // with the locked refinement state.
    std::atomic<std::uint64_t> mutations{0};
    // Owns the shard's WAL; declared after db (destroyed first) so the WAL
    // detaches from a still-live database.
    std::unique_ptr<DurabilityManager> durability;
    // Continuous-query plumbing on this shard's delta stream (both may be
    // null; non-owning pointers to them live in `db`, so they are declared
    // after it and destroyed first only once `db` stops mutating — the
    // destructor runs with no concurrent calls by the thread-compat
    // contract).
    std::unique_ptr<SubscriptionEngine> subscriptions;
    std::unique_ptr<RangeQueryCache> cache;
  };

  /// Runs `per_shard(shard_index)` for every shard on the pool (inline
  /// when the pool is empty) and blocks until all shards finished.
  void FanOut(const std::function<void(std::size_t)>& per_shard) const;

  /// Appends an already-merged event run to the pending stream under the
  /// events mutex.
  void PublishShardEvents(std::vector<SubscriptionEvent> events);

  /// Merges per-shard range answers: concatenate, re-sort by id, dedup
  /// (objects are shard-owned, so duplicates are defensive-only — see the
  /// seeded multi-shard determinism tests).
  static RangeAnswer MergeRangeAnswers(std::vector<RangeAnswer> per_shard,
                                       core::Time t);

  /// Read fan-out skip set: marks non-readable shards in `skip` (sized to
  /// the fleet) and returns the matching completeness record.
  QueryCompleteness ExcludedShards(std::vector<char>* skip) const;

  /// Pins the shard's current database for a lock-free probe (the handle
  /// keeps it alive across a concurrent remediation swap).
  static std::shared_ptr<ModDatabase> SnapshotDb(const Shard& shard) {
    std::lock_guard lock(shard.db_swap_mu);
    return shard.db;
  }

  /// Marks a completed mutation on shard `s`. Must be called *after* the
  /// mutation, while the shard's exclusive lock is still held (see the
  /// `Shard::mutations` protocol comment).
  static void NoteMutation(Shard& shard) {
    shard.mutations.fetch_add(1, std::memory_order_seq_cst);
  }

  /// Fault check after a write to shard `s` (shard lock held): a poisoned
  /// WAL or an Internal write status quarantines the shard. Normal
  /// rejections (NotFound, AlreadyExists, InvalidArgument...) are not
  /// faults.
  void NoteWriteOutcome(std::size_t s, const util::Status& status);

  /// One re-recovery attempt for shard `s` — the supervisor's remediation
  /// callback. Takes the shard's exclusive lock. Two flavours: a poisoned
  /// WAL on an intact store is rotated in place (`TryReopenWal` +
  /// checkpoint); anything else replays the shard's durable home into a
  /// fresh store and swaps it in, re-attaching the subscription engine
  /// (silently re-primed) and the result cache (cleared).
  util::Status RemediateShard(std::size_t s);

  /// Durable home of shard `i` (`<durable_dir>/shard-<i>`).
  std::string ShardDirOf(std::size_t i) const;

  const geo::RouteNetwork* network_;
  // Retained for remediation: rebuilding a shard needs the same db/
  // durability options the constructor used (index_pool already resolved).
  ShardedModDatabaseOptions options_;
  util::MetricsRegistry metrics_;
  util::Status durability_status_;
  RecoveryReport recovery_report_;
  std::vector<std::unique_ptr<Shard>> shards_;
  // Merged cross-shard subscription events awaiting TakeSubscriptionEvents.
  std::mutex events_mu_;
  std::vector<SubscriptionEvent> pending_events_;
  // Declared after shards_ (destroyed first) and mutable because fan-out
  // queries are logically const but need to schedule work.
  mutable util::ThreadPool pool_;
  // Declared after pool_ and shards_: destroyed first, which joins the
  // remediation thread while the shards it may be recovering (and the pool
  // its swapped-in indexes may use) are still alive.
  std::unique_ptr<ShardSupervisor> supervisor_;

  // Cached instrument handles (owned by metrics_).
  util::Counter* queries_range_;
  util::Counter* queries_nearest_;
  util::Counter* queries_interval_;
  util::Counter* queries_position_;
  util::LatencyHistogram* latency_range_;
  util::LatencyHistogram* latency_nearest_;
  util::LatencyHistogram* latency_interval_;
  util::LatencyHistogram* latency_update_;
};

}  // namespace modb::db

#endif  // MODB_DB_SHARDED_DATABASE_H_
