#include "db/group_tracker.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "core/bounds.h"

namespace modb::db {

namespace {

void SortedInsert(std::vector<core::ObjectId>* v, core::ObjectId id) {
  auto it = std::lower_bound(v->begin(), v->end(), id);
  if (it == v->end() || *it != id) v->insert(it, id);
}

bool SortedErase(std::vector<core::ObjectId>* v, core::ObjectId id) {
  auto it = std::lower_bound(v->begin(), v->end(), id);
  if (it == v->end() || *it != id) return false;
  v->erase(it);
  return true;
}

std::uint64_t PackCellKey(geo::RouteId route, core::TravelDirection direction,
                          double speed, double band_width) {
  const double band_f = std::floor(std::max(0.0, speed) / band_width);
  const auto band = static_cast<std::uint64_t>(
      std::min(band_f, static_cast<double>(0x7FFFFFFF)));
  const std::uint64_t dir =
      direction == core::TravelDirection::kForward ? 0 : 1;
  return (static_cast<std::uint64_t>(route) << 32) | (dir << 31) | band;
}

}  // namespace

GroupTracker::GroupTracker(const geo::RouteNetwork* network,
                           GroupTrackingOptions options,
                           index::OPlaneOptions base_oplane)
    : network_(network),
      options_(options),
      base_oplane_(base_oplane),
      horizon_(base_oplane.horizon),
      slack_(options.window_slack > 0.0 ? options.window_slack
                                        : base_oplane.horizon) {
  assert(network_ != nullptr);
  // A "group" of one is just an object with extra bookkeeping; a zero or
  // negative band width would collapse every speed into one cell.
  if (options_.min_group_size < 2) options_.min_group_size = 2;
  if (options_.speed_band_width <= 0.0) options_.speed_band_width = 0.25;
  if (options_.join_window > options_.cohesion_window) {
    options_.join_window = options_.cohesion_window;
  }
}

std::uint64_t GroupTracker::CellKeyOf(
    const core::PositionAttribute& attr) const {
  return PackCellKey(attr.route, attr.direction, attr.speed,
                     options_.speed_band_width);
}

std::uint64_t GroupTracker::CellKeyOf(const GroupModel& model) const {
  return PackCellKey(model.route, model.direction, model.speed,
                     options_.speed_band_width);
}

// -- Journal -----------------------------------------------------------

void GroupTracker::StartJournal(Plan* plan) {
  if (plan == nullptr || plan->journaling_) return;
  plan->journaling_ = true;
  plan->saved_next_group_id_ = next_group_id_;
}

void GroupTracker::JournalObject(Plan* plan, core::ObjectId id) {
  if (plan == nullptr) return;
  StartJournal(plan);
  auto [it, inserted] = plan->saved_objects_.try_emplace(id);
  if (!inserted) return;
  if (auto oit = objects_.find(id); oit != objects_.end()) {
    it->second = oit->second;
  }
}

void GroupTracker::JournalGroup(Plan* plan, GroupId group) {
  if (plan == nullptr) return;
  StartJournal(plan);
  auto [it, inserted] = plan->saved_groups_.try_emplace(group);
  if (!inserted) return;
  if (auto git = groups_.find(group); git != groups_.end()) {
    it->second = git->second;
  }
}

void GroupTracker::JournalCell(Plan* plan, std::uint64_t key) {
  if (plan == nullptr) return;
  StartJournal(plan);
  auto [it, inserted] = plan->saved_cells_.try_emplace(key);
  if (!inserted) return;
  if (auto cit = cells_.find(key); cit != cells_.end()) {
    it->second = cit->second;
  }
}

void GroupTracker::JournalGroupCell(Plan* plan, std::uint64_t key) {
  if (plan == nullptr) return;
  StartJournal(plan);
  auto [it, inserted] = plan->saved_group_cells_.try_emplace(key);
  if (!inserted) return;
  if (auto cit = group_cells_.find(key); cit != group_cells_.end()) {
    it->second = cit->second;
  }
}

void GroupTracker::Rollback(Plan& plan) {
  if (plan.journaling_) {
    for (auto& [id, saved] : plan.saved_objects_) {
      if (saved.has_value()) {
        objects_[id] = std::move(*saved);
      } else {
        objects_.erase(id);
      }
    }
    for (auto& [gid, saved] : plan.saved_groups_) {
      if (saved.has_value()) {
        groups_[gid] = std::move(*saved);
      } else {
        groups_.erase(gid);
      }
    }
    for (auto& [key, saved] : plan.saved_cells_) {
      if (saved.has_value()) {
        cells_[key] = std::move(*saved);
      } else {
        cells_.erase(key);
      }
    }
    for (auto& [key, saved] : plan.saved_group_cells_) {
      if (saved.has_value()) {
        group_cells_[key] = std::move(*saved);
      } else {
        group_cells_.erase(key);
      }
    }
    next_group_id_ = plan.saved_next_group_id_;
    grouped_objects_ = 0;
    for (const auto& [gid, g] : groups_) grouped_objects_ += g.members.size();
  }
  plan.transitions.clear();
  plan.rows.clear();
  plan.unlogged_splits = 0;
  plan.attr_store_.clear();
  plan.box_store_.clear();
  plan.saved_objects_.clear();
  plan.saved_groups_.clear();
  plan.saved_cells_.clear();
  plan.saved_group_cells_.clear();
  plan.journaling_ = false;
}

void GroupTracker::Commit(const Plan& plan) {
  if (!options_.enabled) return;
  std::uint64_t forms = 0;
  std::uint64_t joins = 0;
  std::uint64_t splits = plan.unlogged_splits;
  std::uint64_t refreshes = 0;
  for (const GroupTransition& t : plan.transitions) {
    switch (t.kind) {
      case GroupTransitionKind::kForm:
        ++forms;
        break;
      case GroupTransitionKind::kJoin:
        ++joins;
        break;
      case GroupTransitionKind::kLeave:
      case GroupTransitionKind::kDissolve:
        ++splits;
        break;
      case GroupTransitionKind::kRefresh:
        ++refreshes;
        break;
      case GroupTransitionKind::kLeaderChange:
        break;
    }
  }
  if (forms_counter_ != nullptr && forms > 0) forms_counter_->Increment(forms);
  if (joins_counter_ != nullptr && joins > 0) joins_counter_->Increment(joins);
  if (splits_counter_ != nullptr && splits > 0) {
    splits_counter_->Increment(splits);
  }
  if (leader_upserts_counter_ != nullptr && forms + refreshes > 0) {
    leader_upserts_counter_->Increment(forms + refreshes);
  }
  SyncGauges();
}

void GroupTracker::NoteHiddenRows(std::size_t n) {
  if (member_skips_counter_ != nullptr && n > 0) {
    member_skips_counter_->Increment(n);
  }
}

// -- Detection cells ---------------------------------------------------

void GroupTracker::CellInsert(Plan* plan, core::ObjectId id,
                              const core::PositionAttribute& attr) {
  const std::uint64_t key = CellKeyOf(attr);
  JournalCell(plan, key);
  cells_[key].push_back(id);
}

void GroupTracker::CellRemove(Plan* plan, core::ObjectId id,
                              const core::PositionAttribute& attr) {
  const std::uint64_t key = CellKeyOf(attr);
  auto it = cells_.find(key);
  if (it == cells_.end()) return;
  JournalCell(plan, key);
  auto vit = std::find(it->second.begin(), it->second.end(), id);
  if (vit != it->second.end()) it->second.erase(vit);
  if (it->second.empty()) cells_.erase(it);
}

void GroupTracker::GroupCellInsert(Plan* plan, GroupId group,
                                   const GroupModel& model) {
  const std::uint64_t key = CellKeyOf(model);
  JournalGroupCell(plan, key);
  group_cells_[key].push_back(group);
}

void GroupTracker::GroupCellRemove(Plan* plan, GroupId group,
                                   const GroupModel& model) {
  const std::uint64_t key = CellKeyOf(model);
  auto it = group_cells_.find(key);
  if (it == group_cells_.end()) return;
  JournalGroupCell(plan, key);
  auto vit = std::find(it->second.begin(), it->second.end(), group);
  if (vit != it->second.end()) it->second.erase(vit);
  if (it->second.empty()) group_cells_.erase(it);
}

// -- Cohesion ----------------------------------------------------------

double GroupTracker::CohesionPeak(const core::PositionAttribute& member,
                                  const GroupModel& model) const {
  const core::Time t0 = member.start_time;
  const core::Time t1 = member.start_time + horizon_;
  // |member line - group line| is affine in t, so its max over the window
  // is at an endpoint.
  const auto line_diff = [&](core::Time t) {
    return std::fabs(member.DatabaseRouteDistanceAt(t) - model.LineAt(t));
  };
  const double dmax = std::max(line_diff(t0), line_diff(t1));
  // The deviation bound is monotone between its critical times, so its max
  // is at a window edge or a critical time inside the window.
  double bmax = std::max(core::DeviationBound(member, 0.0),
                         core::DeviationBound(member, horizon_));
  for (core::Duration offset : core::BoundCriticalTimes(member)) {
    if (offset > 0.0 && offset < horizon_) {
      bmax = std::max(bmax, core::DeviationBound(member, offset));
    }
  }
  return dmax + bmax;
}

bool GroupTracker::Cohesive(const core::PositionAttribute& member,
                            const GroupModel& model, double width) const {
  if (member.route != model.route || member.direction != model.direction) {
    return false;
  }
  // Unknown max speed would make the envelope padding unbounded.
  if (member.max_speed <= 0.0) return false;
  if (model.vmax > 0.0 && member.max_speed > model.vmax) return false;
  return CohesionPeak(member, model) <= width;
}

bool GroupTracker::WindowContains(const GroupModel& model,
                                  const core::PositionAttribute& member) const {
  return member.start_time >= model.window_lo &&
         member.start_time + horizon_ <= model.window_hi;
}

// -- Envelope ----------------------------------------------------------

void GroupTracker::AppendEnvelopeRow(Plan* plan, GroupId group) {
  if (plan == nullptr) return;
  auto git = groups_.find(group);
  if (git == groups_.end()) return;
  AppendEnvelopeRowTo(plan, git->second, group);
}

void GroupTracker::AppendEnvelopeRowTo(Plan* plan, const GroupState& g,
                                       GroupId id) const {
  const auto route = network_->FindRoute(g.model.route);
  if (!route.ok()) return;
  // Synthesize the attribute whose database position *is* the group line
  // over the window: the o-plane builder then produces boxes tracking
  // LineAt(t) exactly (the leader's policy parameters only add slack on
  // top). Anchoring at window_lo makes the builder's [start, start+horizon]
  // slabs cover [window_lo, window_hi].
  core::PositionAttribute attr;
  if (auto lit = objects_.find(g.leader); lit != objects_.end()) {
    attr = lit->second.attr;
  }
  attr.route = g.model.route;
  attr.direction = g.model.direction;
  attr.speed = g.model.speed;
  attr.start_time = g.model.window_lo;
  attr.start_route_distance = g.model.LineAt(g.model.window_lo);
  const double length = (*route)->Length();
  attr.start_position = (*route)->PointAt(
      std::clamp(attr.start_route_distance, 0.0, length));
  attr.max_speed = std::max(g.model.vmax, std::fabs(g.model.speed));
  index::OPlaneOptions opts = base_oplane_;
  opts.horizon = std::max(0.0, g.model.window_hi - g.model.window_lo);
  // Soundness margin (DESIGN.md §13): every member's uncertainty stays
  // within `width` of the line, and a member time slab (width <= the base
  // slab) can straddle two envelope slabs, costing at most one slab of
  // line drift plus member spread — all in route-distance, which the
  // 1-Lipschitz route shape turns into the same Euclidean inflation.
  opts.padding = base_oplane_.padding + g.model.width +
                 (std::fabs(g.model.speed) + g.model.vmax) *
                     base_oplane_.slab_width;
  plan->attr_store_.push_back(attr);
  plan->box_store_.push_back(
      index::BuildOPlaneBoxes(plan->attr_store_.back(), **route, opts));
  plan->rows.push_back(IndexRow{EnvelopeIdFor(id), &plan->attr_store_.back(),
                                &plan->box_store_.back(), false});
}

// -- Membership machinery ---------------------------------------------

void GroupTracker::RefreshWindow(Plan* plan, GroupId group) {
  auto git = groups_.find(group);
  if (git == groups_.end()) return;
  GroupState& g = git->second;
  JournalGroup(plan, group);
  core::Time lo = std::numeric_limits<double>::infinity();
  core::Time hi = -std::numeric_limits<double>::infinity();
  for (core::ObjectId m : g.members) {
    if (auto oit = objects_.find(m); oit != objects_.end()) {
      lo = std::min(lo, oit->second.attr.start_time);
      hi = std::max(hi, oit->second.attr.start_time);
    }
  }
  if (!std::isfinite(lo)) return;
  g.model.window_lo = lo;
  g.model.window_hi = hi + horizon_ + slack_;
  if (plan != nullptr) {
    plan->transitions.push_back(GroupTransition{GroupTransitionKind::kRefresh,
                                                group, g.leader, g.model,
                                                {}});
    AppendEnvelopeRow(plan, group);
  }
}

void GroupTracker::RemoveFromGroup(Plan* plan, GroupId group,
                                   core::ObjectId id, bool log, bool erased) {
  auto git = groups_.find(group);
  if (git == groups_.end()) return;
  GroupState& g = git->second;
  JournalGroup(plan, group);
  if (!SortedErase(&g.members, id)) return;
  --grouped_objects_;
  if (auto oit = objects_.find(id); oit != objects_.end()) {
    JournalObject(plan, id);
    oit->second.group = 0;
    if (!erased && !IsEnvelopeId(id)) CellInsert(plan, id, oit->second.attr);
  }
  if (plan != nullptr) {
    if (log) {
      plan->transitions.push_back(GroupTransition{
          GroupTransitionKind::kLeave, group, g.leader, GroupModel{}, {id}});
    } else {
      ++plan->unlogged_splits;
    }
  }
  if (id == g.leader && !g.members.empty()) {
    // Freshest start_time wins; sorted iteration with strict '>' breaks
    // ties toward the lowest id — deterministic, so erase-driven
    // re-elections replay identically without being logged.
    core::ObjectId best = g.members.front();
    core::Time best_start = -std::numeric_limits<double>::infinity();
    for (core::ObjectId m : g.members) {
      auto mit = objects_.find(m);
      if (mit == objects_.end()) continue;
      if (mit->second.attr.start_time > best_start) {
        best = m;
        best_start = mit->second.attr.start_time;
      }
    }
    g.leader = best;
    if (log && plan != nullptr) {
      plan->transitions.push_back(GroupTransition{
          GroupTransitionKind::kLeaderChange, group, best, GroupModel{}, {}});
    }
  }
  if (g.members.size() < options_.min_group_size) {
    DissolveGroup(plan, group, log);
  }
}

void GroupTracker::DissolveGroup(Plan* plan, GroupId group, bool log) {
  auto git = groups_.find(group);
  if (git == groups_.end()) return;
  JournalGroup(plan, group);
  const GroupState g = std::move(git->second);
  if (plan != nullptr) {
    if (log) {
      plan->transitions.push_back(GroupTransition{
          GroupTransitionKind::kDissolve, group, g.leader, GroupModel{},
          g.members});
    } else {
      ++plan->unlogged_splits;
    }
  }
  for (core::ObjectId m : g.members) {
    auto oit = objects_.find(m);
    if (oit == objects_.end()) continue;
    JournalObject(plan, m);
    oit->second.group = 0;
    if (!IsEnvelopeId(m)) CellInsert(plan, m, oit->second.attr);
    if (plan != nullptr) {
      // Re-materialize: the member gets its own boxes back.
      plan->attr_store_.push_back(oit->second.attr);
      plan->rows.push_back(
          IndexRow{m, &plan->attr_store_.back(), nullptr, false});
    }
  }
  grouped_objects_ -= g.members.size();
  if (plan != nullptr) {
    plan->rows.push_back(
        IndexRow{EnvelopeIdFor(group), nullptr, nullptr, false});
  }
  GroupCellRemove(plan, group, g.model);
  groups_.erase(group);
}

void GroupTracker::TryJoinOrForm(Plan* plan, core::ObjectId id,
                                 const core::PositionAttribute& attr) {
  if (IsEnvelopeId(id) || attr.max_speed <= 0.0) return;
  if (!network_->FindRoute(attr.route).ok()) return;
  const std::uint64_t key = CellKeyOf(attr);
  // Join an existing group in the same detection cell (tighter join
  // window: hysteresis against boundary thrash).
  if (auto git = group_cells_.find(key); git != group_cells_.end()) {
    for (GroupId gid : git->second) {
      auto g_it = groups_.find(gid);
      if (g_it == groups_.end()) continue;
      GroupState& g = g_it->second;
      if (attr.start_time < g.model.window_lo) continue;
      if (!Cohesive(attr, g.model, options_.join_window)) continue;
      JournalGroup(plan, gid);
      JournalObject(plan, id);
      objects_.at(id).group = gid;
      CellRemove(plan, id, attr);
      SortedInsert(&g.members, id);
      ++grouped_objects_;
      if (plan != nullptr) {
        plan->transitions.push_back(GroupTransition{
            GroupTransitionKind::kJoin, gid, g.leader, GroupModel{}, {id}});
      }
      if (!WindowContains(g.model, attr)) RefreshWindow(plan, gid);
      return;
    }
  }
  // Form a new group: anchor the line at the updater and admit cell peers
  // that fit the tube over their own horizons.
  auto cit = cells_.find(key);
  if (cit == cells_.end()) return;
  GroupModel model;
  model.route = attr.route;
  model.direction = attr.direction;
  model.speed = attr.speed;
  model.anchor_time = attr.start_time;
  model.anchor_distance = attr.start_route_distance;
  model.vmax = 0.0;  // no cap while screening; fixed to the max below
  model.width = options_.cohesion_window;
  std::vector<core::ObjectId> members{id};
  std::size_t scanned = 0;
  for (core::ObjectId peer : cit->second) {
    if (peer == id) continue;
    if (scanned++ >= options_.max_form_scan) break;
    auto pit = objects_.find(peer);
    if (pit == objects_.end()) continue;
    const core::PositionAttribute& pa = pit->second.attr;
    if (pa.max_speed <= 0.0) continue;
    if (!Cohesive(pa, model, options_.join_window)) continue;
    members.push_back(peer);
  }
  if (members.size() < options_.min_group_size) return;
  double vmax = 0.0;
  core::Time lo = attr.start_time;
  core::Time hi = attr.start_time;
  for (core::ObjectId m : members) {
    const core::PositionAttribute& ma = objects_.at(m).attr;
    vmax = std::max(vmax, ma.max_speed);
    lo = std::min(lo, ma.start_time);
    hi = std::max(hi, ma.start_time);
  }
  model.vmax = vmax;
  model.window_lo = lo;
  model.window_hi = hi + horizon_ + slack_;
  StartJournal(plan);
  const GroupId gid = next_group_id_++;
  std::sort(members.begin(), members.end());
  JournalGroup(plan, gid);
  for (core::ObjectId m : members) {
    JournalObject(plan, m);
    ObjState& st = objects_.at(m);
    st.group = gid;
    CellRemove(plan, m, st.attr);
  }
  grouped_objects_ += members.size();
  groups_.emplace(gid, GroupState{id, model, members});
  GroupCellInsert(plan, gid, model);
  if (plan != nullptr) {
    plan->transitions.push_back(
        GroupTransition{GroupTransitionKind::kForm, gid, id, model, members});
    for (core::ObjectId m : members) {
      // The updater's own batch row is rewritten to hidden by the caller;
      // passive peers need explicit hidden installs (their boxes leave the
      // tree here — the group's whole saving).
      if (m == id) continue;
      plan->attr_store_.push_back(objects_.at(m).attr);
      plan->rows.push_back(
          IndexRow{m, &plan->attr_store_.back(), nullptr, true});
    }
    AppendEnvelopeRow(plan, gid);
  }
}

// -- Write-path entry points ------------------------------------------

void GroupTracker::PlanUpdate(core::ObjectId id,
                              const core::PositionAttribute& attr,
                              Plan* plan) {
  if (!options_.enabled) return;
  auto it = objects_.find(id);
  if (it == objects_.end()) {
    // First sighting through the update path (defensive; inserts normally
    // arrive via ObserveInsert).
    JournalObject(plan, id);
    objects_.emplace(id, ObjState{attr, 0});
    if (!IsEnvelopeId(id)) {
      CellInsert(plan, id, attr);
      TryJoinOrForm(plan, id, attr);
    }
    return;
  }
  ObjState& st = it->second;
  if (st.group != 0 && groups_.find(st.group) == groups_.end()) {
    st.group = 0;  // defensive: dangling membership
  }
  if (st.group != 0) {
    const GroupId gid = st.group;
    const GroupState& g = groups_.find(gid)->second;
    if (Cohesive(attr, g.model, options_.cohesion_window)) {
      JournalObject(plan, id);
      st.attr = attr;
      if (!WindowContains(g.model, attr)) RefreshWindow(plan, gid);
      return;
    }
    // Cohesion broke: split off, then give the deviator a fresh chance to
    // join or form with its new motion.
    JournalObject(plan, id);
    st.attr = attr;
    RemoveFromGroup(plan, gid, id, /*log=*/true, /*erased=*/false);
    TryJoinOrForm(plan, id, attr);
    return;
  }
  // Ungrouped: keep the detection cell current, then try to cluster.
  JournalObject(plan, id);
  if (!IsEnvelopeId(id) && CellKeyOf(st.attr) != CellKeyOf(attr)) {
    CellRemove(plan, id, st.attr);
    st.attr = attr;
    CellInsert(plan, id, attr);
  } else {
    st.attr = attr;
  }
  TryJoinOrForm(plan, id, attr);
}

void GroupTracker::ObserveAttrOnly(core::ObjectId id,
                                   const core::PositionAttribute& attr) {
  if (!options_.enabled) return;
  auto it = objects_.find(id);
  if (it == objects_.end()) {
    objects_.emplace(id, ObjState{attr, 0});
    if (!IsEnvelopeId(id)) CellInsert(nullptr, id, attr);
    return;
  }
  ObjState& st = it->second;
  if (st.group == 0 && !IsEnvelopeId(id) &&
      CellKeyOf(st.attr) != CellKeyOf(attr)) {
    CellRemove(nullptr, id, st.attr);
    st.attr = attr;
    CellInsert(nullptr, id, attr);
    return;
  }
  st.attr = attr;
}

void GroupTracker::ObserveInsert(core::ObjectId id,
                                 const core::PositionAttribute& attr) {
  if (!options_.enabled) return;
  auto [it, inserted] = objects_.try_emplace(id, ObjState{attr, 0});
  if (!inserted) {
    ObserveAttrOnly(id, attr);
    return;
  }
  if (!IsEnvelopeId(id)) CellInsert(nullptr, id, attr);
}

void GroupTracker::ObserveErase(core::ObjectId id, Plan* plan) {
  if (!options_.enabled) return;
  auto it = objects_.find(id);
  if (it == objects_.end()) return;
  JournalObject(plan, id);
  const GroupId gid = it->second.group;
  if (gid != 0) {
    RemoveFromGroup(plan, gid, id, /*log=*/false, /*erased=*/true);
  } else if (!IsEnvelopeId(id)) {
    CellRemove(plan, id, it->second.attr);
  }
  objects_.erase(id);
  SyncGauges();
}

// -- Replay / persistence ---------------------------------------------

void GroupTracker::ApplyTransitions(
    const std::vector<GroupTransition>& transitions) {
  if (!options_.enabled) return;
  for (const GroupTransition& t : transitions) {
    switch (t.kind) {
      case GroupTransitionKind::kForm: {
        GroupState g;
        g.leader = t.leader;
        g.model = t.model;
        g.members = t.members;
        std::sort(g.members.begin(), g.members.end());
        for (core::ObjectId m : g.members) {
          auto oit = objects_.find(m);
          if (oit == objects_.end()) continue;
          oit->second.group = t.group;
          CellRemove(nullptr, m, oit->second.attr);
        }
        grouped_objects_ += g.members.size();
        GroupCellInsert(nullptr, t.group, g.model);
        groups_[t.group] = std::move(g);
        next_group_id_ = std::max(next_group_id_, t.group + 1);
        break;
      }
      case GroupTransitionKind::kJoin: {
        auto git = groups_.find(t.group);
        if (git == groups_.end() || t.members.empty()) break;
        const core::ObjectId m = t.members.front();
        SortedInsert(&git->second.members, m);
        ++grouped_objects_;
        if (auto oit = objects_.find(m); oit != objects_.end()) {
          oit->second.group = t.group;
          CellRemove(nullptr, m, oit->second.attr);
        }
        break;
      }
      case GroupTransitionKind::kLeave: {
        auto git = groups_.find(t.group);
        if (git == groups_.end() || t.members.empty()) break;
        const core::ObjectId m = t.members.front();
        if (SortedErase(&git->second.members, m)) --grouped_objects_;
        if (auto oit = objects_.find(m);
            oit != objects_.end() && oit->second.group == t.group) {
          oit->second.group = 0;
          if (!IsEnvelopeId(m)) CellInsert(nullptr, m, oit->second.attr);
        }
        break;
      }
      case GroupTransitionKind::kDissolve: {
        auto git = groups_.find(t.group);
        if (git == groups_.end()) break;
        const GroupState g = std::move(git->second);
        for (core::ObjectId m : g.members) {
          if (auto oit = objects_.find(m); oit != objects_.end()) {
            oit->second.group = 0;
            if (!IsEnvelopeId(m)) CellInsert(nullptr, m, oit->second.attr);
          }
        }
        grouped_objects_ -= g.members.size();
        GroupCellRemove(nullptr, t.group, g.model);
        groups_.erase(t.group);
        break;
      }
      case GroupTransitionKind::kLeaderChange: {
        if (auto git = groups_.find(t.group); git != groups_.end()) {
          git->second.leader = t.leader;
        }
        break;
      }
      case GroupTransitionKind::kRefresh: {
        // The model's speed never changes on refresh, so the group's
        // detection cell stays put.
        if (auto git = groups_.find(t.group); git != groups_.end()) {
          git->second.model = t.model;
        }
        break;
      }
    }
  }
  SyncGauges();
}

void GroupTracker::RestoreGroups(const std::vector<PersistedGroup>& groups,
                                 GroupId next_group_id) {
  if (!options_.enabled) return;
  for (const PersistedGroup& pg : groups) {
    GroupState g;
    g.leader = pg.leader;
    g.model = pg.model;
    for (core::ObjectId m : pg.members) {
      auto oit = objects_.find(m);
      if (oit == objects_.end() || oit->second.group != 0) continue;
      g.members.push_back(m);
      oit->second.group = pg.id;
      CellRemove(nullptr, m, oit->second.attr);
    }
    if (g.members.empty()) continue;
    std::sort(g.members.begin(), g.members.end());
    if (!std::binary_search(g.members.begin(), g.members.end(), g.leader)) {
      // Leader record did not survive: deterministic re-election.
      core::ObjectId best = g.members.front();
      core::Time best_start = -std::numeric_limits<double>::infinity();
      for (core::ObjectId m : g.members) {
        const core::Time s = objects_.at(m).attr.start_time;
        if (s > best_start) {
          best = m;
          best_start = s;
        }
      }
      g.leader = best;
    }
    grouped_objects_ += g.members.size();
    GroupCellInsert(nullptr, pg.id, g.model);
    groups_[pg.id] = std::move(g);
    next_group_id_ = std::max(next_group_id_, pg.id + 1);
  }
  next_group_id_ = std::max(next_group_id_, next_group_id);
  SyncGauges();
}

std::vector<PersistedGroup> GroupTracker::ExportGroups() const {
  std::vector<PersistedGroup> out;
  out.reserve(groups_.size());
  for (const auto& [gid, g] : groups_) {
    out.push_back(PersistedGroup{gid, g.leader, g.model, g.members});
  }
  return out;
}

void GroupTracker::Revalidate() {
  if (!options_.enabled || groups_.empty()) return;
  // Collect first (deterministic: map + sorted members), then cascade —
  // a cascade can dissolve a group and re-cell its members, which must
  // not perturb the scan.
  std::vector<std::pair<GroupId, core::ObjectId>> evict;
  for (const auto& [gid, g] : groups_) {
    for (core::ObjectId m : g.members) {
      auto oit = objects_.find(m);
      bool ok = oit != objects_.end();
      if (ok) {
        const core::PositionAttribute& a = oit->second.attr;
        ok = WindowContains(g.model, a) && Cohesive(a, g.model, g.model.width);
      }
      if (!ok) evict.emplace_back(gid, m);
    }
  }
  for (const auto& [gid, m] : evict) {
    auto git = groups_.find(gid);
    if (git == groups_.end()) continue;
    if (!std::binary_search(git->second.members.begin(),
                            git->second.members.end(), m)) {
      continue;  // its group dissolved under an earlier eviction
    }
    RemoveFromGroup(nullptr, gid, m, /*log=*/false, /*erased=*/false);
  }
  SyncGauges();
}

void GroupTracker::AppendCollapseRows(Plan* plan) const {
  if (!options_.enabled || plan == nullptr) return;
  for (const auto& [gid, g] : groups_) {
    for (core::ObjectId m : g.members) {
      auto oit = objects_.find(m);
      if (oit == objects_.end()) continue;
      plan->attr_store_.push_back(oit->second.attr);
      plan->rows.push_back(
          IndexRow{m, &plan->attr_store_.back(), nullptr, true});
    }
    AppendEnvelopeRowTo(plan, g, gid);
  }
}

// -- Query path --------------------------------------------------------

void GroupTracker::ExpandCandidates(std::vector<core::ObjectId>* ids,
                                    const geo::Polygon& region, core::Time t1,
                                    core::Time t2,
                                    const index::ObjectIndex& index) const {
  if (!options_.enabled || ids == nullptr || ids->empty()) return;
  bool any = false;
  for (core::ObjectId id : *ids) {
    if (IsEnvelopeId(id)) {
      any = true;
      break;
    }
  }
  if (!any) return;
  std::vector<core::ObjectId> out;
  out.reserve(ids->size());
  for (core::ObjectId id : *ids) {
    if (!IsEnvelopeId(id)) {
      out.push_back(id);
      continue;
    }
    auto git = groups_.find(GroupOfEnvelopeId(id));
    if (git == groups_.end()) continue;
    for (core::ObjectId m : git->second.members) {
      auto oit = objects_.find(m);
      if (oit == objects_.end()) continue;
      // Exact per-member candidacy: the same test the member's own boxes
      // would have answered with group tracking off.
      if (index.WouldMatchWindow(m, oit->second.attr, region, t1, t2)) {
        out.push_back(m);
      }
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  *ids = std::move(out);
}

GroupId GroupTracker::GroupOf(core::ObjectId id) const {
  auto it = objects_.find(id);
  return it == objects_.end() ? 0 : it->second.group;
}

// -- Metrics -----------------------------------------------------------

void GroupTracker::SetMetrics(util::MetricsRegistry* registry,
                              const std::string& prefix) {
  DetachMetrics();
  if (registry == nullptr) return;
  forms_counter_ = registry->GetCounter(prefix + "forms");
  splits_counter_ = registry->GetCounter(prefix + "splits");
  joins_counter_ = registry->GetCounter(prefix + "joins");
  leader_upserts_counter_ = registry->GetCounter(prefix + "leader_upserts");
  member_skips_counter_ = registry->GetCounter(prefix + "member_skips");
  count_gauge_ = registry->GetGauge(prefix + "count");
  size_gauge_ = registry->GetGauge(prefix + "size");
  SyncGauges();
}

void GroupTracker::DetachMetrics() {
  // Withdraw this tracker's contribution from shared gauges before
  // letting go of them.
  if (count_gauge_ != nullptr) count_gauge_->Add(-pushed_count_);
  if (size_gauge_ != nullptr) size_gauge_->Add(-pushed_size_);
  forms_counter_ = nullptr;
  splits_counter_ = nullptr;
  joins_counter_ = nullptr;
  leader_upserts_counter_ = nullptr;
  member_skips_counter_ = nullptr;
  count_gauge_ = nullptr;
  size_gauge_ = nullptr;
  pushed_count_ = 0;
  pushed_size_ = 0;
}

void GroupTracker::SyncGauges() {
  if (count_gauge_ != nullptr) {
    const auto v = static_cast<std::int64_t>(groups_.size());
    count_gauge_->Add(v - pushed_count_);
    pushed_count_ = v;
  }
  if (size_gauge_ != nullptr) {
    const auto v = static_cast<std::int64_t>(grouped_objects_);
    size_gauge_->Add(v - pushed_size_);
    pushed_size_ = v;
  }
}

}  // namespace modb::db
