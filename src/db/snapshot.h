#ifndef MODB_DB_SNAPSHOT_H_
#define MODB_DB_SNAPSHOT_H_

#include <iosfwd>
#include <memory>
#include <string>

#include "db/mod_database.h"
#include "geo/route_network.h"
#include "util/status.h"

namespace modb::db {

/// A database loaded from a snapshot, bundled with the route network it
/// references (the network must outlive the database, so both travel
/// together; destruction order — members in reverse — is correct).
struct LoadedSnapshot {
  std::unique_ptr<geo::RouteNetwork> network;
  std::unique_ptr<ModDatabase> database;
};

/// Writes the full database state — options, every route of the network,
/// and every moving object's position attribute — to `out` in a versioned
/// line-oriented text format. The update log is not persisted (it is a
/// measurement instrument, not state).
util::Status WriteSnapshot(const ModDatabase& db, std::ostream& out);

/// `WriteSnapshot` to a file path.
util::Status SaveSnapshot(const ModDatabase& db, const std::string& path);

/// Reads a snapshot produced by `WriteSnapshot`. Returns a fresh network
/// plus a database populated with the saved objects, or InvalidArgument on
/// malformed input.
util::Result<LoadedSnapshot> ReadSnapshot(std::istream& in);

/// `ReadSnapshot` from a file path (NotFound when unreadable).
util::Result<LoadedSnapshot> LoadSnapshot(const std::string& path);

}  // namespace modb::db

#endif  // MODB_DB_SNAPSHOT_H_
