#include "util/histogram.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

namespace modb::util {

Histogram::Histogram(double lo, double hi, std::size_t num_buckets)
    : lo_(lo), hi_(hi), bucket_width_((hi - lo) / static_cast<double>(num_buckets)),
      buckets_(num_buckets, 0) {
  assert(lo < hi);
  assert(num_buckets >= 1);
}

void Histogram::Add(double x) {
  ++count_;
  // NaN fails both range guards below and a NaN-derived double-to-size_t
  // cast is UB, so non-finite observations get their own counted bucket
  // (infinities included: an infinite "latency" is a measurement bug, not
  // an overflow — surfacing it beats folding it into the tail).
  if (!std::isfinite(x)) {
    ++invalid_;
    return;
  }
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  auto idx = static_cast<std::size_t>((x - lo_) / bucket_width_);
  idx = std::min(idx, buckets_.size() - 1);  // Guard rounding at the top edge.
  ++buckets_[idx];
}

void Histogram::AddBucketCount(std::size_t i, std::size_t n) {
  assert(i < buckets_.size());
  // Checked in release builds too: callers feed externally accumulated
  // bucket indexes (metrics snapshots), and an out-of-range write would
  // corrupt the heap where the assert compiled out. The mass still counts
  // as invalid so totals reconcile.
  if (i >= buckets_.size()) {
    count_ += n;
    invalid_ += n;
    return;
  }
  buckets_[i] += n;
  count_ += n;
}

double Histogram::bucket_lo(std::size_t i) const {
  return lo_ + bucket_width_ * static_cast<double>(i);
}

double Histogram::bucket_hi(std::size_t i) const {
  return lo_ + bucket_width_ * static_cast<double>(i + 1);
}

double Histogram::ApproxQuantile(double q) const {
  // Invalid observations carry no position, so the quantile ranks only the
  // finite mass (see the header contract for the lo_/hi_ clamp semantics
  // when the target rank lands in the under/overflow tails).
  const std::size_t finite = count_ - invalid_;
  if (finite == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target =
      static_cast<std::size_t>(q * static_cast<double>(finite - 1));
  std::size_t seen = underflow_;
  if (target < seen) return lo_;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (target < seen) return 0.5 * (bucket_lo(i) + bucket_hi(i));
  }
  return hi_;
}

std::string Histogram::ToString(std::size_t width) const {
  std::size_t peak = 1;
  for (std::size_t c : buckets_) peak = std::max(peak, c);
  std::string out;
  char line[160];
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    const auto bar = static_cast<std::size_t>(
        static_cast<double>(buckets_[i]) / static_cast<double>(peak) *
        static_cast<double>(width));
    std::snprintf(line, sizeof(line), "[%10.3f, %10.3f) %8zu ",
                  bucket_lo(i), bucket_hi(i), buckets_[i]);
    out += line;
    out.append(bar, '#');
    out += '\n';
  }
  if (underflow_ > 0) {
    std::snprintf(line, sizeof(line), "underflow: %zu\n", underflow_);
    out += line;
  }
  if (overflow_ > 0) {
    std::snprintf(line, sizeof(line), "overflow: %zu\n", overflow_);
    out += line;
  }
  if (invalid_ > 0) {
    std::snprintf(line, sizeof(line), "invalid (non-finite): %zu\n", invalid_);
    out += line;
  }
  return out;
}

}  // namespace modb::util
