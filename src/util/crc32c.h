#ifndef MODB_UTIL_CRC32C_H_
#define MODB_UTIL_CRC32C_H_

#include <cstdint>
#include <string_view>

namespace modb::util {

/// CRC-32C (Castagnoli polynomial 0x1EDC6F41, reflected), the checksum used
/// by iSCSI, ext4 and the WAL record frames. Table-driven software
/// implementation; `Extend` allows incremental computation over chunks.
std::uint32_t Crc32c(std::string_view data);

/// Extends a running CRC with more bytes: `Extend(Crc32c(a), b) ==
/// Crc32c(a + b)`.
std::uint32_t Crc32cExtend(std::uint32_t crc, std::string_view data);

/// Masked CRC (the rotation+offset scheme of LevelDB/TFRecord): storing a
/// CRC of data that itself contains CRCs is hazardous — masking makes the
/// stored form distinguishable from a raw CRC of the frame bytes.
std::uint32_t Crc32cMask(std::uint32_t crc);
std::uint32_t Crc32cUnmask(std::uint32_t masked);

}  // namespace modb::util

#endif  // MODB_UTIL_CRC32C_H_
