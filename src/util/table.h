#ifndef MODB_UTIL_TABLE_H_
#define MODB_UTIL_TABLE_H_

#include <cstddef>
#include <string>
#include <vector>

namespace modb::util {

/// Column-aligned table builder for experiment output.
///
/// The benchmark harnesses print paper-style tables with it and can also
/// emit CSV for external plotting.
class Table {
 public:
  /// Creates a table with the given column headers.
  explicit Table(std::vector<std::string> headers);

  /// Starts a new row. Subsequent Add* calls fill it left to right.
  Table& NewRow();

  /// Appends a string cell to the current row.
  Table& Add(std::string cell);

  /// Appends a numeric cell formatted with `precision` fractional digits.
  Table& Add(double value, int precision = 3);

  /// Appends an integer cell.
  Table& Add(std::size_t value);
  Table& Add(int value);

  std::size_t num_rows() const { return rows_.size(); }
  std::size_t num_cols() const { return headers_.size(); }

  /// Cell accessor (row-major); header row excluded.
  const std::string& cell(std::size_t row, std::size_t col) const;

  /// Renders an aligned ASCII table.
  std::string ToString() const;

  /// Renders RFC-4180-ish CSV (cells containing commas/quotes are quoted).
  std::string ToCsv() const;

  /// Writes `ToCsv()` to `path`. Returns false on I/O failure.
  bool WriteCsv(const std::string& path) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace modb::util

#endif  // MODB_UTIL_TABLE_H_
