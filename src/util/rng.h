#ifndef MODB_UTIL_RNG_H_
#define MODB_UTIL_RNG_H_

#include <cstdint>
#include <vector>

namespace modb::util {

/// Deterministic pseudo-random number generator (xoshiro256**).
///
/// Every stochastic component in the library draws from an explicitly seeded
/// `Rng` so that simulations and experiments are reproducible bit-for-bit.
/// The generator satisfies the C++ UniformRandomBitGenerator concept.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the generator. Two generators seeded identically produce
  /// identical streams.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  /// Returns the next 64 raw bits.
  result_type operator()() { return Next(); }

  /// Returns the next 64 raw bits.
  std::uint64_t Next();

  /// Returns a double uniformly distributed in [0, 1).
  double Uniform();

  /// Returns a double uniformly distributed in [lo, hi).
  double Uniform(double lo, double hi);

  /// Returns an integer uniformly distributed in [lo, hi] (inclusive).
  /// Requires lo <= hi.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi);

  /// Returns true with probability `p` (clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Returns a normal variate with the given mean and standard deviation
  /// (Box-Muller; one spare variate is cached).
  double Normal(double mean = 0.0, double stddev = 1.0);

  /// Returns an exponential variate with the given rate lambda (> 0).
  double Exponential(double lambda);

  /// Returns an index in [0, weights.size()) drawn with probability
  /// proportional to `weights[i]` (all weights must be >= 0, sum > 0).
  std::size_t Categorical(const std::vector<double>& weights);

  /// Forks an independent generator whose stream is decorrelated from this
  /// one. Useful to give each simulated vehicle its own stream.
  Rng Fork();

 private:
  std::uint64_t state_[4];
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace modb::util

#endif  // MODB_UTIL_RNG_H_
