#ifndef MODB_UTIL_RETRY_H_
#define MODB_UTIL_RETRY_H_

#include <cstdint>

#include "util/rng.h"

namespace modb::util {

/// Capped exponential backoff with deterministic, seeded jitter.
///
/// The shard supervisor uses one policy instance per shard to pace
/// re-recovery attempts: the first retry waits `initial_delay_ms`, each
/// further attempt doubles (times `multiplier`) up to `max_delay_ms`, and
/// every delay is jittered by up to `jitter_fraction` of itself so a fleet
/// of quarantined shards does not re-recover in lockstep. Jitter draws from
/// a seeded xoshiro stream, so a given (seed, attempt) pair always yields
/// the same delay — tests and the E18 chaos schedule are reproducible
/// bit-for-bit.
class RetryPolicy {
 public:
  struct Options {
    /// Delay before the first retry.
    std::uint64_t initial_delay_ms = 10;
    /// Upper bound any single delay is clamped to (pre-jitter).
    std::uint64_t max_delay_ms = 5000;
    /// Growth factor between consecutive attempts. Values < 1 are treated
    /// as 1 (constant backoff).
    double multiplier = 2.0;
    /// Each delay is scaled by a factor drawn uniformly from
    /// [1 - jitter_fraction, 1 + jitter_fraction], clamped to [0, 1].
    double jitter_fraction = 0.2;
    /// Attempts after which `ShouldRetry` reports false. 0 = unlimited.
    std::uint64_t max_attempts = 0;
    /// Seed for the jitter stream.
    std::uint64_t seed = 7;
  };

  RetryPolicy() : RetryPolicy(Options()) {}
  explicit RetryPolicy(Options options);

  /// Delay (ms) to wait before the next attempt, then advances the attempt
  /// counter. The first call returns ~initial_delay_ms.
  std::uint64_t NextDelayMs();

  /// Deterministic delay for `attempt` (0-based) without advancing state —
  /// what `NextDelayMs` would have returned on that attempt given the same
  /// seed. Lets callers publish a retry-after hint for an attempt the
  /// background loop has not made yet.
  std::uint64_t DelayForAttempt(std::uint64_t attempt) const;

  /// False once `max_attempts` (when nonzero) have been consumed.
  bool ShouldRetry() const;

  /// Attempts consumed so far (number of `NextDelayMs` calls).
  std::uint64_t attempts() const { return attempts_; }

  /// Resets the attempt counter and jitter stream, as after a successful
  /// recovery re-admits the shard.
  void Reset();

  const Options& options() const { return options_; }

 private:
  std::uint64_t JitteredDelay(std::uint64_t attempt, Rng& rng) const;

  Options options_;
  Rng rng_;
  std::uint64_t attempts_ = 0;
};

}  // namespace modb::util

#endif  // MODB_UTIL_RETRY_H_
