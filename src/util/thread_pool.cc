#include "util/thread_pool.h"

#include <atomic>
#include <memory>

namespace modb::util {

ThreadPool::ThreadPool(std::size_t num_threads) {
  threads_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::ParallelFor(std::size_t n,
                             const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (threads_.empty() || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  // Shared by the caller and the helper tasks. Helpers that wake up after
  // every index is claimed touch only `state` (kept alive by the
  // shared_ptr), never `fn`, so the caller may safely return — and `fn` go
  // out of scope — as soon as `done` reaches `n`.
  struct State {
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::size_t n = 0;
    const std::function<void(std::size_t)>* fn = nullptr;
    std::mutex mu;
    std::condition_variable cv;
  };
  auto state = std::make_shared<State>();
  state->n = n;
  state->fn = &fn;

  auto run = [state] {
    std::size_t completed = 0;
    for (;;) {
      const std::size_t i =
          state->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= state->n) break;
      (*state->fn)(i);
      ++completed;
    }
    if (completed > 0 &&
        state->done.fetch_add(completed, std::memory_order_acq_rel) +
                completed ==
            state->n) {
      std::lock_guard<std::mutex> lock(state->mu);
      state->cv.notify_all();
    }
  };

  const std::size_t helpers = std::min(threads_.size(), n - 1);
  for (std::size_t h = 0; h < helpers; ++h) Submit(run);
  run();  // the caller claims indices too

  std::unique_lock<std::mutex> lock(state->mu);
  state->cv.wait(lock, [&] {
    return state->done.load(std::memory_order_acquire) == state->n;
  });
}

}  // namespace modb::util
