#include "util/retry.h"

#include <algorithm>
#include <cmath>

namespace modb::util {

RetryPolicy::RetryPolicy(Options options)
    : options_(options), rng_(options.seed) {}

std::uint64_t RetryPolicy::JitteredDelay(std::uint64_t attempt,
                                         Rng& rng) const {
  const double multiplier = std::max(1.0, options_.multiplier);
  double delay = static_cast<double>(options_.initial_delay_ms) *
                 std::pow(multiplier, static_cast<double>(attempt));
  const double cap = static_cast<double>(options_.max_delay_ms);
  delay = std::min(delay, cap);
  const double jitter =
      std::clamp(options_.jitter_fraction, 0.0, 1.0);
  if (jitter > 0.0) {
    delay *= rng.Uniform(1.0 - jitter, 1.0 + jitter);
  } else {
    // Keep the stream position identical whether or not jitter is on, so
    // flipping jitter_fraction never re-times later attempts.
    (void)rng.Uniform();
  }
  delay = std::min(std::max(delay, 0.0),
                   cap * (1.0 + jitter));
  return static_cast<std::uint64_t>(std::llround(delay));
}

std::uint64_t RetryPolicy::NextDelayMs() {
  return JitteredDelay(attempts_++, rng_);
}

std::uint64_t RetryPolicy::DelayForAttempt(std::uint64_t attempt) const {
  // Replay the jitter stream from the seed up to `attempt`: one draw per
  // attempt keeps this exactly in step with NextDelayMs.
  Rng rng(options_.seed);
  for (std::uint64_t i = 0; i < attempt; ++i) (void)rng.Uniform();
  return JitteredDelay(attempt, rng);
}

bool RetryPolicy::ShouldRetry() const {
  return options_.max_attempts == 0 || attempts_ < options_.max_attempts;
}

void RetryPolicy::Reset() {
  attempts_ = 0;
  rng_ = Rng(options_.seed);
}

}  // namespace modb::util
