#include "util/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace modb::util {

void RunningStat::Add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStat::Merge(const RunningStat& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void RunningStat::Reset() { *this = RunningStat(); }

double RunningStat::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double PercentileOfSorted(const std::vector<double>& sorted, double q) {
  assert(!sorted.empty());
  q = std::clamp(q, 0.0, 1.0);
  if (sorted.size() == 1) return sorted.front();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

Summary Summarize(const std::vector<double>& sample) {
  Summary s;
  if (sample.empty()) return s;
  std::vector<double> sorted = sample;
  std::sort(sorted.begin(), sorted.end());
  RunningStat rs;
  for (double x : sorted) rs.Add(x);
  s.count = rs.count();
  s.mean = rs.mean();
  s.stddev = rs.stddev();
  s.min = sorted.front();
  s.p25 = PercentileOfSorted(sorted, 0.25);
  s.median = PercentileOfSorted(sorted, 0.50);
  s.p75 = PercentileOfSorted(sorted, 0.75);
  s.p95 = PercentileOfSorted(sorted, 0.95);
  s.max = sorted.back();
  return s;
}

double TrapezoidIntegral(const std::vector<double>& y, double dx) {
  if (y.size() < 2) return 0.0;
  double acc = 0.5 * (y.front() + y.back());
  for (std::size_t i = 1; i + 1 < y.size(); ++i) acc += y[i];
  return acc * dx;
}

}  // namespace modb::util
