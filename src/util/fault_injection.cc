#include "util/fault_injection.h"

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <system_error>
#include <utility>

namespace modb::util {

namespace {

/// Buffered stdio file; `Sync` reaches the platters (well, fsync).
class StdioWritableFile : public WritableFile {
 public:
  explicit StdioWritableFile(std::FILE* file) : file_(file) {}
  ~StdioWritableFile() override {
    if (file_ != nullptr) std::fclose(file_);
  }

  Status Append(std::string_view data) override {
    if (file_ == nullptr) return Status::FailedPrecondition("file closed");
    if (std::fwrite(data.data(), 1, data.size(), file_) != data.size()) {
      return Status::Internal("write failed");
    }
    return Status::Ok();
  }

  Status Sync() override {
    if (file_ == nullptr) return Status::FailedPrecondition("file closed");
    if (std::fflush(file_) != 0) return Status::Internal("fflush failed");
    if (::fsync(::fileno(file_)) != 0) return Status::Internal("fsync failed");
    return Status::Ok();
  }

  Status Close() override {
    if (file_ == nullptr) return Status::Ok();
    const int rc = std::fclose(file_);
    file_ = nullptr;
    return rc == 0 ? Status::Ok() : Status::Internal("close failed");
  }

 private:
  std::FILE* file_;
};

}  // namespace

WritableFileFactory DefaultWritableFileFactory() {
  return [](const std::string& path) -> Result<std::unique_ptr<WritableFile>> {
    std::FILE* file = std::fopen(path.c_str(), "wb");
    if (file == nullptr) return Status::NotFound("cannot open " + path);
    return std::unique_ptr<WritableFile>(
        std::make_unique<StdioWritableFile>(file));
  };
}

FileReader DefaultFileReader() {
  return [](const std::string& path) -> Result<std::string> {
    std::ifstream file(path, std::ios::binary);
    if (!file) return Status::NotFound("cannot open " + path);
    std::string data((std::istreambuf_iterator<char>(file)),
                     std::istreambuf_iterator<char>());
    return data;
  };
}

/// Wraps one base file; all fault state lives in the owning injector so the
/// plan's byte offsets span file rotations. Every operation holds the
/// injector mutex — parallel shard recovery funnels many files through one
/// injector.
class FaultInjector::File : public WritableFile {
 public:
  File(FaultInjector* injector, std::string path,
       std::unique_ptr<WritableFile> base)
      : injector_(injector), path_(std::move(path)), base_(std::move(base)) {}

  Status Append(std::string_view data) override {
    FaultInjector& inj = *injector_;
    std::lock_guard<std::mutex> lock(inj.mu_);
    if (inj.crashed_) return Status::Internal("injected crash");
    if (InWindow(inj.appends_++, inj.plan_.fail_appends_after,
                 inj.plan_.fail_appends_count)) {
      ++inj.injected_append_faults_;
      return Status::Internal("injected append failure on " + path_);
    }

    std::string buffered(data);
    if (inj.plan_.bit_flip_probability > 0.0) {
      for (char& c : buffered) {
        if (inj.rng_.Bernoulli(inj.plan_.bit_flip_probability)) {
          c = static_cast<char>(
              static_cast<std::uint8_t>(c) ^
              static_cast<std::uint8_t>(1u << inj.rng_.UniformInt(0, 7)));
          ++inj.bits_flipped_;
        }
      }
    }

    std::string_view to_write = buffered;
    const std::uint64_t budget =
        inj.plan_.crash_after_bytes == FaultPlan::kNever
            ? FaultPlan::kNever
            : inj.plan_.crash_after_bytes - inj.bytes_written_;
    const bool crash_now = to_write.size() > budget;
    if (crash_now) to_write = to_write.substr(0, budget);

    const Status s = base_->Append(to_write);
    if (s.ok()) {
      inj.bytes_written_ += to_write.size();
      file_bytes_ += to_write.size();
    }
    if (crash_now) {
      inj.crashed_ = true;
      // A torn write is on disk; make it visible the way a real crash
      // would (the page cache does not outlive the machine).
      (void)base_->Close();
      if (inj.plan_.lose_unsynced_on_crash) {
        // The unsynced tail of this file never reached the platters.
        (void)TruncateFile(path_, synced_bytes_);
      }
      return Status::Internal("injected crash (torn write)");
    }
    return s;
  }

  Status Sync() override {
    FaultInjector& inj = *injector_;
    std::lock_guard<std::mutex> lock(inj.mu_);
    if (inj.crashed_) return Status::Internal("injected crash");
    if (InWindow(inj.syncs_++, inj.plan_.fail_syncs_after,
                 inj.plan_.fail_syncs_count)) {
      ++inj.injected_sync_faults_;
      return Status::Internal("injected fsync failure on " + path_);
    }
    const Status s = base_->Sync();
    if (s.ok()) synced_bytes_ = file_bytes_;
    return s;
  }

  Status Close() override { return base_->Close(); }

 private:
  FaultInjector* injector_;
  std::string path_;
  std::unique_ptr<WritableFile> base_;
  std::uint64_t file_bytes_ = 0;    // appended to this file
  std::uint64_t synced_bytes_ = 0;  // file_bytes_ at the last good Sync
};

FaultInjector::FaultInjector(FaultPlan plan, WritableFileFactory base)
    : plan_(plan),
      base_(std::move(base)),
      base_reader_(DefaultFileReader()),
      rng_(plan.seed) {}

bool FaultInjector::InWindow(std::uint64_t n, std::uint64_t after,
                             std::uint64_t count) {
  if (after == FaultPlan::kNever || n < after) return false;
  return count == FaultPlan::kNever || n - after < count;
}

WritableFileFactory FaultInjector::factory() {
  return [this](const std::string& path)
             -> Result<std::unique_ptr<WritableFile>> {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (crashed_) return Status::Internal("injected crash");
      if (InWindow(opens_++, plan_.fail_opens_after, plan_.fail_opens_count)) {
        ++injected_open_faults_;
        return Status::Internal("injected open failure on " + path);
      }
    }
    auto base = base_(path);
    if (!base.ok()) return base.status();
    return std::unique_ptr<WritableFile>(
        std::make_unique<File>(this, path, std::move(*base)));
  };
}

FileReader FaultInjector::reader() {
  return [this](const std::string& path) -> Result<std::string> {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (InWindow(reads_++, plan_.fail_reads_after, plan_.fail_reads_count)) {
        ++injected_read_faults_;
        return Status::Internal("injected read failure on " + path);
      }
    }
    return base_reader_(path);
  };
}

Status TruncateFile(const std::string& path, std::uint64_t new_size) {
  std::error_code ec;
  std::filesystem::resize_file(path, new_size, ec);
  if (ec) return Status::NotFound("truncate " + path + ": " + ec.message());
  return Status::Ok();
}

Status FlipFileByte(const std::string& path, std::uint64_t offset,
                    std::uint8_t mask) {
  if (mask == 0) mask = 0xff;
  std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
  if (!file) return Status::NotFound("cannot open " + path);
  file.seekg(static_cast<std::streamoff>(offset));
  const int byte = file.get();
  if (byte == EOF) return Status::OutOfRange("offset past end of " + path);
  file.seekp(static_cast<std::streamoff>(offset));
  file.put(static_cast<char>(static_cast<std::uint8_t>(byte) ^ mask));
  file.flush();
  if (!file) return Status::Internal("flip failed on " + path);
  return Status::Ok();
}

Result<std::uint64_t> FileSize(const std::string& path) {
  std::error_code ec;
  const std::uintmax_t size = std::filesystem::file_size(path, ec);
  if (ec) return Status::NotFound("stat " + path + ": " + ec.message());
  return static_cast<std::uint64_t>(size);
}

}  // namespace modb::util
