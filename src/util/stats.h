#ifndef MODB_UTIL_STATS_H_
#define MODB_UTIL_STATS_H_

#include <cstddef>
#include <limits>
#include <vector>

namespace modb::util {

/// Streaming mean / variance / extrema accumulator (Welford's algorithm).
///
/// Numerically stable for long simulation runs; O(1) memory.
class RunningStat {
 public:
  RunningStat() = default;

  /// Folds one observation into the accumulator.
  void Add(double x);

  /// Merges another accumulator into this one (parallel-friendly).
  void Merge(const RunningStat& other);

  /// Resets to the empty state.
  void Reset();

  std::size_t count() const { return count_; }
  /// Mean of the observations; 0 when empty.
  double mean() const { return mean_; }
  /// Population variance; 0 when fewer than two observations.
  double variance() const;
  /// Population standard deviation.
  double stddev() const;
  /// Smallest observation; +inf when empty.
  double min() const { return min_; }
  /// Largest observation; -inf when empty.
  double max() const { return max_; }
  /// Sum of the observations.
  double sum() const { return mean_ * static_cast<double>(count_); }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Five-number-style summary of a sample.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double p95 = 0.0;
  double max = 0.0;
};

/// Computes a `Summary` of `sample` (the input is copied and sorted).
/// An empty sample yields an all-zero summary.
Summary Summarize(const std::vector<double>& sample);

/// Linear-interpolated percentile of a sorted sample, `q` in [0, 1].
/// Requires `sorted` non-empty and ascending.
double PercentileOfSorted(const std::vector<double>& sorted, double q);

/// Trapezoidal integral of uniformly spaced samples `y` with spacing `dx`.
/// Returns 0 for fewer than two samples.
double TrapezoidIntegral(const std::vector<double>& y, double dx);

}  // namespace modb::util

#endif  // MODB_UTIL_STATS_H_
