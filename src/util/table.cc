#include "util/table.h"

#include <cassert>
#include <cstdio>
#include <fstream>

namespace modb::util {

namespace {

std::string CsvEscape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

}  // namespace

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

Table& Table::NewRow() {
  rows_.emplace_back();
  return *this;
}

Table& Table::Add(std::string cell) {
  assert(!rows_.empty());
  rows_.back().push_back(std::move(cell));
  return *this;
}

Table& Table::Add(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return Add(std::string(buf));
}

Table& Table::Add(std::size_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%zu", value);
  return Add(std::string(buf));
}

Table& Table::Add(int value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%d", value);
  return Add(std::string(buf));
}

const std::string& Table::cell(std::size_t row, std::size_t col) const {
  return rows_[row][col];
}

std::string Table::ToString() const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      line += ' ';
      line += cell;
      line.append(widths[c] - cell.size(), ' ');
      line += " |";
    }
    line += '\n';
    return line;
  };
  std::string sep = "+";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    sep.append(widths[c] + 2, '-');
    sep += '+';
  }
  sep += '\n';

  std::string out = sep + render_row(headers_) + sep;
  for (const auto& row : rows_) out += render_row(row);
  out += sep;
  return out;
}

std::string Table::ToCsv() const {
  std::string out;
  auto append_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out += ',';
      out += CsvEscape(row[c]);
    }
    out += '\n';
  };
  append_row(headers_);
  for (const auto& row : rows_) append_row(row);
  return out;
}

bool Table::WriteCsv(const std::string& path) const {
  std::ofstream file(path);
  if (!file) return false;
  file << ToCsv();
  return static_cast<bool>(file);
}

}  // namespace modb::util
