#ifndef MODB_UTIL_THREAD_POOL_H_
#define MODB_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace modb::util {

/// Fixed-size pool of worker threads with a shared FIFO task queue.
///
/// Built for the sharded database's query fan-out: `ParallelFor` spreads a
/// loop over the workers *and* the calling thread, so a pool of size 0 is a
/// valid configuration that simply runs everything inline (the right choice
/// on single-core hosts, where fan-out threads only add context switches).
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (0 is allowed; all work then runs on the
  /// caller inside `ParallelFor`).
  explicit ThreadPool(std::size_t num_threads);

  /// Joins the workers; pending tasks are drained first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_threads() const { return threads_.size(); }

  /// Enqueues `task` for asynchronous execution on a worker.
  void Submit(std::function<void()> task);

  /// Runs `fn(0) ... fn(n-1)`, distributing indices over the workers and
  /// the calling thread, and blocks until all `n` calls have returned.
  /// Indices are claimed from a shared atomic, so the per-call work may be
  /// uneven. Safe to call from within a pool task (the caller participates,
  /// so nested loops cannot deadlock on a starved queue). `fn` must be
  /// safe to invoke concurrently from multiple threads.
  void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
};

}  // namespace modb::util

#endif  // MODB_UTIL_THREAD_POOL_H_
