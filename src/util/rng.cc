#include "util/rng.h"

#include <cassert>
#include <cmath>

namespace modb::util {

namespace {

inline std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

// SplitMix64: used to expand the seed into the xoshiro state.
inline std::uint64_t SplitMix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = SplitMix64(s);
  // xoshiro must not start from the all-zero state.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

std::uint64_t Rng::Next() {
  const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

std::int64_t Rng::UniformInt(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(Next());  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = max() - max() % span;
  std::uint64_t draw;
  do {
    draw = Next();
  } while (draw >= limit);
  return lo + static_cast<std::int64_t>(draw % span);
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return Uniform() < p;
}

double Rng::Normal(double mean, double stddev) {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u1;
  do {
    u1 = Uniform();
  } while (u1 <= 0.0);
  const double u2 = Uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = radius * std::sin(theta);
  have_cached_normal_ = true;
  return mean + stddev * radius * std::cos(theta);
}

double Rng::Exponential(double lambda) {
  assert(lambda > 0.0);
  double u;
  do {
    u = Uniform();
  } while (u <= 0.0);
  return -std::log(u) / lambda;
}

std::size_t Rng::Categorical(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    assert(w >= 0.0);
    total += w;
  }
  assert(total > 0.0);
  double draw = Uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    draw -= weights[i];
    if (draw < 0.0) return i;
  }
  return weights.size() - 1;  // Guard against rounding at the upper edge.
}

Rng Rng::Fork() {
  // Derive a child seed from two draws; the child re-expands via SplitMix64,
  // decorrelating its stream from the parent continuation.
  const std::uint64_t child_seed = Next() ^ Rotl(Next(), 32);
  return Rng(child_seed);
}

}  // namespace modb::util
