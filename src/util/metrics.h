#ifndef MODB_UTIL_METRICS_H_
#define MODB_UTIL_METRICS_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "util/histogram.h"

namespace modb::util {

/// Monotonic event counter. Increments and reads are lock-free and safe
/// from any thread (relaxed ordering: counters are statistics, not
/// synchronisation).
class Counter {
 public:
  void Increment(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Point-in-time level (objects in a band, entries in a tree, queue
/// depth). Unlike `Counter` it is signed and may go down. `Add` with a
/// signed delta is the aggregation-friendly update: several databases
/// sharing one gauge (the sharded layer) each apply their own deltas and
/// the gauge reads as the sum. Lock-free, relaxed ordering.
class Gauge {
 public:
  void Set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(std::int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Lock-free latency histogram: log2-spaced buckets over microseconds
/// (bucket i counts latencies in [2^(i-1), 2^i) µs; bucket 0 is < 1 µs).
/// Recording is wait-free; readers observe a consistent-enough snapshot
/// for reporting. Quantiles are computed by snapshotting the buckets into
/// a `util::Histogram` over the log2 domain and exponentiating back.
class LatencyHistogram {
 public:
  /// Buckets cover < 1 µs up to >= 2^38 µs (~76 hours) in the top bucket.
  static constexpr std::size_t kNumBuckets = 40;

  void RecordNanos(std::uint64_t nanos);
  void Record(std::chrono::steady_clock::duration d) {
    RecordNanos(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(d).count()));
  }

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  double mean_micros() const;
  double max_micros() const {
    return static_cast<double>(max_nanos_.load(std::memory_order_relaxed)) *
           1e-3;
  }

  /// Approximate `q`-quantile in microseconds (bucket-midpoint precision in
  /// the log2 domain, i.e. within ~1.4x of the true value). 0 when empty.
  double ApproxQuantileMicros(double q) const;

  /// Snapshot of the bucket counts as an equal-width histogram over
  /// x = log2(latency_µs), reusing `util::Histogram` for rendering and
  /// quantile machinery.
  Histogram SnapshotLog2Micros() const;

  void Reset();

 private:
  std::array<std::atomic<std::uint64_t>, kNumBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_nanos_{0};
  std::atomic<std::uint64_t> max_nanos_{0};
};

/// Records the lifetime of the scope into a latency histogram. A null
/// histogram disables the timer (and skips the clock reads).
class ScopedLatencyTimer {
 public:
  explicit ScopedLatencyTimer(LatencyHistogram* h)
      : h_(h),
        start_(h ? std::chrono::steady_clock::now()
                 : std::chrono::steady_clock::time_point()) {}
  ~ScopedLatencyTimer() {
    if (h_ != nullptr) h_->Record(std::chrono::steady_clock::now() - start_);
  }
  ScopedLatencyTimer(const ScopedLatencyTimer&) = delete;
  ScopedLatencyTimer& operator=(const ScopedLatencyTimer&) = delete;

 private:
  LatencyHistogram* h_;
  std::chrono::steady_clock::time_point start_;
};

/// Named registry of counters and latency histograms.
///
/// Registration (`GetCounter` / `GetLatency`) takes a mutex; the returned
/// pointers are stable for the registry's lifetime, so hot paths register
/// once, cache the pointer, and then update lock-free. The same name always
/// yields the same instrument, which is how the sharded database aggregates
/// one logical counter across shards.
class MetricsRegistry {
 public:
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  LatencyHistogram* GetLatency(const std::string& name);

  /// Renders every instrument as text, one per line, sorted by name:
  ///   counter <name> <value>
  ///   gauge <name> <value>
  ///   latency <name> count=N mean_us=M p50_us=… p90_us=… p99_us=… max_us=…
  std::string Dump() const;

  /// Zeroes every registered instrument (pointers stay valid).
  void Reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<LatencyHistogram>> latencies_;
};

}  // namespace modb::util

#endif  // MODB_UTIL_METRICS_H_
