#include "util/crc32c.h"

#include <array>

namespace modb::util {

namespace {

// Reflected Castagnoli polynomial.
constexpr std::uint32_t kPoly = 0x82f63b78u;

constexpr std::array<std::uint32_t, 256> MakeTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) ? kPoly : 0u);
    }
    table[i] = crc;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kTable = MakeTable();

}  // namespace

std::uint32_t Crc32cExtend(std::uint32_t crc, std::string_view data) {
  crc = ~crc;
  for (const char c : data) {
    crc = (crc >> 8) ^ kTable[(crc ^ static_cast<std::uint8_t>(c)) & 0xffu];
  }
  return ~crc;
}

std::uint32_t Crc32c(std::string_view data) { return Crc32cExtend(0, data); }

std::uint32_t Crc32cMask(std::uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + 0xa282ead8u;
}

std::uint32_t Crc32cUnmask(std::uint32_t masked) {
  const std::uint32_t rot = masked - 0xa282ead8u;
  return (rot >> 17) | (rot << 15);
}

}  // namespace modb::util
