#ifndef MODB_UTIL_STATUS_H_
#define MODB_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace modb::util {

/// Machine-readable error category carried by a `Status`.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kUnimplemented,
  kUnavailable,
};

/// Returns the canonical lowercase name of `code` (e.g. "not_found").
std::string_view StatusCodeName(StatusCode code);

/// Result of an operation that can fail without a payload.
///
/// `Status` is the library-wide error channel: the public API does not throw.
/// A default-constructed `Status` is OK. Error statuses carry a code and a
/// human-readable message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with `code` and `message`. An OK code clears the
  /// message.
  Status(StatusCode code, std::string message)
      : code_(code),
        message_(code == StatusCode::kOk ? std::string() : std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  /// Factory helpers mirroring the canonical codes.
  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "ok" or "<code>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Result of an operation that yields a `T` on success and a `Status` on
/// failure. Minimal `absl::StatusOr`-style wrapper.
template <typename T>
class Result {
 public:
  /// Constructs a successful result holding `value`.
  Result(T value)  // NOLINT(google-explicit-constructor): intended conversion
      : status_(Status::Ok()), value_(std::move(value)) {}

  /// Constructs a failed result. `status` must not be OK.
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    assert(!status_.ok() && "Result(Status) requires an error status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Accesses the value. Requires `ok()`.
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or `fallback` when this result holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace modb::util

#endif  // MODB_UTIL_STATUS_H_
