#include "util/status.h"

namespace modb::util {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid_argument";
    case StatusCode::kNotFound:
      return "not_found";
    case StatusCode::kAlreadyExists:
      return "already_exists";
    case StatusCode::kOutOfRange:
      return "out_of_range";
    case StatusCode::kFailedPrecondition:
      return "failed_precondition";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kUnimplemented:
      return "unimplemented";
    case StatusCode::kUnavailable:
      return "unavailable";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "ok";
  std::string out(StatusCodeName(code_));
  out += ": ";
  out += message_;
  return out;
}

}  // namespace modb::util
