#ifndef MODB_UTIL_HISTOGRAM_H_
#define MODB_UTIL_HISTOGRAM_H_

#include <cstddef>
#include <string>
#include <vector>

namespace modb::util {

/// Fixed-width histogram over [lo, hi) with under/overflow buckets.
///
/// Used by the simulator to characterise deviation and uncertainty
/// distributions without retaining every sample.
class Histogram {
 public:
  /// Creates a histogram with `num_buckets` equal-width buckets spanning
  /// [lo, hi). Requires lo < hi and num_buckets >= 1.
  Histogram(double lo, double hi, std::size_t num_buckets);

  /// Adds one observation.
  void Add(double x);

  /// Adds `n` observations directly to bucket `i` (requires i <
  /// num_buckets()). Used to rebuild a histogram from externally
  /// accumulated per-bucket counts (e.g. the metrics registry's atomic
  /// latency buckets) without replaying every sample.
  void AddBucketCount(std::size_t i, std::size_t n);

  /// Number of observations added (including under/overflow).
  std::size_t count() const { return count_; }
  std::size_t underflow() const { return underflow_; }
  std::size_t overflow() const { return overflow_; }
  std::size_t num_buckets() const { return buckets_.size(); }

  /// Count in bucket `i`.
  std::size_t bucket_count(std::size_t i) const { return buckets_[i]; }
  /// Inclusive lower edge of bucket `i`.
  double bucket_lo(std::size_t i) const;
  /// Exclusive upper edge of bucket `i`.
  double bucket_hi(std::size_t i) const;

  /// Approximate quantile (`q` in [0, 1]) from bucket midpoints.
  /// Returns 0 when empty.
  double ApproxQuantile(double q) const;

  /// Renders a terminal-friendly bar chart, `width` characters wide.
  std::string ToString(std::size_t width = 40) const;

 private:
  double lo_;
  double hi_;
  double bucket_width_;
  std::vector<std::size_t> buckets_;
  std::size_t count_ = 0;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
};

}  // namespace modb::util

#endif  // MODB_UTIL_HISTOGRAM_H_
