#ifndef MODB_UTIL_HISTOGRAM_H_
#define MODB_UTIL_HISTOGRAM_H_

#include <cstddef>
#include <string>
#include <vector>

namespace modb::util {

/// Fixed-width histogram over [lo, hi) with under/overflow buckets.
///
/// Used by the simulator to characterise deviation and uncertainty
/// distributions without retaining every sample.
class Histogram {
 public:
  /// Creates a histogram with `num_buckets` equal-width buckets spanning
  /// [lo, hi). Requires lo < hi and num_buckets >= 1.
  Histogram(double lo, double hi, std::size_t num_buckets);

  /// Adds one observation. Non-finite values (NaN, ±inf) are counted in
  /// the `invalid()` bucket — they carry no bucketable position, and a
  /// NaN-derived float-to-integer cast would be UB.
  void Add(double x);

  /// Adds `n` observations directly to bucket `i` (requires i <
  /// num_buckets()). Used to rebuild a histogram from externally
  /// accumulated per-bucket counts (e.g. the metrics registry's atomic
  /// latency buckets) without replaying every sample. An out-of-range `i`
  /// is checked in release builds too: the mass lands in the `invalid()`
  /// bucket instead of writing past the bucket array.
  void AddBucketCount(std::size_t i, std::size_t n);

  /// Number of observations added (including under/overflow/invalid).
  std::size_t count() const { return count_; }
  std::size_t underflow() const { return underflow_; }
  std::size_t overflow() const { return overflow_; }
  /// Observations rejected as non-finite (plus any out-of-range
  /// `AddBucketCount` mass). Non-zero means a producer is recording
  /// garbage — worth surfacing, which is why they are counted instead of
  /// silently dropped.
  std::size_t invalid() const { return invalid_; }
  std::size_t num_buckets() const { return buckets_.size(); }

  /// Count in bucket `i`.
  std::size_t bucket_count(std::size_t i) const { return buckets_[i]; }
  /// Inclusive lower edge of bucket `i`.
  double bucket_lo(std::size_t i) const;
  /// Exclusive upper edge of bucket `i`.
  double bucket_hi(std::size_t i) const;

  /// Approximate quantile (`q` in [0, 1]) over the *finite* observations
  /// (invalid mass is excluded — it has no rank). Returns the midpoint of
  /// the bucket holding the target rank. Contract for the tails: a rank
  /// landing in the underflow mass returns `lo_` and one landing in the
  /// overflow mass returns `hi_` — those are the tightest bounds the
  /// histogram retains (an underflow sample is somewhere below `lo_`, an
  /// overflow sample somewhere at/above `hi_`; the true sample values are
  /// not recoverable). Callers reading percentiles near the range edges
  /// should treat `lo_`/`hi_` returns as "outside the tracked range", not
  /// as measured values — check `underflow()`/`overflow()` to tell a
  /// clamped return from a genuine edge-bucket midpoint, or widen the
  /// range. Returns 0 when no finite observation was added.
  double ApproxQuantile(double q) const;

  /// Renders a terminal-friendly bar chart, `width` characters wide.
  std::string ToString(std::size_t width = 40) const;

 private:
  double lo_;
  double hi_;
  double bucket_width_;
  std::vector<std::size_t> buckets_;
  std::size_t count_ = 0;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
  std::size_t invalid_ = 0;
};

}  // namespace modb::util

#endif  // MODB_UTIL_HISTOGRAM_H_
