#include "util/metrics.h"

#include <bit>
#include <cmath>
#include <cstdio>

namespace modb::util {

namespace {

// Bucket for a latency of `micros` µs: 0 for < 1 µs, else 1 + floor(log2),
// clamped to the top bucket.
std::size_t BucketOf(std::uint64_t micros) {
  if (micros == 0) return 0;
  const auto log2_floor =
      static_cast<std::size_t>(std::bit_width(micros) - 1);
  return std::min(log2_floor + 1, LatencyHistogram::kNumBuckets - 1);
}

}  // namespace

void LatencyHistogram::RecordNanos(std::uint64_t nanos) {
  const std::uint64_t micros = nanos / 1000;
  buckets_[BucketOf(micros)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_nanos_.fetch_add(nanos, std::memory_order_relaxed);
  std::uint64_t prev = max_nanos_.load(std::memory_order_relaxed);
  while (prev < nanos && !max_nanos_.compare_exchange_weak(
                             prev, nanos, std::memory_order_relaxed)) {
  }
}

double LatencyHistogram::mean_micros() const {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  return static_cast<double>(sum_nanos_.load(std::memory_order_relaxed)) *
         1e-3 / static_cast<double>(n);
}

Histogram LatencyHistogram::SnapshotLog2Micros() const {
  Histogram snapshot(0.0, static_cast<double>(kNumBuckets), kNumBuckets);
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    const std::uint64_t c = buckets_[i].load(std::memory_order_relaxed);
    if (c > 0) snapshot.AddBucketCount(i, static_cast<std::size_t>(c));
  }
  return snapshot;
}

double LatencyHistogram::ApproxQuantileMicros(double q) const {
  const Histogram snapshot = SnapshotLog2Micros();
  if (snapshot.count() == 0) return 0.0;
  // Bucket i spans [2^(i-1), 2^i) µs; the snapshot's log2-domain quantile
  // lands on a bucket midpoint i + 0.5, so 2^(x - 1) recovers the bucket's
  // geometric center scale. Bucket 0 (< 1 µs) maps below 1.
  const double x = snapshot.ApproxQuantile(q);
  return std::exp2(x - 1.0);
}

void LatencyHistogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_nanos_.store(0, std::memory_order_relaxed);
  max_nanos_.store(0, std::memory_order_relaxed);
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

LatencyHistogram* MetricsRegistry::GetLatency(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = latencies_[name];
  if (!slot) slot = std::make_unique<LatencyHistogram>();
  return slot.get();
}

std::string MetricsRegistry::Dump() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  char line[256];
  for (const auto& [name, counter] : counters_) {
    std::snprintf(line, sizeof(line), "counter %s %llu\n", name.c_str(),
                  static_cast<unsigned long long>(counter->value()));
    out += line;
  }
  for (const auto& [name, gauge] : gauges_) {
    std::snprintf(line, sizeof(line), "gauge %s %lld\n", name.c_str(),
                  static_cast<long long>(gauge->value()));
    out += line;
  }
  for (const auto& [name, latency] : latencies_) {
    std::snprintf(line, sizeof(line),
                  "latency %s count=%llu mean_us=%.1f p50_us=%.1f "
                  "p90_us=%.1f p99_us=%.1f max_us=%.1f\n",
                  name.c_str(),
                  static_cast<unsigned long long>(latency->count()),
                  latency->mean_micros(), latency->ApproxQuantileMicros(0.5),
                  latency->ApproxQuantileMicros(0.9),
                  latency->ApproxQuantileMicros(0.99), latency->max_micros());
    out += line;
  }
  return out;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, counter] : counters_) counter->Reset();
  for (const auto& [name, gauge] : gauges_) gauge->Reset();
  for (const auto& [name, latency] : latencies_) latency->Reset();
}

}  // namespace modb::util
