#ifndef MODB_UTIL_FAULT_INJECTION_H_
#define MODB_UTIL_FAULT_INJECTION_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "util/rng.h"
#include "util/status.h"

namespace modb::util {

/// Append-only file abstraction the durability layer writes through. The
/// indirection exists so tests can interpose seeded faults (torn writes,
/// bit rot, failing fsync) between the WAL and the disk — corruption paths
/// are exercised deterministically instead of hoped-for.
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  /// Appends `data` at the end of the file.
  virtual Status Append(std::string_view data) = 0;

  /// Flushes buffered data to durable storage (fflush + fsync).
  virtual Status Sync() = 0;

  /// Flushes and closes. Idempotent; the destructor closes without sync.
  virtual Status Close() = 0;
};

/// Creates the `WritableFile` at `path`, truncating any existing file.
using WritableFileFactory =
    std::function<Result<std::unique_ptr<WritableFile>>(const std::string&)>;

/// The real thing: buffered stdio writes, fsync-backed `Sync`.
WritableFileFactory DefaultWritableFileFactory();

/// Reads the whole file at `path`. The recovery read side (WAL replay,
/// checkpoint load) goes through this so chaos schedules can fail reads the
/// same way they fail writes.
using FileReader = std::function<Result<std::string>(const std::string&)>;

/// The real thing: one binary read of the whole file.
FileReader DefaultFileReader();

/// One deterministic fault scenario. Byte counts address the cumulative
/// stream written through a single `FaultInjector` (across file rotations),
/// so a plan can place a crash at any offset of a multi-segment log.
struct FaultPlan {
  static constexpr std::uint64_t kNever =
      std::numeric_limits<std::uint64_t>::max();

  /// Simulated power loss: the append that crosses this cumulative byte
  /// offset writes only the prefix up to it (a torn write), then every
  /// later operation on every file of the injector fails.
  std::uint64_t crash_after_bytes = kNever;
  /// The Nth and all later `Sync` calls fail (0 = every sync fails).
  std::uint64_t fail_syncs_after = kNever;
  /// Per-byte probability of flipping one (seeded) bit on its way to disk.
  double bit_flip_probability = 0.0;
  /// Seed for the bit-flip stream.
  std::uint64_t seed = 1;
  /// When the crash fires, bytes appended to the *current* file since its
  /// last successful `Sync` are truncated away — the page cache dies with
  /// the machine. Off (default): every appended byte up to the crash
  /// offset survives, modelling synced appends or lucky writeback. Group-
  /// commit tests need this on, or deferred fsyncs would look free.
  bool lose_unsynced_on_crash = false;

  /// Transient fault windows, the chaos-schedule vocabulary: each counts
  /// operations of its kind through the injector (0-based, across all
  /// files), and operations with index in `[after, after + count)` fail
  /// with an injected error while everything outside the window passes
  /// through. Unlike `crash_after_bytes`, nothing is sticky — the
  /// supervisor's remediation loop can succeed once the window closes.
  /// `kNever` in an `after` field disables that window.
  std::uint64_t fail_appends_after = kNever;
  std::uint64_t fail_appends_count = 1;
  std::uint64_t fail_opens_after = kNever;
  std::uint64_t fail_opens_count = 1;
  std::uint64_t fail_reads_after = kNever;
  std::uint64_t fail_reads_count = 1;
  /// Width of the sync-failure window opened by `fail_syncs_after`.
  /// `kNever` (the default) keeps the historical sticky semantics: the
  /// Nth and every later sync fails.
  std::uint64_t fail_syncs_count = kNever;
};

/// Factory + shared fault state: every `WritableFile` created through
/// `factory()` draws from the same plan and the same cumulative byte
/// counter. Must outlive the files it creates. Thread-safe: the shared
/// state is mutex-guarded so one injector can back every shard of a
/// database recovered or checkpointed in parallel.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan,
                         WritableFileFactory base = DefaultWritableFileFactory());

  /// Factory handing out fault-wrapped files (capturing `this`).
  WritableFileFactory factory();

  /// Reader injecting the plan's read faults (capturing `this`).
  FileReader reader();

  /// True once the planned crash fired; all subsequent writes fail.
  bool crashed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return crashed_;
  }
  std::uint64_t bytes_written() const {
    std::lock_guard<std::mutex> lock(mu_);
    return bytes_written_;
  }
  std::uint64_t bits_flipped() const {
    std::lock_guard<std::mutex> lock(mu_);
    return bits_flipped_;
  }
  std::uint64_t syncs_attempted() const {
    std::lock_guard<std::mutex> lock(mu_);
    return syncs_;
  }
  std::uint64_t appends_attempted() const {
    std::lock_guard<std::mutex> lock(mu_);
    return appends_;
  }
  std::uint64_t opens_attempted() const {
    std::lock_guard<std::mutex> lock(mu_);
    return opens_;
  }
  std::uint64_t reads_attempted() const {
    std::lock_guard<std::mutex> lock(mu_);
    return reads_;
  }

  /// Faults actually injected, per kind — tests assert the plan fired
  /// (a window placed past the workload's operation count silently never
  /// fires; these make that a test failure instead of a vacuous pass).
  std::uint64_t injected_append_faults() const {
    std::lock_guard<std::mutex> lock(mu_);
    return injected_append_faults_;
  }
  std::uint64_t injected_open_faults() const {
    std::lock_guard<std::mutex> lock(mu_);
    return injected_open_faults_;
  }
  std::uint64_t injected_sync_faults() const {
    std::lock_guard<std::mutex> lock(mu_);
    return injected_sync_faults_;
  }
  std::uint64_t injected_read_faults() const {
    std::lock_guard<std::mutex> lock(mu_);
    return injected_read_faults_;
  }
  /// Total injected faults of every kind (crash excluded).
  std::uint64_t injected_faults() const {
    std::lock_guard<std::mutex> lock(mu_);
    return injected_append_faults_ + injected_open_faults_ +
           injected_sync_faults_ + injected_read_faults_;
  }

 private:
  class File;

  /// True when 0-based operation index `n` falls in `[after, after+count)`.
  static bool InWindow(std::uint64_t n, std::uint64_t after,
                       std::uint64_t count);

  mutable std::mutex mu_;
  FaultPlan plan_;
  WritableFileFactory base_;
  FileReader base_reader_;
  Rng rng_;
  bool crashed_ = false;
  std::uint64_t bytes_written_ = 0;
  std::uint64_t bits_flipped_ = 0;
  std::uint64_t syncs_ = 0;
  std::uint64_t appends_ = 0;
  std::uint64_t opens_ = 0;
  std::uint64_t reads_ = 0;
  std::uint64_t injected_append_faults_ = 0;
  std::uint64_t injected_open_faults_ = 0;
  std::uint64_t injected_sync_faults_ = 0;
  std::uint64_t injected_read_faults_ = 0;
};

/// Post-hoc corruption helpers for closed files (simulating bit rot and
/// short reads discovered at recovery time).
/// Truncates the file at `path` to `new_size` bytes (<= current size).
Status TruncateFile(const std::string& path, std::uint64_t new_size);
/// XORs the byte at `offset` with `mask` (mask 0 is promoted to 0xff).
Status FlipFileByte(const std::string& path, std::uint64_t offset,
                    std::uint8_t mask = 0xff);
/// Size of the file at `path` in bytes.
Result<std::uint64_t> FileSize(const std::string& path);

}  // namespace modb::util

#endif  // MODB_UTIL_FAULT_INJECTION_H_
