#ifndef MODB_UTIL_FAULT_INJECTION_H_
#define MODB_UTIL_FAULT_INJECTION_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "util/rng.h"
#include "util/status.h"

namespace modb::util {

/// Append-only file abstraction the durability layer writes through. The
/// indirection exists so tests can interpose seeded faults (torn writes,
/// bit rot, failing fsync) between the WAL and the disk — corruption paths
/// are exercised deterministically instead of hoped-for.
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  /// Appends `data` at the end of the file.
  virtual Status Append(std::string_view data) = 0;

  /// Flushes buffered data to durable storage (fflush + fsync).
  virtual Status Sync() = 0;

  /// Flushes and closes. Idempotent; the destructor closes without sync.
  virtual Status Close() = 0;
};

/// Creates the `WritableFile` at `path`, truncating any existing file.
using WritableFileFactory =
    std::function<Result<std::unique_ptr<WritableFile>>(const std::string&)>;

/// The real thing: buffered stdio writes, fsync-backed `Sync`.
WritableFileFactory DefaultWritableFileFactory();

/// One deterministic fault scenario. Byte counts address the cumulative
/// stream written through a single `FaultInjector` (across file rotations),
/// so a plan can place a crash at any offset of a multi-segment log.
struct FaultPlan {
  static constexpr std::uint64_t kNever =
      std::numeric_limits<std::uint64_t>::max();

  /// Simulated power loss: the append that crosses this cumulative byte
  /// offset writes only the prefix up to it (a torn write), then every
  /// later operation on every file of the injector fails.
  std::uint64_t crash_after_bytes = kNever;
  /// The Nth and all later `Sync` calls fail (0 = every sync fails).
  std::uint64_t fail_syncs_after = kNever;
  /// Per-byte probability of flipping one (seeded) bit on its way to disk.
  double bit_flip_probability = 0.0;
  /// Seed for the bit-flip stream.
  std::uint64_t seed = 1;
  /// When the crash fires, bytes appended to the *current* file since its
  /// last successful `Sync` are truncated away — the page cache dies with
  /// the machine. Off (default): every appended byte up to the crash
  /// offset survives, modelling synced appends or lucky writeback. Group-
  /// commit tests need this on, or deferred fsyncs would look free.
  bool lose_unsynced_on_crash = false;
};

/// Factory + shared fault state: every `WritableFile` created through
/// `factory()` draws from the same plan and the same cumulative byte
/// counter. Must outlive the files it creates. Thread-safe: the shared
/// state is mutex-guarded so one injector can back every shard of a
/// database recovered or checkpointed in parallel.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan,
                         WritableFileFactory base = DefaultWritableFileFactory());

  /// Factory handing out fault-wrapped files (capturing `this`).
  WritableFileFactory factory();

  /// True once the planned crash fired; all subsequent writes fail.
  bool crashed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return crashed_;
  }
  std::uint64_t bytes_written() const {
    std::lock_guard<std::mutex> lock(mu_);
    return bytes_written_;
  }
  std::uint64_t bits_flipped() const {
    std::lock_guard<std::mutex> lock(mu_);
    return bits_flipped_;
  }
  std::uint64_t syncs_attempted() const {
    std::lock_guard<std::mutex> lock(mu_);
    return syncs_;
  }

 private:
  class File;

  mutable std::mutex mu_;
  FaultPlan plan_;
  WritableFileFactory base_;
  Rng rng_;
  bool crashed_ = false;
  std::uint64_t bytes_written_ = 0;
  std::uint64_t bits_flipped_ = 0;
  std::uint64_t syncs_ = 0;
};

/// Post-hoc corruption helpers for closed files (simulating bit rot and
/// short reads discovered at recovery time).
/// Truncates the file at `path` to `new_size` bytes (<= current size).
Status TruncateFile(const std::string& path, std::uint64_t new_size);
/// XORs the byte at `offset` with `mask` (mask 0 is promoted to 0xff).
Status FlipFileByte(const std::string& path, std::uint64_t offset,
                    std::uint8_t mask = 0xff);
/// Size of the file at `path` in bytes.
Result<std::uint64_t> FileSize(const std::string& path);

}  // namespace modb::util

#endif  // MODB_UTIL_FAULT_INJECTION_H_
