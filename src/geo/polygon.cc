#include "geo/polygon.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace modb::geo {

namespace {

// Strict orientation: +1 / -1, or 0 within tolerance.
int StrictOrientation(const Point2& a, const Point2& b, const Point2& c) {
  const double v = Cross(b - a, c - a);
  const double scale = std::max({1.0, (b - a).Norm(), (c - a).Norm()});
  if (std::fabs(v) <= kGeomEpsilon * scale) return 0;
  return v > 0 ? 1 : -1;
}

// True when segments properly cross (intersection interior to both).
bool ProperCrossing(const Segment& s, const Segment& t) {
  const int o1 = StrictOrientation(s.a, s.b, t.a);
  const int o2 = StrictOrientation(s.a, s.b, t.b);
  const int o3 = StrictOrientation(t.a, t.b, s.a);
  const int o4 = StrictOrientation(t.a, t.b, s.b);
  return o1 * o2 < 0 && o3 * o4 < 0;
}

}  // namespace

Polygon::Polygon(std::vector<Point2> vertices) : vertices_(std::move(vertices)) {
  for (const Point2& v : vertices_) bbox_.Expand(v);
}

Polygon Polygon::Rectangle(double x0, double y0, double x1, double y1) {
  if (x0 > x1) std::swap(x0, x1);
  if (y0 > y1) std::swap(y0, y1);
  return Polygon({{x0, y0}, {x1, y0}, {x1, y1}, {x0, y1}});
}

Polygon Polygon::CenteredRectangle(const Point2& c, double hx, double hy) {
  return Rectangle(c.x - hx, c.y - hy, c.x + hx, c.y + hy);
}

Polygon Polygon::RegularNGon(const Point2& c, double r, std::size_t n) {
  assert(n >= 3);
  std::vector<Point2> verts;
  verts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double theta = 2.0 * M_PI * static_cast<double>(i) /
                         static_cast<double>(n);
    verts.push_back({c.x + r * std::cos(theta), c.y + r * std::sin(theta)});
  }
  return Polygon(std::move(verts));
}

Segment Polygon::Edge(std::size_t i) const {
  return Segment(vertices_[i], vertices_[(i + 1) % vertices_.size()]);
}

bool Polygon::Contains(const Point2& p) const {
  if (!Valid() || !bbox_.Contains(p)) return false;
  // Boundary points count as contained.
  for (std::size_t i = 0; i < vertices_.size(); ++i) {
    if (Edge(i).DistanceTo(p) <= kGeomEpsilon) return true;
  }
  // Even-odd ray casting with a horizontal ray to +x.
  bool inside = false;
  for (std::size_t i = 0; i < vertices_.size(); ++i) {
    const Point2& a = vertices_[i];
    const Point2& b = vertices_[(i + 1) % vertices_.size()];
    const bool crosses = (a.y > p.y) != (b.y > p.y);
    if (!crosses) continue;
    const double x_at = a.x + (p.y - a.y) / (b.y - a.y) * (b.x - a.x);
    if (p.x < x_at) inside = !inside;
  }
  return inside;
}

bool Polygon::Intersects(const Segment& s) const {
  if (!Valid()) return false;
  if (!bbox_.Intersects(s.BoundingBox())) return false;
  if (Contains(s.a) || Contains(s.b)) return true;
  for (std::size_t i = 0; i < vertices_.size(); ++i) {
    if (SegmentsIntersect(Edge(i), s)) return true;
  }
  return false;
}

bool Polygon::ContainsSegment(const Segment& s) const {
  if (!Valid()) return false;
  if (!Contains(s.a) || !Contains(s.b)) return false;
  // A segment with both endpoints inside can only leave a (possibly
  // non-convex) polygon by properly crossing its boundary.
  for (std::size_t i = 0; i < vertices_.size(); ++i) {
    if (ProperCrossing(Edge(i), s)) return false;
  }
  // Midpoint check guards the endpoints-on-boundary corner case where the
  // segment runs outside between two boundary contacts.
  return Contains(s.At(0.5));
}

double Polygon::IntersectionLength(const Segment& s) const {
  if (!Valid()) return 0.0;
  const double total = s.Length();
  if (total <= kGeomEpsilon) return 0.0;  // degenerate segment: no length
  if (!bbox_.Intersects(s.BoundingBox())) return 0.0;

  // Collect the parameters where the segment crosses the boundary, then
  // classify each piece between consecutive parameters by its midpoint.
  std::vector<double> params = {0.0, 1.0};
  const Point2 dir = s.b - s.a;
  const double len2 = dir.NormSquared();
  for (std::size_t i = 0; i < vertices_.size(); ++i) {
    const auto hit = SegmentIntersection(s, Edge(i));
    if (!hit.has_value()) continue;
    params.push_back(std::clamp(Dot(*hit - s.a, dir) / len2, 0.0, 1.0));
  }
  std::sort(params.begin(), params.end());

  double inside = 0.0;
  for (std::size_t i = 0; i + 1 < params.size(); ++i) {
    const double span = params[i + 1] - params[i];
    if (span <= kGeomEpsilon) continue;
    const Point2 mid = s.At(0.5 * (params[i] + params[i + 1]));
    if (Contains(mid)) inside += span;
  }
  return inside * total;
}

double Polygon::SignedArea() const {
  if (!Valid()) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < vertices_.size(); ++i) {
    const Point2& a = vertices_[i];
    const Point2& b = vertices_[(i + 1) % vertices_.size()];
    acc += Cross(a, b);
  }
  return 0.5 * acc;
}

}  // namespace modb::geo
