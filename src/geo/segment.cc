#include "geo/segment.h"

#include <algorithm>
#include <cmath>

namespace modb::geo {

namespace {

// Orientation of the triple (a, b, c): > 0 counter-clockwise, < 0 clockwise,
// 0 collinear (within kGeomEpsilon scaled by magnitude).
int Orientation(const Point2& a, const Point2& b, const Point2& c) {
  const double v = Cross(b - a, c - a);
  const double scale = std::max({1.0, (b - a).Norm(), (c - a).Norm()});
  if (std::fabs(v) <= kGeomEpsilon * scale) return 0;
  return v > 0 ? 1 : -1;
}

// True when collinear point `p` lies within the bounding box of segment ab.
bool OnSegment(const Point2& a, const Point2& b, const Point2& p) {
  return p.x <= std::max(a.x, b.x) + kGeomEpsilon &&
         p.x >= std::min(a.x, b.x) - kGeomEpsilon &&
         p.y <= std::max(a.y, b.y) + kGeomEpsilon &&
         p.y >= std::min(a.y, b.y) - kGeomEpsilon;
}

}  // namespace

Point2 Segment::At(double t) const {
  t = std::clamp(t, 0.0, 1.0);
  return Lerp(a, b, t);
}

double Segment::ClosestParam(const Point2& p) const {
  const Point2 d = b - a;
  const double len2 = d.NormSquared();
  if (len2 <= kGeomEpsilon * kGeomEpsilon) return 0.0;  // Degenerate segment.
  return std::clamp(Dot(p - a, d) / len2, 0.0, 1.0);
}

Point2 Segment::ClosestPoint(const Point2& p) const { return At(ClosestParam(p)); }

double Segment::DistanceTo(const Point2& p) const {
  return Distance(p, ClosestPoint(p));
}

Box2 Segment::BoundingBox() const {
  Box2 box;
  box.Expand(a);
  box.Expand(b);
  return box;
}

bool SegmentsIntersect(const Segment& s, const Segment& t) {
  const int o1 = Orientation(s.a, s.b, t.a);
  const int o2 = Orientation(s.a, s.b, t.b);
  const int o3 = Orientation(t.a, t.b, s.a);
  const int o4 = Orientation(t.a, t.b, s.b);

  if (o1 != o2 && o3 != o4) return true;  // Proper crossing.

  // Collinear touching cases.
  if (o1 == 0 && OnSegment(s.a, s.b, t.a)) return true;
  if (o2 == 0 && OnSegment(s.a, s.b, t.b)) return true;
  if (o3 == 0 && OnSegment(t.a, t.b, s.a)) return true;
  if (o4 == 0 && OnSegment(t.a, t.b, s.b)) return true;
  return false;
}

std::optional<Point2> SegmentIntersection(const Segment& s, const Segment& t) {
  const Point2 r = s.b - s.a;
  const Point2 q = t.b - t.a;
  const double denom = Cross(r, q);
  const Point2 diff = t.a - s.a;
  if (std::fabs(denom) <= kGeomEpsilon) {
    // Parallel. Check collinear overlap and return one shared point.
    if (std::fabs(Cross(diff, r)) > kGeomEpsilon) return std::nullopt;
    if (OnSegment(s.a, s.b, t.a)) return t.a;
    if (OnSegment(s.a, s.b, t.b)) return t.b;
    if (OnSegment(t.a, t.b, s.a)) return s.a;
    return std::nullopt;
  }
  const double u = Cross(diff, q) / denom;
  const double v = Cross(diff, r) / denom;
  if (u < -kGeomEpsilon || u > 1.0 + kGeomEpsilon || v < -kGeomEpsilon ||
      v > 1.0 + kGeomEpsilon) {
    return std::nullopt;
  }
  return s.a + r * std::clamp(u, 0.0, 1.0);
}

}  // namespace modb::geo
