#ifndef MODB_GEO_ROUTE_H_
#define MODB_GEO_ROUTE_H_

#include <cstdint>
#include <limits>
#include <string>

#include "geo/polyline.h"

namespace modb::geo {

/// Identifier of a route in a `RouteNetwork`.
using RouteId = std::uint32_t;

inline constexpr RouteId kInvalidRouteId =
    std::numeric_limits<RouteId>::max();

/// A named line spatial object a moving object travels along (paper §2).
///
/// Positions on the route are addressed by route-distance (arc length) from
/// its first vertex; `direction` in the position attribute selects which
/// endpoint counts as the origin of travel.
class Route {
 public:
  Route() = default;
  Route(RouteId id, Polyline shape, std::string name = {})
      : id_(id), shape_(std::move(shape)), name_(std::move(name)) {}

  RouteId id() const { return id_; }
  const std::string& name() const { return name_; }
  const Polyline& shape() const { return shape_; }
  double Length() const { return shape_.Length(); }
  bool Valid() const { return id_ != kInvalidRouteId && shape_.Valid(); }

  /// Point on the route at route-distance `s` from the origin.
  Point2 PointAt(double s) const { return shape_.PointAtDistance(s); }

  /// Route-distance of the point on the route nearest to `p`.
  double Project(const Point2& p, double* out_distance = nullptr) const {
    return shape_.ProjectPoint(p, out_distance);
  }

 private:
  RouteId id_ = kInvalidRouteId;
  Polyline shape_;
  std::string name_;
};

/// Route-distance between two route positions (paper §2): the distance along
/// the route when both lie on the same route, infinity otherwise (the paper
/// defines cross-route distance as infinite so that a route change always
/// triggers a position update).
double RouteDistance(RouteId route_a, double s_a, RouteId route_b, double s_b);

}  // namespace modb::geo

#endif  // MODB_GEO_ROUTE_H_
