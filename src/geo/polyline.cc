#include "geo/polyline.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace modb::geo {

Polyline::Polyline(std::vector<Point2> points) {
  points_.reserve(points.size());
  for (const Point2& p : points) {
    if (!points_.empty() && ApproxEqual(points_.back(), p)) continue;
    points_.push_back(p);
  }
  cumulative_.reserve(points_.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < points_.size(); ++i) {
    if (i > 0) acc += Distance(points_[i - 1], points_[i]);
    cumulative_.push_back(acc);
    bbox_.Expand(points_[i]);
  }
}

std::size_t Polyline::SegmentIndexAt(double s) const {
  assert(Valid());
  s = std::clamp(s, 0.0, Length());
  // First vertex with cumulative length >= s; the segment ends there.
  const auto it = std::lower_bound(cumulative_.begin(), cumulative_.end(), s);
  std::size_t idx = static_cast<std::size_t>(it - cumulative_.begin());
  if (idx > 0) --idx;
  return std::min(idx, num_segments() - 1);
}

Point2 Polyline::PointAtDistance(double s) const {
  assert(Valid());
  s = std::clamp(s, 0.0, Length());
  const std::size_t i = SegmentIndexAt(s);
  const double seg_len = cumulative_[i + 1] - cumulative_[i];
  const double t = seg_len > 0.0 ? (s - cumulative_[i]) / seg_len : 0.0;
  return Lerp(points_[i], points_[i + 1], t);
}

Point2 Polyline::TangentAtDistance(double s) const {
  assert(Valid());
  const std::size_t i = SegmentIndexAt(std::clamp(s, 0.0, Length()));
  const Point2 d = points_[i + 1] - points_[i];
  const double n = d.Norm();
  return n > 0.0 ? d / n : Point2{1.0, 0.0};
}

double Polyline::ProjectPoint(const Point2& p, double* out_distance) const {
  assert(Valid());
  double best_dist = std::numeric_limits<double>::infinity();
  double best_s = 0.0;
  for (std::size_t i = 0; i < num_segments(); ++i) {
    const Segment seg(points_[i], points_[i + 1]);
    const double t = seg.ClosestParam(p);
    const Point2 q = seg.At(t);
    const double d = Distance(p, q);
    if (d < best_dist) {
      best_dist = d;
      best_s = cumulative_[i] + t * (cumulative_[i + 1] - cumulative_[i]);
    }
  }
  if (out_distance != nullptr) *out_distance = best_dist;
  return best_s;
}

Box2 Polyline::BoundingBoxBetween(double s0, double s1) const {
  assert(Valid());
  if (s0 > s1) std::swap(s0, s1);
  s0 = std::clamp(s0, 0.0, Length());
  s1 = std::clamp(s1, 0.0, Length());
  Box2 box;
  box.Expand(PointAtDistance(s0));
  box.Expand(PointAtDistance(s1));
  const std::size_t i0 = SegmentIndexAt(s0);
  const std::size_t i1 = SegmentIndexAt(s1);
  // Interior vertices strictly between s0 and s1.
  for (std::size_t v = i0 + 1; v <= i1; ++v) {
    if (cumulative_[v] >= s0 && cumulative_[v] <= s1) box.Expand(points_[v]);
  }
  return box;
}

std::vector<Point2> Polyline::SubPolyline(double s0, double s1) const {
  assert(Valid());
  if (s0 > s1) std::swap(s0, s1);
  s0 = std::clamp(s0, 0.0, Length());
  s1 = std::clamp(s1, 0.0, Length());
  std::vector<Point2> out;
  out.push_back(PointAtDistance(s0));
  const std::size_t i0 = SegmentIndexAt(s0);
  const std::size_t i1 = SegmentIndexAt(s1);
  for (std::size_t v = i0 + 1; v <= i1; ++v) {
    if (cumulative_[v] > s0 && cumulative_[v] < s1) out.push_back(points_[v]);
  }
  const Point2 end = PointAtDistance(s1);
  if (!ApproxEqual(out.back(), end)) out.push_back(end);
  return out;
}

double Polyline::SubLengthInsidePolygon(double s0, double s1,
                                        const Polygon& polygon) const {
  const std::vector<Point2> sub = SubPolyline(s0, s1);
  double inside = 0.0;
  for (std::size_t i = 0; i + 1 < sub.size(); ++i) {
    inside += polygon.IntersectionLength(Segment(sub[i], sub[i + 1]));
  }
  return inside;
}

double Polyline::SubDistanceFromPoint(const Point2& p, double s0,
                                      double s1) const {
  const std::vector<Point2> sub = SubPolyline(s0, s1);
  if (sub.size() == 1) return Distance(p, sub.front());
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i + 1 < sub.size(); ++i) {
    best = std::min(best, Segment(sub[i], sub[i + 1]).DistanceTo(p));
  }
  return best;
}

double Polyline::SubMaxDistanceFromPoint(const Point2& p, double s0,
                                         double s1) const {
  const std::vector<Point2> sub = SubPolyline(s0, s1);
  double worst = 0.0;
  for (const Point2& q : sub) worst = std::max(worst, Distance(p, q));
  return worst;
}

bool Polyline::SubIntersectsPolygon(double s0, double s1,
                                    const Polygon& polygon) const {
  const std::vector<Point2> sub = SubPolyline(s0, s1);
  if (sub.size() == 1) return polygon.Contains(sub.front());
  for (std::size_t i = 0; i + 1 < sub.size(); ++i) {
    if (polygon.Intersects(Segment(sub[i], sub[i + 1]))) return true;
  }
  return false;
}

bool Polyline::SubInsidePolygon(double s0, double s1,
                                const Polygon& polygon) const {
  const std::vector<Point2> sub = SubPolyline(s0, s1);
  if (sub.size() == 1) return polygon.Contains(sub.front());
  for (std::size_t i = 0; i + 1 < sub.size(); ++i) {
    if (!polygon.ContainsSegment(Segment(sub[i], sub[i + 1]))) return false;
  }
  return true;
}

}  // namespace modb::geo
