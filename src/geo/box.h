#ifndef MODB_GEO_BOX_H_
#define MODB_GEO_BOX_H_

#include <algorithm>
#include <limits>
#include <string>

#include "geo/point.h"

namespace modb::geo {

/// Axis-aligned 2-D bounding box. An empty box has min > max.
struct Box2 {
  Point2 min{std::numeric_limits<double>::infinity(),
             std::numeric_limits<double>::infinity()};
  Point2 max{-std::numeric_limits<double>::infinity(),
             -std::numeric_limits<double>::infinity()};

  Box2() = default;
  Box2(Point2 lo, Point2 hi) : min(lo), max(hi) {}

  /// True when the box contains no points.
  bool Empty() const { return min.x > max.x || min.y > max.y; }

  /// Grows the box to cover `p`.
  void Expand(const Point2& p) {
    min.x = std::min(min.x, p.x);
    min.y = std::min(min.y, p.y);
    max.x = std::max(max.x, p.x);
    max.y = std::max(max.y, p.y);
  }

  /// Grows the box to cover `other`.
  void Expand(const Box2& other) {
    if (other.Empty()) return;
    Expand(other.min);
    Expand(other.max);
  }

  /// Pads the box by `margin` on every side.
  void Inflate(double margin) {
    if (Empty()) return;
    min.x -= margin;
    min.y -= margin;
    max.x += margin;
    max.y += margin;
  }

  bool Contains(const Point2& p) const {
    return !Empty() && p.x >= min.x && p.x <= max.x && p.y >= min.y &&
           p.y <= max.y;
  }

  bool Intersects(const Box2& o) const {
    return !Empty() && !o.Empty() && min.x <= o.max.x && o.min.x <= max.x &&
           min.y <= o.max.y && o.min.y <= max.y;
  }

  double Width() const { return Empty() ? 0.0 : max.x - min.x; }
  double Height() const { return Empty() ? 0.0 : max.y - min.y; }
  double Area() const { return Width() * Height(); }
  Point2 Center() const { return Lerp(min, max, 0.5); }

  std::string ToString() const;
};

/// Axis-aligned 3-D box over (x, y, t) time-space. An empty box has
/// min > max. This is the unit the time-space index stores.
struct Box3 {
  double min[3] = {std::numeric_limits<double>::infinity(),
                   std::numeric_limits<double>::infinity(),
                   std::numeric_limits<double>::infinity()};
  double max[3] = {-std::numeric_limits<double>::infinity(),
                   -std::numeric_limits<double>::infinity(),
                   -std::numeric_limits<double>::infinity()};

  Box3() = default;
  /// Builds the box [x0,x1]x[y0,y1]x[t0,t1] (each pair already ordered).
  Box3(double x0, double y0, double t0, double x1, double y1, double t1) {
    min[0] = x0;
    min[1] = y0;
    min[2] = t0;
    max[0] = x1;
    max[1] = y1;
    max[2] = t1;
  }
  /// Lifts a 2-D box into the time slab [t0, t1].
  Box3(const Box2& b, double t0, double t1)
      : Box3(b.min.x, b.min.y, t0, b.max.x, b.max.y, t1) {}

  bool Empty() const {
    return min[0] > max[0] || min[1] > max[1] || min[2] > max[2];
  }

  void Expand(const Box3& o) {
    for (int d = 0; d < 3; ++d) {
      min[d] = std::min(min[d], o.min[d]);
      max[d] = std::max(max[d], o.max[d]);
    }
  }

  bool Intersects(const Box3& o) const {
    if (Empty() || o.Empty()) return false;
    for (int d = 0; d < 3; ++d) {
      if (min[d] > o.max[d] || o.min[d] > max[d]) return false;
    }
    return true;
  }

  bool Contains(const Box3& o) const {
    if (Empty() || o.Empty()) return false;
    for (int d = 0; d < 3; ++d) {
      if (o.min[d] < min[d] || o.max[d] > max[d]) return false;
    }
    return true;
  }

  double Extent(int d) const { return Empty() ? 0.0 : max[d] - min[d]; }

  /// Volume of the box (0 when empty or degenerate).
  double Volume() const {
    if (Empty()) return 0.0;
    return Extent(0) * Extent(1) * Extent(2);
  }

  /// Sum of the edge lengths (the R*-tree "margin" heuristic).
  double Margin() const {
    if (Empty()) return 0.0;
    return Extent(0) + Extent(1) + Extent(2);
  }

  /// Volume of the intersection with `o` (0 when disjoint).
  double OverlapVolume(const Box3& o) const;

  /// Smallest box covering both this and `o`.
  Box3 Union(const Box3& o) const {
    Box3 u = *this;
    u.Expand(o);
    return u;
  }

  /// Volume increase required to cover `o`.
  double Enlargement(const Box3& o) const {
    return Union(o).Volume() - Volume();
  }

  double CenterDim(int d) const { return 0.5 * (min[d] + max[d]); }

  std::string ToString() const;
};

}  // namespace modb::geo

#endif  // MODB_GEO_BOX_H_
