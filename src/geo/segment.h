#ifndef MODB_GEO_SEGMENT_H_
#define MODB_GEO_SEGMENT_H_

#include <optional>

#include "geo/box.h"
#include "geo/point.h"

namespace modb::geo {

/// Closed line segment between two points.
struct Segment {
  Point2 a;
  Point2 b;

  Segment() = default;
  Segment(Point2 p, Point2 q) : a(p), b(q) {}

  double Length() const { return Distance(a, b); }

  /// Point at parameter `t` in [0, 1] along the segment (clamped).
  Point2 At(double t) const;

  /// Point on the segment closest to `p`.
  Point2 ClosestPoint(const Point2& p) const;

  /// Parameter in [0, 1] of the point on the segment closest to `p`.
  double ClosestParam(const Point2& p) const;

  /// Euclidean distance from `p` to the segment.
  double DistanceTo(const Point2& p) const;

  Box2 BoundingBox() const;
};

/// True when segments `s` and `t` share at least one point (including
/// touching endpoints and collinear overlap).
bool SegmentsIntersect(const Segment& s, const Segment& t);

/// Intersection point of two properly crossing segments; nullopt when the
/// segments do not cross at a single interior/endpoint location (parallel or
/// disjoint). For collinear overlap, returns one shared point.
std::optional<Point2> SegmentIntersection(const Segment& s, const Segment& t);

}  // namespace modb::geo

#endif  // MODB_GEO_SEGMENT_H_
