#ifndef MODB_GEO_ROUTE_NETWORK_H_
#define MODB_GEO_ROUTE_NETWORK_H_

#include <string>
#include <vector>

#include "geo/route.h"
#include "util/rng.h"
#include "util/status.h"

namespace modb::geo {

/// Catalog of routes (the paper's "route database").
///
/// The DBMS stores a set of routes; every moving object travels along one
/// route at a time, referenced by `RouteId`. The network also provides
/// synthetic generators used by the simulation testbed.
class RouteNetwork {
 public:
  RouteNetwork() = default;

  /// Adds a route built from `shape`; returns its id.
  RouteId AddRoute(Polyline shape, std::string name = {});

  /// Looks up a route; `NotFound` for unknown ids.
  util::Result<const Route*> FindRoute(RouteId id) const;

  /// Unchecked accessor: requires a valid id.
  const Route& route(RouteId id) const { return routes_[id]; }

  std::size_t size() const { return routes_.size(); }
  const std::vector<Route>& routes() const { return routes_; }

  /// Bounding box of every route in the network.
  Box2 BoundingBox() const;

  // ---- Synthetic generators (simulation substrate) ----

  /// Adds a straight route from `a` to `b`.
  RouteId AddStraightRoute(const Point2& a, const Point2& b,
                           std::string name = {});

  /// Adds `rows` horizontal and `cols` vertical streets with `spacing`
  /// between consecutive streets, origin at (0, 0). Returns the ids added.
  /// Each street is one route spanning the full grid extent.
  std::vector<RouteId> AddGridNetwork(std::size_t rows, std::size_t cols,
                                      double spacing);

  /// Adds a random winding route: a polyline starting at `start`, taking
  /// `num_segments` legs of length `leg_length`, each turning by a random
  /// angle within +/- `max_turn_radians` of the previous heading.
  RouteId AddRandomWindingRoute(util::Rng& rng, const Point2& start,
                                std::size_t num_segments, double leg_length,
                                double max_turn_radians,
                                std::string name = {});

  /// Adds a closed rectangular loop route (useful for long trips on a
  /// bounded map): perimeter of [x0,x1] x [y0,y1], traversed `laps` times.
  RouteId AddLoopRoute(double x0, double y0, double x1, double y1,
                       std::size_t laps, std::string name = {});

 private:
  std::vector<Route> routes_;
};

}  // namespace modb::geo

#endif  // MODB_GEO_ROUTE_NETWORK_H_
