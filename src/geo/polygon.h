#ifndef MODB_GEO_POLYGON_H_
#define MODB_GEO_POLYGON_H_

#include <cstddef>
#include <vector>

#include "geo/box.h"
#include "geo/point.h"
#include "geo/segment.h"

namespace modb::geo {

/// Simple polygon given by its vertex ring (implicitly closed).
///
/// Queries in the paper are of the form "retrieve the objects that are in
/// polygon G"; `Polygon` provides the point containment and segment
/// intersection predicates that the MUST/MAY classification needs.
class Polygon {
 public:
  Polygon() = default;
  /// Builds a polygon from `vertices` (at least 3, in either winding order).
  explicit Polygon(std::vector<Point2> vertices);

  /// Axis-aligned rectangle [x0,x1] x [y0,y1].
  static Polygon Rectangle(double x0, double y0, double x1, double y1);
  /// Rectangle centred at `c` with half-extents hx, hy.
  static Polygon CenteredRectangle(const Point2& c, double hx, double hy);
  /// Regular n-gon approximating the disc of radius `r` around `c`
  /// (n >= 3; the polygon is inscribed in the circle).
  static Polygon RegularNGon(const Point2& c, double r, std::size_t n);

  const std::vector<Point2>& vertices() const { return vertices_; }
  std::size_t size() const { return vertices_.size(); }
  bool Valid() const { return vertices_.size() >= 3; }

  /// Edge `i` (from vertex i to vertex (i+1) mod n).
  Segment Edge(std::size_t i) const;

  /// True when `p` is inside or on the boundary (even-odd rule with an
  /// explicit boundary test, so boundary points count as contained).
  bool Contains(const Point2& p) const;

  /// True when segment `s` intersects the polygon (boundary or interior).
  bool Intersects(const Segment& s) const;

  /// True when segment `s` lies entirely inside the polygon (boundary
  /// included). For convex polygons this is exact; for non-convex polygons
  /// it additionally verifies that `s` does not properly cross any edge.
  bool ContainsSegment(const Segment& s) const;

  /// Length of the part of segment `s` that lies inside the polygon
  /// (boundary included). Exact: clips the segment at every edge crossing
  /// and classifies each piece by its midpoint.
  double IntersectionLength(const Segment& s) const;

  /// Signed area (> 0 for counter-clockwise rings).
  double SignedArea() const;
  /// Absolute area.
  double Area() const { return SignedArea() < 0 ? -SignedArea() : SignedArea(); }

  Box2 BoundingBox() const { return bbox_; }

 private:
  std::vector<Point2> vertices_;
  Box2 bbox_;
};

}  // namespace modb::geo

#endif  // MODB_GEO_POLYGON_H_
