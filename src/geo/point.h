#ifndef MODB_GEO_POINT_H_
#define MODB_GEO_POINT_H_

#include <cmath>
#include <string>

namespace modb::geo {

/// Tolerance used by the geometric predicates in this module.
inline constexpr double kGeomEpsilon = 1e-9;

/// 2-D point / vector with double coordinates.
///
/// Used both as a position (point) and as a displacement (vector); the
/// operators below cover both readings.
struct Point2 {
  double x = 0.0;
  double y = 0.0;

  constexpr Point2() = default;
  constexpr Point2(double xx, double yy) : x(xx), y(yy) {}

  constexpr Point2 operator+(const Point2& o) const { return {x + o.x, y + o.y}; }
  constexpr Point2 operator-(const Point2& o) const { return {x - o.x, y - o.y}; }
  constexpr Point2 operator*(double s) const { return {x * s, y * s}; }
  constexpr Point2 operator/(double s) const { return {x / s, y / s}; }
  Point2& operator+=(const Point2& o) {
    x += o.x;
    y += o.y;
    return *this;
  }
  Point2& operator-=(const Point2& o) {
    x -= o.x;
    y -= o.y;
    return *this;
  }

  /// Euclidean norm when read as a vector.
  double Norm() const { return std::hypot(x, y); }
  /// Squared norm (avoids the sqrt for comparisons).
  constexpr double NormSquared() const { return x * x + y * y; }

  std::string ToString() const;
};

constexpr Point2 operator*(double s, const Point2& p) { return p * s; }

/// Dot product of `a` and `b` read as vectors.
constexpr double Dot(const Point2& a, const Point2& b) {
  return a.x * b.x + a.y * b.y;
}

/// 2-D cross product (z component): > 0 when `b` is counter-clockwise of `a`.
constexpr double Cross(const Point2& a, const Point2& b) {
  return a.x * b.y - a.y * b.x;
}

/// Euclidean distance between two points.
inline double Distance(const Point2& a, const Point2& b) {
  return (a - b).Norm();
}

/// Squared Euclidean distance between two points.
constexpr double DistanceSquared(const Point2& a, const Point2& b) {
  return (a - b).NormSquared();
}

/// Component-wise approximate equality within `eps`.
inline bool ApproxEqual(const Point2& a, const Point2& b,
                        double eps = kGeomEpsilon) {
  return std::fabs(a.x - b.x) <= eps && std::fabs(a.y - b.y) <= eps;
}

/// Exact equality (used by containers and tests on constructed data).
constexpr bool operator==(const Point2& a, const Point2& b) {
  return a.x == b.x && a.y == b.y;
}
constexpr bool operator!=(const Point2& a, const Point2& b) { return !(a == b); }

/// Linear interpolation: `a` at t=0, `b` at t=1.
constexpr Point2 Lerp(const Point2& a, const Point2& b, double t) {
  return {a.x + (b.x - a.x) * t, a.y + (b.y - a.y) * t};
}

}  // namespace modb::geo

#endif  // MODB_GEO_POINT_H_
