#include "geo/route_network.h"

#include <cmath>

namespace modb::geo {

RouteId RouteNetwork::AddRoute(Polyline shape, std::string name) {
  const RouteId id = static_cast<RouteId>(routes_.size());
  routes_.emplace_back(id, std::move(shape), std::move(name));
  return id;
}

util::Result<const Route*> RouteNetwork::FindRoute(RouteId id) const {
  if (id >= routes_.size()) {
    return util::Status::NotFound("route id " + std::to_string(id));
  }
  return &routes_[id];
}

Box2 RouteNetwork::BoundingBox() const {
  Box2 box;
  for (const Route& r : routes_) box.Expand(r.shape().BoundingBox());
  return box;
}

RouteId RouteNetwork::AddStraightRoute(const Point2& a, const Point2& b,
                                       std::string name) {
  return AddRoute(Polyline({a, b}), std::move(name));
}

std::vector<RouteId> RouteNetwork::AddGridNetwork(std::size_t rows,
                                                  std::size_t cols,
                                                  double spacing) {
  std::vector<RouteId> ids;
  ids.reserve(rows + cols);
  const double width = spacing * static_cast<double>(cols > 0 ? cols - 1 : 0);
  const double height = spacing * static_cast<double>(rows > 0 ? rows - 1 : 0);
  for (std::size_t r = 0; r < rows; ++r) {
    const double y = spacing * static_cast<double>(r);
    ids.push_back(AddStraightRoute({0.0, y}, {width, y},
                                   "ew-street-" + std::to_string(r)));
  }
  for (std::size_t c = 0; c < cols; ++c) {
    const double x = spacing * static_cast<double>(c);
    ids.push_back(AddStraightRoute({x, 0.0}, {x, height},
                                   "ns-street-" + std::to_string(c)));
  }
  return ids;
}

RouteId RouteNetwork::AddRandomWindingRoute(util::Rng& rng, const Point2& start,
                                            std::size_t num_segments,
                                            double leg_length,
                                            double max_turn_radians,
                                            std::string name) {
  std::vector<Point2> pts;
  pts.reserve(num_segments + 1);
  pts.push_back(start);
  double heading = rng.Uniform(0.0, 2.0 * M_PI);
  Point2 cur = start;
  for (std::size_t i = 0; i < num_segments; ++i) {
    heading += rng.Uniform(-max_turn_radians, max_turn_radians);
    cur += Point2{std::cos(heading), std::sin(heading)} * leg_length;
    pts.push_back(cur);
  }
  return AddRoute(Polyline(std::move(pts)), std::move(name));
}

RouteId RouteNetwork::AddLoopRoute(double x0, double y0, double x1, double y1,
                                   std::size_t laps, std::string name) {
  if (x0 > x1) std::swap(x0, x1);
  if (y0 > y1) std::swap(y0, y1);
  std::vector<Point2> pts;
  pts.reserve(4 * laps + 1);
  pts.push_back({x0, y0});
  for (std::size_t lap = 0; lap < laps; ++lap) {
    pts.push_back({x1, y0});
    pts.push_back({x1, y1});
    pts.push_back({x0, y1});
    pts.push_back({x0, y0});
  }
  return AddRoute(Polyline(std::move(pts)), std::move(name));
}

}  // namespace modb::geo
