#include "geo/box.h"

#include <cstdio>

namespace modb::geo {

std::string Box2::ToString() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "[%s, %s]", min.ToString().c_str(),
                max.ToString().c_str());
  return buf;
}

double Box3::OverlapVolume(const Box3& o) const {
  if (Empty() || o.Empty()) return 0.0;
  double volume = 1.0;
  for (int d = 0; d < 3; ++d) {
    const double lo = std::max(min[d], o.min[d]);
    const double hi = std::min(max[d], o.max[d]);
    if (hi < lo) return 0.0;
    volume *= hi - lo;
  }
  return volume;
}

std::string Box3::ToString() const {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "[(%.6g, %.6g, %.6g), (%.6g, %.6g, %.6g)]", min[0], min[1],
                min[2], max[0], max[1], max[2]);
  return buf;
}

}  // namespace modb::geo
