#include "geo/route.h"

#include <cmath>

namespace modb::geo {

double RouteDistance(RouteId route_a, double s_a, RouteId route_b, double s_b) {
  if (route_a != route_b) return std::numeric_limits<double>::infinity();
  return std::fabs(s_a - s_b);
}

}  // namespace modb::geo
