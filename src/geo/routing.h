#ifndef MODB_GEO_ROUTING_H_
#define MODB_GEO_ROUTING_H_

#include <cstddef>
#include <vector>

#include "geo/route_network.h"
#include "util/status.h"

namespace modb::geo {

/// A position on a specific route (route id + route-distance).
struct RouteAnchor {
  RouteId route = kInvalidRouteId;
  double distance = 0.0;
};

/// One leg of a computed path: travel `route` from arc length `from` to
/// `to` (backwards when to < from).
struct PathLeg {
  RouteId route = kInvalidRouteId;
  double from = 0.0;
  double to = 0.0;

  double Length() const { return to >= from ? to - from : from - to; }
};

/// Connectivity over a `RouteNetwork`: routes are linked wherever their
/// polylines touch or cross (junctions), and shortest paths by travelled
/// route-distance are answered with Dijkstra.
///
/// The paper models an object as being "at any point in time on a unique
/// route from the route database" with route changes triggering updates
/// (§2, §3.1); the routing graph is the planning substrate that produces
/// realistic multi-route itineraries for the simulation testbed (and for
/// the examples' trip planning).
class RoutingGraph {
 public:
  struct Options {
    /// Junction points closer than this merge into one node.
    double junction_tolerance = 1e-6;
  };

  /// Builds the graph by intersecting every pair of routes. `network` must
  /// outlive the graph; routes added to the network later are not seen.
  explicit RoutingGraph(const RouteNetwork* network);
  RoutingGraph(const RouteNetwork* network, Options options);

  /// Number of distinct junction points.
  std::size_t num_junctions() const { return junctions_.size(); }
  /// Number of route stretches between adjacent junctions.
  std::size_t num_edges() const { return num_edges_; }

  /// Junction positions (for visualisation / tests).
  std::vector<Point2> JunctionPositions() const;

  /// Shortest path from `from` to `to` by total route-distance. Returns
  /// the legs to travel in order (consecutive same-route legs merged), or
  /// NotFound when the two anchors are not connected, or InvalidArgument
  /// for unknown routes / off-route distances. A zero-length trip yields
  /// an empty leg list.
  util::Result<std::vector<PathLeg>> ShortestPath(const RouteAnchor& from,
                                                  const RouteAnchor& to) const;

  /// Total length of a path.
  static double PathLength(const std::vector<PathLeg>& legs);

 private:
  struct Junction {
    Point2 position;
    /// Every (route, arc length) this physical point lies on.
    std::vector<RouteAnchor> anchors;
  };

  void BuildJunctions();
  /// Index of the junction within `tolerance` of `p`, or adds a new one.
  std::size_t InternJunction(const Point2& p);

  const RouteNetwork* network_;
  Options options_;
  std::vector<Junction> junctions_;
  /// Per route: (arc length, junction index), ascending by arc length.
  std::vector<std::vector<std::pair<double, std::size_t>>> route_stops_;
  std::size_t num_edges_ = 0;
};

}  // namespace modb::geo

#endif  // MODB_GEO_ROUTING_H_
