#include "geo/routing.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "geo/segment.h"

namespace modb::geo {

RoutingGraph::RoutingGraph(const RouteNetwork* network)
    : RoutingGraph(network, Options{}) {}

RoutingGraph::RoutingGraph(const RouteNetwork* network, Options options)
    : network_(network), options_(options) {
  BuildJunctions();
}

std::size_t RoutingGraph::InternJunction(const Point2& p) {
  for (std::size_t i = 0; i < junctions_.size(); ++i) {
    if (Distance(junctions_[i].position, p) <= options_.junction_tolerance) {
      return i;
    }
  }
  junctions_.push_back(Junction{p, {}});
  return junctions_.size() - 1;
}

void RoutingGraph::BuildJunctions() {
  const std::size_t n = network_->size();
  route_stops_.assign(n, {});

  // Pairwise segment intersections, bbox-pruned.
  for (std::size_t a = 0; a < n; ++a) {
    const Polyline& pa = network_->route(static_cast<RouteId>(a)).shape();
    for (std::size_t b = a + 1; b < n; ++b) {
      const Polyline& pb = network_->route(static_cast<RouteId>(b)).shape();
      if (!pa.BoundingBox().Intersects(pb.BoundingBox())) continue;
      for (std::size_t i = 0; i < pa.num_segments(); ++i) {
        const Segment sa(pa.points()[i], pa.points()[i + 1]);
        const Box2 box_a = sa.BoundingBox();
        for (std::size_t j = 0; j < pb.num_segments(); ++j) {
          const Segment sb(pb.points()[j], pb.points()[j + 1]);
          if (!box_a.Intersects(sb.BoundingBox())) continue;
          const auto hit = SegmentIntersection(sa, sb);
          if (!hit.has_value()) continue;
          const std::size_t junction = InternJunction(*hit);
          Junction& node = junctions_[junction];
          // Record the anchor on each route once per route.
          for (const RouteId rid : {static_cast<RouteId>(a),
                                    static_cast<RouteId>(b)}) {
            const bool known =
                std::any_of(node.anchors.begin(), node.anchors.end(),
                            [rid](const RouteAnchor& anchor) {
                              return anchor.route == rid;
                            });
            if (!known) {
              const double s =
                  network_->route(rid).Project(node.position);
              node.anchors.push_back({rid, s});
              route_stops_[rid].push_back({s, junction});
            }
          }
        }
      }
    }
  }
  num_edges_ = 0;
  for (auto& stops : route_stops_) {
    std::sort(stops.begin(), stops.end());
    stops.erase(std::unique(stops.begin(), stops.end(),
                            [this](const auto& x, const auto& y) {
                              return std::fabs(x.first - y.first) <=
                                     options_.junction_tolerance;
                            }),
                stops.end());
    if (stops.size() >= 2) num_edges_ += stops.size() - 1;
  }
}

std::vector<Point2> RoutingGraph::JunctionPositions() const {
  std::vector<Point2> out;
  out.reserve(junctions_.size());
  for (const Junction& j : junctions_) out.push_back(j.position);
  return out;
}

double RoutingGraph::PathLength(const std::vector<PathLeg>& legs) {
  double total = 0.0;
  for (const PathLeg& leg : legs) total += leg.Length();
  return total;
}

util::Result<std::vector<PathLeg>> RoutingGraph::ShortestPath(
    const RouteAnchor& from, const RouteAnchor& to) const {
  // Validate anchors.
  for (const RouteAnchor& anchor : {from, to}) {
    const auto route = network_->FindRoute(anchor.route);
    if (!route.ok()) return route.status();
    if (anchor.distance < 0.0 || anchor.distance > (*route)->Length()) {
      return util::Status::InvalidArgument("anchor off the route");
    }
  }
  if (from.route == to.route &&
      std::fabs(from.distance - to.distance) <= 1e-12) {
    return std::vector<PathLeg>{};
  }

  // Dijkstra over: junction nodes [0, J), start node J, end node J+1.
  // Moving along one route between consecutive stops is an edge; the start
  // and end anchors splice into their route's stop sequence.
  const std::size_t J = junctions_.size();
  const std::size_t start = J;
  const std::size_t goal = J + 1;
  const std::size_t total_nodes = J + 2;

  struct Hop {
    std::size_t node;
    double weight;
    RouteId route;
    double from_s;
    double to_s;
  };
  std::vector<std::vector<Hop>> adjacency(total_nodes);

  auto add_edge = [&adjacency](std::size_t u, std::size_t v, RouteId route,
                               double su, double sv) {
    const double w = std::fabs(sv - su);
    adjacency[u].push_back({v, w, route, su, sv});
    adjacency[v].push_back({u, w, route, sv, su});
  };

  for (RouteId rid = 0; rid < route_stops_.size(); ++rid) {
    // Splice start / end anchors into this route's stop list.
    std::vector<std::pair<double, std::size_t>> stops = route_stops_[rid];
    if (from.route == rid) stops.push_back({from.distance, start});
    if (to.route == rid) stops.push_back({to.distance, goal});
    std::sort(stops.begin(), stops.end());
    for (std::size_t i = 0; i + 1 < stops.size(); ++i) {
      add_edge(stops[i].second, stops[i + 1].second, rid, stops[i].first,
               stops[i + 1].first);
    }
  }

  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(total_nodes, kInf);
  std::vector<int> via(total_nodes, -1);       // index into adjacency[pred]
  std::vector<std::size_t> pred(total_nodes, total_nodes);
  using QueueItem = std::pair<double, std::size_t>;
  std::priority_queue<QueueItem, std::vector<QueueItem>, std::greater<>> queue;
  dist[start] = 0.0;
  queue.push({0.0, start});
  while (!queue.empty()) {
    const auto [d, u] = queue.top();
    queue.pop();
    if (d > dist[u]) continue;
    if (u == goal) break;
    for (std::size_t e = 0; e < adjacency[u].size(); ++e) {
      const Hop& hop = adjacency[u][e];
      const double nd = d + hop.weight;
      if (nd < dist[hop.node]) {
        dist[hop.node] = nd;
        pred[hop.node] = u;
        via[hop.node] = static_cast<int>(e);
        queue.push({nd, hop.node});
      }
    }
  }
  if (dist[goal] == kInf) {
    return util::Status::NotFound("no route connection between anchors");
  }

  // Walk the predecessor chain, then merge consecutive legs on one route.
  std::vector<PathLeg> reversed;
  std::size_t node = goal;
  while (node != start) {
    const std::size_t p = pred[node];
    const Hop& hop = adjacency[p][static_cast<std::size_t>(via[node])];
    reversed.push_back({hop.route, hop.from_s, hop.to_s});
    node = p;
  }
  std::vector<PathLeg> legs(reversed.rbegin(), reversed.rend());
  std::vector<PathLeg> merged;
  for (const PathLeg& leg : legs) {
    if (!merged.empty() && merged.back().route == leg.route &&
        std::fabs(merged.back().to - leg.from) <= 1e-9) {
      merged.back().to = leg.to;
    } else {
      merged.push_back(leg);
    }
  }
  // Drop zero-length fragments introduced by anchor splicing.
  merged.erase(std::remove_if(merged.begin(), merged.end(),
                              [](const PathLeg& leg) {
                                return leg.Length() <= 1e-12;
                              }),
               merged.end());
  return merged;
}

}  // namespace modb::geo
