#include "geo/point.h"

#include <cstdio>

namespace modb::geo {

std::string Point2::ToString() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "(%.6g, %.6g)", x, y);
  return buf;
}

}  // namespace modb::geo
