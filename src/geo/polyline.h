#ifndef MODB_GEO_POLYLINE_H_
#define MODB_GEO_POLYLINE_H_

#include <cstddef>
#include <vector>

#include "geo/box.h"
#include "geo/point.h"
#include "geo/polygon.h"
#include "geo/segment.h"

namespace modb::geo {

/// Piecewise-linear curve with arc-length parametrisation.
///
/// Routes in the paper are piecewise-linear; every position on a route is
/// addressed by its *route-distance* (arc length) from the first vertex.
/// `Polyline` pre-computes cumulative lengths so `PointAtDistance` and
/// `ProjectPoint` run in O(log n) / O(n).
class Polyline {
 public:
  Polyline() = default;
  /// Builds a polyline through `points` (at least 2; consecutive duplicates
  /// are collapsed).
  explicit Polyline(std::vector<Point2> points);

  const std::vector<Point2>& points() const { return points_; }
  std::size_t num_segments() const {
    return points_.size() < 2 ? 0 : points_.size() - 1;
  }
  bool Valid() const { return points_.size() >= 2; }

  /// Total arc length.
  double Length() const { return cumulative_.empty() ? 0.0 : cumulative_.back(); }

  /// Point at arc length `s` from the start; `s` is clamped to [0, Length()].
  Point2 PointAtDistance(double s) const;

  /// Unit tangent of the segment containing arc length `s` (direction of
  /// travel). Requires `Valid()`.
  Point2 TangentAtDistance(double s) const;

  /// Projects `p` onto the polyline: returns the arc length of the nearest
  /// point. `out_distance`, when non-null, receives the Euclidean distance
  /// from `p` to that nearest point.
  double ProjectPoint(const Point2& p, double* out_distance = nullptr) const;

  /// Bounding box of the whole polyline.
  Box2 BoundingBox() const { return bbox_; }

  /// Bounding box of the sub-curve with arc lengths in [s0, s1]
  /// (clamped; s0 <= s1 after swap).
  Box2 BoundingBoxBetween(double s0, double s1) const;

  /// Vertices of the sub-curve with arc lengths in [s0, s1], including the
  /// interpolated endpoints. Always has at least one point when Valid().
  std::vector<Point2> SubPolyline(double s0, double s1) const;

  /// Smallest Euclidean distance from `p` to the sub-curve [s0, s1].
  double SubDistanceFromPoint(const Point2& p, double s0, double s1) const;

  /// Largest Euclidean distance from `p` to the sub-curve [s0, s1]
  /// (attained at one of the sub-curve's vertices).
  double SubMaxDistanceFromPoint(const Point2& p, double s0, double s1) const;

  /// True when the sub-curve [s0, s1] intersects `polygon`.
  bool SubIntersectsPolygon(double s0, double s1, const Polygon& polygon) const;

  /// True when the sub-curve [s0, s1] lies entirely inside `polygon`.
  bool SubInsidePolygon(double s0, double s1, const Polygon& polygon) const;

  /// Arc length of the part of the sub-curve [s0, s1] inside `polygon`
  /// (exact, piecewise clipping).
  double SubLengthInsidePolygon(double s0, double s1,
                                const Polygon& polygon) const;

  /// Segment index containing arc length `s`, in [0, num_segments()).
  std::size_t SegmentIndexAt(double s) const;

 private:
  std::vector<Point2> points_;
  std::vector<double> cumulative_;  // cumulative_[i] = arc length at vertex i
  Box2 bbox_;
};

}  // namespace modb::geo

#endif  // MODB_GEO_POLYLINE_H_
