#ifndef MODB_STORAGE_BUFFER_POOL_H_
#define MODB_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "storage/storage_manager.h"
#include "util/status.h"

namespace modb::storage {

/// Converts between a client's materialised page object and the byte
/// payload the storage manager persists. The pool caches *objects* (frames
/// hold the decoded form), so a hit costs a hash lookup, not a decode —
/// encode/decode run only at the storage boundary: miss, eviction
/// writeback, and flush.
struct PageCodec {
  std::function<util::Status(const void* object, std::string* out)> encode;
  std::function<util::Result<std::shared_ptr<void>>(std::string_view)> decode;
};

/// Identity codec over `std::string` payloads, for clients (and tests)
/// that want plain byte pages.
PageCodec StringPageCodec();

struct BufferPoolOptions {
  /// Frame budget; 0 = unbounded (nothing is ever evicted). The cap is
  /// soft: when every frame is pinned the pool admits the extra frame
  /// rather than failing, and counts it in `stats().overflow_frames`.
  std::size_t capacity_pages = 0;
};

struct BufferPoolStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  /// Dirty frames written back to storage (evictions of dirty frames plus
  /// `FlushDirty` writes) — with the checkpoint protocol on top, exactly
  /// the incremental "only dirty pages" write set.
  std::uint64_t writebacks = 0;
  std::uint64_t creates = 0;
  std::uint64_t frees = 0;
  std::uint64_t flushes = 0;
  std::uint64_t overflow_frames = 0;
};

/// Page cache between an index and its `IStorageManager`: bounded frames,
/// pin/unpin refcounts via RAII handles, clock (second-chance) eviction of
/// unpinned frames, dirty-frame writeback. All operations are internally
/// synchronised by one mutex, so concurrent readers of an index may fault
/// pages in and advance the clock simultaneously; mutating a pinned
/// *object* concurrently is the client's concern (the R*-tree's
/// writers-exclusive contract covers it).
class BufferPool {
 public:
  BufferPool(IStorageManager* storage, PageCodec codec,
             BufferPoolOptions options);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Pinned reference to a cached page object. The frame cannot be evicted
  /// while a handle to it lives; destruction unpins.
  class Handle {
   public:
    Handle() = default;
    Handle(Handle&& other) noexcept { *this = std::move(other); }
    Handle& operator=(Handle&& other) noexcept;
    ~Handle() { Release(); }

    Handle(const Handle&) = delete;
    Handle& operator=(const Handle&) = delete;

    bool valid() const { return pool_ != nullptr; }
    PageId id() const { return id_; }
    void* get() const { return object_; }
    /// Marks the frame dirty: its object diverged from storage and must be
    /// written back on eviction / flush.
    void MarkDirty();
    /// Unpins early (idempotent).
    void Release();

   private:
    friend class BufferPool;
    Handle(BufferPool* pool, PageId id, void* object)
        : pool_(pool), id_(id), object_(object) {}

    BufferPool* pool_ = nullptr;
    PageId id_ = kInvalidPageId;
    void* object_ = nullptr;
  };

  /// Returns a pinned handle to page `id`, faulting it in from storage on
  /// a miss (decode errors and storage read errors surface here).
  util::Result<Handle> Fetch(PageId id);

  /// Allocates a fresh page holding `object` and returns it pinned and
  /// dirty (nothing touches storage until eviction or flush).
  util::Result<Handle> Create(std::shared_ptr<void> object);

  /// Drops the page from the pool and frees it in storage. The frame must
  /// be unpinned (release handles first).
  util::Status Free(PageId id);

  /// Writes every dirty frame back (encode + `WritePage`), then `Flush`es
  /// the storage manager — the commit point a checkpoint rides on. Clean
  /// frames are untouched: a quiescent pool flushes nothing.
  util::Status FlushDirty();

  /// Drops every frame without writeback (the index `Clear` path, paired
  /// with `IStorageManager::Reset`). Fails when any frame is pinned.
  util::Status DropAll();

  BufferPoolStats stats() const;
  std::size_t num_frames() const;
  std::size_t dirty_frames() const;
  std::size_t pinned_frames() const;
  IStorageManager* storage() const { return storage_; }
  const BufferPoolOptions& options() const { return options_; }

 private:
  struct Frame {
    std::shared_ptr<void> object;
    std::uint32_t pins = 0;
    bool dirty = false;
    bool referenced = true;  // clock second-chance bit
  };

  void Unpin(PageId id);
  void MarkDirtyInternal(PageId id);
  /// Admits a frame for `id`, evicting if over budget. Caller holds `mu_`.
  util::Status AdmitLocked(PageId id, Frame frame);
  /// Clock sweep for an evictable (unpinned) victim; `*evicted` reports
  /// whether one was found. Caller holds `mu_`.
  util::Status EvictOneLocked(bool* evicted);
  util::Status WriteBackLocked(PageId id, Frame& frame);

  IStorageManager* const storage_;
  const PageCodec codec_;
  const BufferPoolOptions options_;

  mutable std::mutex mu_;
  std::unordered_map<PageId, Frame> frames_;
  /// Clock ring of resident page ids (lazily compacted: stale ids that
  /// left the pool are skipped and removed during sweeps).
  std::vector<PageId> clock_;
  std::size_t clock_hand_ = 0;
  BufferPoolStats stats_;
};

}  // namespace modb::storage

#endif  // MODB_STORAGE_BUFFER_POOL_H_
