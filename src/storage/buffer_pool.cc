#include "storage/buffer_pool.h"

#include <utility>

namespace modb::storage {

PageCodec StringPageCodec() {
  PageCodec codec;
  codec.encode = [](const void* object, std::string* out) {
    *out = *static_cast<const std::string*>(object);
    return util::Status::Ok();
  };
  codec.decode = [](std::string_view bytes) -> util::Result<std::shared_ptr<void>> {
    return std::shared_ptr<void>(std::make_shared<std::string>(bytes));
  };
  return codec;
}

BufferPool::BufferPool(IStorageManager* storage, PageCodec codec,
                       BufferPoolOptions options)
    : storage_(storage), codec_(std::move(codec)), options_(options) {}

BufferPool::~BufferPool() = default;

BufferPool::Handle& BufferPool::Handle::operator=(Handle&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    id_ = other.id_;
    object_ = other.object_;
    other.pool_ = nullptr;
    other.object_ = nullptr;
    other.id_ = kInvalidPageId;
  }
  return *this;
}

void BufferPool::Handle::MarkDirty() {
  if (pool_ != nullptr) pool_->MarkDirtyInternal(id_);
}

void BufferPool::Handle::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(id_);
    pool_ = nullptr;
    object_ = nullptr;
    id_ = kInvalidPageId;
  }
}

util::Result<BufferPool::Handle> BufferPool::Fetch(PageId id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (auto it = frames_.find(id); it != frames_.end()) {
    ++stats_.hits;
    it->second.referenced = true;
    ++it->second.pins;
    return Handle(this, id, it->second.object.get());
  }
  ++stats_.misses;
  auto bytes = storage_->ReadPage(id);
  if (!bytes.ok()) return bytes.status();
  auto object = codec_.decode(*bytes);
  if (!object.ok()) {
    return util::Status(object.status().code(),
                        "page " + std::to_string(id) +
                            " decode: " + object.status().message());
  }
  Frame frame;
  frame.object = std::move(*object);
  frame.pins = 1;
  if (util::Status s = AdmitLocked(id, std::move(frame)); !s.ok()) return s;
  return Handle(this, id, frames_[id].object.get());
}

util::Result<BufferPool::Handle> BufferPool::Create(
    std::shared_ptr<void> object) {
  std::lock_guard<std::mutex> lock(mu_);
  auto id = storage_->AllocatePage();
  if (!id.ok()) return id.status();
  Frame frame;
  frame.object = std::move(object);
  frame.pins = 1;
  frame.dirty = true;
  if (util::Status s = AdmitLocked(*id, std::move(frame)); !s.ok()) return s;
  ++stats_.creates;
  return Handle(this, *id, frames_[*id].object.get());
}

util::Status BufferPool::Free(PageId id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (auto it = frames_.find(id); it != frames_.end()) {
    if (it->second.pins > 0) {
      return util::Status::FailedPrecondition(
          "page " + std::to_string(id) + " freed while pinned");
    }
    frames_.erase(it);  // the clock ring entry goes stale and is swept later
  }
  if (util::Status s = storage_->FreePage(id); !s.ok()) return s;
  ++stats_.frees;
  return util::Status::Ok();
}

util::Status BufferPool::FlushDirty() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [id, frame] : frames_) {
    if (!frame.dirty) continue;
    if (util::Status s = WriteBackLocked(id, frame); !s.ok()) return s;
  }
  if (util::Status s = storage_->Flush(); !s.ok()) return s;
  ++stats_.flushes;
  return util::Status::Ok();
}

util::Status BufferPool::DropAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [id, frame] : frames_) {
    if (frame.pins > 0) {
      return util::Status::FailedPrecondition(
          "page " + std::to_string(id) + " dropped while pinned");
    }
  }
  frames_.clear();
  clock_.clear();
  clock_hand_ = 0;
  return util::Status::Ok();
}

void BufferPool::Unpin(PageId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = frames_.find(id);
  if (it != frames_.end() && it->second.pins > 0) --it->second.pins;
}

void BufferPool::MarkDirtyInternal(PageId id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (auto it = frames_.find(id); it != frames_.end()) it->second.dirty = true;
}

util::Status BufferPool::AdmitLocked(PageId id, Frame frame) {
  if (options_.capacity_pages > 0) {
    while (frames_.size() >= options_.capacity_pages) {
      bool evicted = false;
      if (util::Status s = EvictOneLocked(&evicted); !s.ok()) return s;
      if (!evicted) {
        // Every frame is pinned: admit over budget rather than fail — the
        // cap is a target, pins are correctness.
        ++stats_.overflow_frames;
        break;
      }
    }
  }
  frames_.emplace(id, std::move(frame));
  clock_.push_back(id);
  return util::Status::Ok();
}

util::Status BufferPool::EvictOneLocked(bool* evicted) {
  *evicted = false;
  // Two full sweeps: the first may only clear reference bits.
  std::size_t budget = 2 * clock_.size();
  while (budget-- > 0 && !clock_.empty()) {
    if (clock_hand_ >= clock_.size()) clock_hand_ = 0;
    const PageId id = clock_[clock_hand_];
    auto it = frames_.find(id);
    if (it == frames_.end()) {
      // Stale ring entry (frame freed or already evicted via a duplicate).
      clock_.erase(clock_.begin() +
                   static_cast<std::ptrdiff_t>(clock_hand_));
      continue;
    }
    Frame& frame = it->second;
    if (frame.pins > 0) {
      ++clock_hand_;
      continue;
    }
    if (frame.referenced) {
      frame.referenced = false;
      ++clock_hand_;
      continue;
    }
    if (frame.dirty) {
      if (util::Status s = WriteBackLocked(id, frame); !s.ok()) return s;
    }
    frames_.erase(it);
    clock_.erase(clock_.begin() + static_cast<std::ptrdiff_t>(clock_hand_));
    ++stats_.evictions;
    *evicted = true;
    return util::Status::Ok();
  }
  return util::Status::Ok();
}

util::Status BufferPool::WriteBackLocked(PageId id, Frame& frame) {
  std::string bytes;
  if (util::Status s = codec_.encode(frame.object.get(), &bytes); !s.ok()) {
    return util::Status(s.code(), "page " + std::to_string(id) +
                                      " encode: " + s.message());
  }
  if (util::Status s = storage_->WritePage(id, bytes); !s.ok()) return s;
  frame.dirty = false;
  ++stats_.writebacks;
  return util::Status::Ok();
}

BufferPoolStats BufferPool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::size_t BufferPool::num_frames() const {
  std::lock_guard<std::mutex> lock(mu_);
  return frames_.size();
}

std::size_t BufferPool::dirty_frames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& [id, frame] : frames_) n += frame.dirty ? 1 : 0;
  return n;
}

std::size_t BufferPool::pinned_frames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& [id, frame] : frames_) n += frame.pins > 0 ? 1 : 0;
  return n;
}

}  // namespace modb::storage
