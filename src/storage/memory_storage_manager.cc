#include "storage/memory_storage_manager.h"

namespace modb::storage {

util::Result<PageId> MemoryStorageManager::AllocatePage() {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.page_allocs;
  if (!free_.empty()) {
    const PageId id = free_.back();
    free_.pop_back();
    freed_[id] = 0;
    return id;
  }
  pages_.emplace_back(std::nullopt);
  freed_.push_back(0);
  return static_cast<PageId>(pages_.size() - 1);
}

util::Status MemoryStorageManager::WritePage(PageId id,
                                             std::string_view payload) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id >= pages_.size() || freed_[id] != 0) {
    return util::Status::InvalidArgument("write of unallocated page " +
                                         std::to_string(id));
  }
  if (payload.size() > options_.page_payload_size) {
    return util::Status::InvalidArgument(
        "payload of " + std::to_string(payload.size()) +
        " bytes exceeds page payload size " +
        std::to_string(options_.page_payload_size));
  }
  pages_[id] = std::string(payload);
  ++stats_.page_writes;
  stats_.bytes_written += payload.size();
  return util::Status::Ok();
}

util::Result<std::string> MemoryStorageManager::ReadPage(PageId id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id >= pages_.size() || !pages_[id].has_value()) {
    return util::Status::NotFound("page " + std::to_string(id));
  }
  ++stats_.page_reads;
  stats_.bytes_read += pages_[id]->size();
  return *pages_[id];
}

util::Status MemoryStorageManager::FreePage(PageId id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id >= pages_.size() || freed_[id] != 0) {
    return util::Status::InvalidArgument("free of unallocated page " +
                                         std::to_string(id));
  }
  pages_[id].reset();
  freed_[id] = 1;
  free_.push_back(id);
  ++stats_.page_frees;
  return util::Status::Ok();
}

util::Status MemoryStorageManager::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.flushes;
  return util::Status::Ok();
}

util::Status MemoryStorageManager::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  pages_.clear();
  freed_.clear();
  free_.clear();
  return util::Status::Ok();
}

std::size_t MemoryStorageManager::num_pages() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pages_.size() - free_.size();
}

StorageStats MemoryStorageManager::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace modb::storage
