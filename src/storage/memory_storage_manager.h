#ifndef MODB_STORAGE_MEMORY_STORAGE_MANAGER_H_
#define MODB_STORAGE_MEMORY_STORAGE_MANAGER_H_

#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "storage/storage_manager.h"

namespace modb::storage {

/// In-process page store: a dense id-indexed vector of payloads with a LIFO
/// free-page list. The default backend of every R*-tree — page operations
/// never fail (short of `bad_alloc`), `Flush` is a no-op, and nothing
/// persists, so behaviour matches the historical heap-owned nodes.
class MemoryStorageManager final : public IStorageManager {
 public:
  struct Options {
    /// Payload cap per page. The default is effectively unbounded: the
    /// memory manager imposes no node-size ceiling on in-RAM trees.
    std::size_t page_payload_size =
        std::numeric_limits<std::size_t>::max();
  };

  MemoryStorageManager() : MemoryStorageManager(Options{}) {}
  explicit MemoryStorageManager(Options options) : options_(options) {}

  util::Result<PageId> AllocatePage() override;
  util::Status WritePage(PageId id, std::string_view payload) override;
  util::Result<std::string> ReadPage(PageId id) override;
  util::Status FreePage(PageId id) override;
  util::Status Flush() override;
  util::Status Reset() override;

  std::size_t page_payload_size() const override {
    return options_.page_payload_size;
  }
  std::size_t num_pages() const override;
  StorageStats stats() const override;
  std::string_view name() const override { return "memory"; }

 private:
  Options options_;
  mutable std::mutex mu_;
  /// Slot `i` holds page id `i`; nullopt = allocated but never written, or
  /// freed (freed ids are also queued on `free_`).
  std::vector<std::optional<std::string>> pages_;
  /// Slot `i` is 1 while page id `i` sits on the free list — distinguishes
  /// "freed" from "allocated but never written" so a double free (which
  /// would hand the same id out twice) is a checked error.
  std::vector<std::uint8_t> freed_;
  std::vector<PageId> free_;
  StorageStats stats_;
};

}  // namespace modb::storage

#endif  // MODB_STORAGE_MEMORY_STORAGE_MANAGER_H_
