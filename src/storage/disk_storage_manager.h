#ifndef MODB_STORAGE_DISK_STORAGE_MANAGER_H_
#define MODB_STORAGE_DISK_STORAGE_MANAGER_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/storage_manager.h"
#include "util/fault_injection.h"
#include "util/status.h"

namespace modb::storage {

/// Bytes of the on-disk record header preceding every page payload:
/// magic (4) + page id (8) + sequence (8) + payload length (4) + masked
/// CRC32C (4). The CRC covers the header fields and the payload, so header
/// rot is as detectable as payload rot.
inline constexpr std::size_t kPageHeaderSize = 28;

/// Smallest supported physical page.
inline constexpr std::size_t kMinPageSize = 512;

/// Disk-backed page store: fixed-size pages in one file, each page framed
/// with a CRC32C header, with a free-page list and an explicit commit
/// point.
///
/// Layout: the file is a sequence of `page_size`-byte slots, written
/// append-only (log-structured) through a `util::WritableFile` — which is
/// what lets `util::FaultInjector` torn-write/failed-sync/fault-window
/// schedules exercise the page path exactly as they do the WAL. A
/// `WritePage` appends a fresh version of the page and repoints the
/// in-memory page table; `Flush` appends a commit record carrying the whole
/// page table + free list and fsyncs — the commit point. Reopening
/// (`truncate = false`) replays the newest valid commit record and
/// compacts: live pages are rewritten densely into a fresh file, so log
/// garbage does not accumulate across generations. Pages written after the
/// last commit are discarded by a reopen, which is exactly the contract the
/// checkpoint protocol wants: index writeback that was not followed by a
/// published checkpoint must not resurrect.
///
/// Read visibility: appended bytes may sit in the writer's buffer until a
/// sync, so pages written since the last sync are served from a bounded
/// tail cache; everything older is read from the file at its recorded
/// offset and CRC-verified.
///
/// Failure model: a failed append poisons the writer (the physical file
/// length is no longer known, so later appends could land at wrong
/// offsets); reads of previously synced pages keep working. A failed sync
/// is returned to the caller and retried by the next sync point.
class DiskStorageManager final : public IStorageManager {
 public:
  struct Options {
    std::size_t page_size = 4096;
    /// Truncate an existing file (default) or replay + compact it.
    bool truncate = true;
    /// Appends synced (and the tail cache dropped) after this many pages
    /// accumulate between explicit `Flush` calls.
    std::size_t sync_watermark_pages = 64;
    /// Test seams; null = real file I/O.
    util::WritableFileFactory file_factory;
    util::FileReader reader;
  };

  /// Opens (or creates) the page file at `path`. Fails when the file
  /// cannot be created, or — reopening — when the existing file's committed
  /// state references an unreadable page.
  static util::Result<std::unique_ptr<DiskStorageManager>> Open(
      const std::string& path, const Options& options);

  ~DiskStorageManager() override;

  util::Result<PageId> AllocatePage() override;
  util::Status WritePage(PageId id, std::string_view payload) override;
  util::Result<std::string> ReadPage(PageId id) override;
  util::Status FreePage(PageId id) override;
  /// The commit point: appends a commit record (page table + free list)
  /// and syncs. State not covered by a successful `Flush` does not survive
  /// a reopen.
  util::Status Flush() override;
  util::Status Reset() override;

  std::size_t page_payload_size() const override {
    return options_.page_size - kPageHeaderSize;
  }
  std::size_t num_pages() const override;
  StorageStats stats() const override;
  std::string_view name() const override { return "disk"; }

  const std::string& path() const { return path_; }
  /// Physical file bytes appended so far (slots, including garbage
  /// versions; reset by `Reset` and by reopen compaction).
  std::uint64_t file_bytes() const;

 private:
  struct PageLocation {
    std::uint64_t offset = 0;   // slot start in the file
    std::uint32_t length = 0;   // payload bytes
  };

  DiskStorageManager(std::string path, Options options);

  /// Opens a fresh (truncated) writer and resets the log state.
  util::Status OpenFreshFile();
  /// Replays the newest valid commit of the existing file, then compacts
  /// into a fresh generation.
  util::Status ReplayAndCompact();
  util::Status AppendRecordLocked(std::uint32_t magic, PageId id,
                                  std::string_view payload,
                                  std::uint64_t* slot_offset);
  util::Status SyncLocked();
  std::string EncodeCommitLocked() const;

  const std::string path_;
  const Options options_;
  util::WritableFileFactory factory_;
  util::FileReader reader_;

  mutable std::mutex mu_;
  std::unique_ptr<util::WritableFile> file_;
  util::Status poison_ = util::Status::Ok();
  std::uint64_t file_size_ = 0;     // append offset (slot-aligned)
  std::uint64_t sequence_ = 0;      // monotonic record sequence
  PageId next_id_ = 0;
  std::unordered_map<PageId, PageLocation> table_;
  std::vector<PageId> free_;
  /// Pages appended since the last sync (not yet visible to the read
  /// handle); bounded by `sync_watermark_pages`.
  std::unordered_map<PageId, std::string> unsynced_;
  StorageStats stats_;
};

}  // namespace modb::storage

#endif  // MODB_STORAGE_DISK_STORAGE_MANAGER_H_
