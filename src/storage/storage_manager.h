#ifndef MODB_STORAGE_STORAGE_MANAGER_H_
#define MODB_STORAGE_STORAGE_MANAGER_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <string_view>

#include "util/fault_injection.h"
#include "util/status.h"

namespace modb::storage {

/// Identifier of one fixed-size page in a storage manager.
using PageId = std::uint64_t;
inline constexpr PageId kInvalidPageId =
    std::numeric_limits<PageId>::max();

/// I/O counters every storage manager keeps (monotonic since construction;
/// `Reset` does not zero them). Reads/writes count *pages*, bytes count the
/// payloads moved — the raw material for the per-index I/O statistics the
/// buffer pool and the R*-tree export to the metrics registry.
struct StorageStats {
  std::uint64_t page_reads = 0;
  std::uint64_t page_writes = 0;
  std::uint64_t page_frees = 0;
  std::uint64_t page_allocs = 0;
  std::uint64_t flushes = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
};

/// Page-granular storage behind the index structures (modeled on the
/// storage-manager split of libspatialindex-style spatial databases): the
/// index addresses nodes by `PageId` and never owns raw memory, so the same
/// R*-tree runs fully in memory (`MemoryStorageManager`, the default) or
/// disk-backed with a bounded buffer pool (`DiskStorageManager`) — the RAM
/// wall moves from "whole index" to "working set".
///
/// Contract:
///  - `AllocatePage` hands out an id whose page is initially absent; a
///    `ReadPage` before the first `WritePage` is NotFound. Freed ids may be
///    recycled (free-page list).
///  - `WritePage` replaces the page's payload; payloads are opaque bytes up
///    to `page_payload_size()`.
///  - `Flush` is the commit point of the disk manager (pages written since
///    the previous flush are not guaranteed to survive a reopen without
///    it); a no-op for the memory manager.
///  - `Reset` drops every page and recycles every id — the bulk-load /
///    clear path of an index that owns its manager exclusively.
///
/// Thread-safety: all methods are internally synchronised (one mutex), so
/// concurrent readers of an index may fault pages in simultaneously.
class IStorageManager {
 public:
  virtual ~IStorageManager() = default;

  virtual util::Result<PageId> AllocatePage() = 0;
  virtual util::Status WritePage(PageId id, std::string_view payload) = 0;
  virtual util::Result<std::string> ReadPage(PageId id) = 0;
  virtual util::Status FreePage(PageId id) = 0;
  virtual util::Status Flush() = 0;
  virtual util::Status Reset() = 0;

  /// Largest payload `WritePage` accepts.
  virtual std::size_t page_payload_size() const = 0;
  /// Live (allocated, not freed) pages.
  virtual std::size_t num_pages() const = 0;
  virtual StorageStats stats() const = 0;
  virtual std::string_view name() const = 0;
};

/// Which backend a `StorageConfig` selects.
enum class StorageKind {
  kMemory,  // pages live in an in-process map; never fails, never persists
  kDisk,    // fixed-size pages in one file, CRC32C-framed, commit on Flush
};

/// Deployment-time description of an index's page store. This is plumbed
/// (not persisted — like `ModDatabaseOptions::index_pool`, it describes the
/// process, not the data) from the database options down to each R*-tree.
struct StorageConfig {
  StorageKind kind = StorageKind::kMemory;
  /// Page file path (disk only). The velocity-partitioned index suffixes
  /// `.band<i>` per band; the database layers place it under their own
  /// directories.
  std::string path;
  /// Physical page size in bytes (disk only; >= 512). Payload capacity is
  /// `page_size - kPageHeaderSize`.
  std::size_t page_size = 4096;
  /// Buffer-pool frame budget for page-backed trees; 0 = unbounded (the
  /// memory manager default — nothing is ever evicted, preserving the
  /// historical all-in-RAM behaviour).
  std::size_t pool_pages = 0;
  /// Truncate an existing page file (default) or replay its committed
  /// state. Index users always truncate: trees are rebuilt from
  /// snapshot/WAL, never reopened.
  bool truncate = true;
  /// Test seams (null = real file I/O). The write side goes through
  /// `util::WritableFile`, so `util::FaultInjector` chaos schedules (torn
  /// writes, failed syncs, fault windows) apply to index pages exactly as
  /// they do to the WAL.
  util::WritableFileFactory file_factory;
  util::FileReader reader;
};

/// Builds the configured manager. Disk managers fail here when the page
/// file cannot be created (bad path, injected open fault).
util::Result<std::unique_ptr<IStorageManager>> OpenStorage(
    const StorageConfig& config);

}  // namespace modb::storage

#endif  // MODB_STORAGE_STORAGE_MANAGER_H_
