#include "storage/storage_manager.h"

#include "storage/disk_storage_manager.h"
#include "storage/memory_storage_manager.h"

namespace modb::storage {

util::Result<std::unique_ptr<IStorageManager>> OpenStorage(
    const StorageConfig& config) {
  switch (config.kind) {
    case StorageKind::kMemory: {
      MemoryStorageManager::Options options;
      return std::unique_ptr<IStorageManager>(
          std::make_unique<MemoryStorageManager>(options));
    }
    case StorageKind::kDisk: {
      if (config.path.empty()) {
        return util::Status::InvalidArgument(
            "disk storage requires a page-file path");
      }
      DiskStorageManager::Options options;
      options.page_size = config.page_size;
      options.truncate = config.truncate;
      options.file_factory = config.file_factory;
      options.reader = config.reader;
      auto disk = DiskStorageManager::Open(config.path, options);
      if (!disk.ok()) return disk.status();
      return std::unique_ptr<IStorageManager>(std::move(*disk));
    }
  }
  return util::Status::InvalidArgument("unknown storage kind");
}

}  // namespace modb::storage
