#include "storage/disk_storage_manager.h"

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "util/crc32c.h"

namespace modb::storage {

namespace {

constexpr std::uint32_t kPageMagic = 0x4d504447;    // "GDPM"
constexpr std::uint32_t kCommitMagic = 0x4d434447;  // "GDCM"

void PutU32(std::string* out, std::uint32_t v) {
  char buf[4];
  buf[0] = static_cast<char>(v & 0xff);
  buf[1] = static_cast<char>((v >> 8) & 0xff);
  buf[2] = static_cast<char>((v >> 16) & 0xff);
  buf[3] = static_cast<char>((v >> 24) & 0xff);
  out->append(buf, 4);
}

void PutU64(std::string* out, std::uint64_t v) {
  PutU32(out, static_cast<std::uint32_t>(v & 0xffffffffu));
  PutU32(out, static_cast<std::uint32_t>(v >> 32));
}

std::uint32_t GetU32(std::string_view data, std::size_t pos) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | static_cast<std::uint8_t>(data[pos + static_cast<std::size_t>(i)]);
  }
  return v;
}

std::uint64_t GetU64(std::string_view data, std::size_t pos) {
  const std::uint64_t lo = GetU32(data, pos);
  const std::uint64_t hi = GetU32(data, pos + 4);
  return (hi << 32) | lo;
}

/// Decoded record header (see `kPageHeaderSize` for the layout).
struct RecordHeader {
  std::uint32_t magic = 0;
  PageId page_id = kInvalidPageId;
  std::uint64_t sequence = 0;
  std::uint32_t payload_len = 0;
  std::uint32_t masked_crc = 0;
};

RecordHeader ParseHeader(std::string_view data, std::size_t pos) {
  RecordHeader h;
  h.magic = GetU32(data, pos);
  h.page_id = GetU64(data, pos + 4);
  h.sequence = GetU64(data, pos + 12);
  h.payload_len = GetU32(data, pos + 20);
  h.masked_crc = GetU32(data, pos + 24);
  return h;
}

std::string EncodeHeader(std::uint32_t magic, PageId id, std::uint64_t seq,
                         std::string_view payload) {
  std::string header;
  header.reserve(kPageHeaderSize);
  PutU32(&header, magic);
  PutU64(&header, id);
  PutU64(&header, seq);
  PutU32(&header, static_cast<std::uint32_t>(payload.size()));
  const std::uint32_t crc =
      util::Crc32cExtend(util::Crc32c(header), payload);
  PutU32(&header, util::Crc32cMask(crc));
  return header;
}

bool HeaderCrcOk(const RecordHeader& h, std::string_view data,
                 std::size_t pos) {
  // Recompute over the first 24 header bytes + payload.
  const std::string_view covered = data.substr(pos, kPageHeaderSize - 4);
  const std::string_view payload =
      data.substr(pos + kPageHeaderSize, h.payload_len);
  const std::uint32_t crc =
      util::Crc32cExtend(util::Crc32c(covered), payload);
  return util::Crc32cMask(crc) == h.masked_crc;
}

std::size_t SlotsFor(std::size_t payload_len, std::size_t page_size) {
  return (kPageHeaderSize + payload_len + page_size - 1) / page_size;
}

}  // namespace

util::Result<std::unique_ptr<DiskStorageManager>> DiskStorageManager::Open(
    const std::string& path, const Options& options) {
  if (options.page_size < kMinPageSize) {
    return util::Status::InvalidArgument(
        "page size " + std::to_string(options.page_size) + " below minimum " +
        std::to_string(kMinPageSize));
  }
  if (path.empty()) {
    return util::Status::InvalidArgument("empty page file path");
  }
  std::error_code ec;
  const auto parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent, ec);

  auto manager = std::unique_ptr<DiskStorageManager>(
      new DiskStorageManager(path, options));
  const bool exists = std::filesystem::exists(path, ec);
  if (options.truncate || !exists) {
    if (util::Status s = manager->OpenFreshFile(); !s.ok()) return s;
  } else {
    if (util::Status s = manager->ReplayAndCompact(); !s.ok()) return s;
  }
  return manager;
}

DiskStorageManager::DiskStorageManager(std::string path, Options options)
    : path_(std::move(path)),
      options_(options),
      factory_(options.file_factory ? options.file_factory
                                    : util::DefaultWritableFileFactory()),
      reader_(options.reader ? options.reader : util::DefaultFileReader()) {}

DiskStorageManager::~DiskStorageManager() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) (void)file_->Close();
}

util::Status DiskStorageManager::OpenFreshFile() {
  auto file = factory_(path_);
  if (!file.ok()) return file.status();
  file_ = std::move(*file);
  poison_ = util::Status::Ok();
  file_size_ = 0;
  unsynced_.clear();
  return util::Status::Ok();
}

util::Status DiskStorageManager::ReplayAndCompact() {
  auto bytes = reader_(path_);
  if (!bytes.ok()) {
    return util::Status(bytes.status().code(),
                        "page file " + path_ + ": " + bytes.status().message());
  }
  const std::string& data = *bytes;
  const std::size_t page_size = options_.page_size;

  // Scan slot by slot for the newest commit record whose frame and payload
  // both validate. Invalid slots (torn tail, rotted frames) are skipped one
  // slot at a time.
  std::uint64_t next_id = 0;
  std::unordered_map<PageId, PageLocation> table;
  std::vector<PageId> free_list;
  bool have_commit = false;

  std::size_t pos = 0;
  while (pos + kPageHeaderSize <= data.size()) {
    const RecordHeader h = ParseHeader(data, pos);
    const bool magic_ok = h.magic == kPageMagic || h.magic == kCommitMagic;
    const std::size_t extent =
        magic_ok ? SlotsFor(h.payload_len, page_size) * page_size : 0;
    if (!magic_ok || pos + extent > data.size() ||
        !HeaderCrcOk(h, data, pos)) {
      pos += page_size;  // skip one slot and resynchronise
      continue;
    }
    if (h.magic == kCommitMagic) {
      // Decode; a commit whose payload does not parse is treated as absent.
      const std::string_view payload =
          std::string_view(data).substr(pos + kPageHeaderSize, h.payload_len);
      std::uint64_t want = 2 * 8;
      if (payload.size() >= want) {
        const std::uint64_t decoded_next = GetU64(payload, 0);
        const std::uint64_t n_entries = GetU64(payload, 8);
        want = 16 + n_entries * 20 + 8;
        if (payload.size() >= want) {
          const std::uint64_t n_free = GetU64(payload, 16 + n_entries * 20);
          if (payload.size() >= want + n_free * 8) {
            std::unordered_map<PageId, PageLocation> t;
            std::vector<PageId> f;
            std::size_t p = 16;
            for (std::uint64_t i = 0; i < n_entries; ++i, p += 20) {
              PageLocation loc;
              const PageId id = GetU64(payload, p);
              loc.offset = GetU64(payload, p + 8);
              loc.length = GetU32(payload, p + 16);
              t[id] = loc;
            }
            p += 8;
            for (std::uint64_t i = 0; i < n_free; ++i, p += 8) {
              f.push_back(GetU64(payload, p));
            }
            next_id = decoded_next;
            table = std::move(t);
            free_list = std::move(f);
            have_commit = true;
          }
        }
      }
    }
    pos += extent;
  }

  if (!have_commit) {
    // Nothing committed — an empty store is the correct recovered state.
    return OpenFreshFile();
  }

  // Extract every committed page's payload from the old image, verifying
  // its frame. A committed page that no longer reads back is data loss the
  // caller must hear about, not skip.
  std::vector<std::pair<PageId, std::string>> pages;
  pages.reserve(table.size());
  for (const auto& [id, loc] : table) {
    if (loc.offset + kPageHeaderSize + loc.length > data.size()) {
      return util::Status::Internal("committed page " + std::to_string(id) +
                                    " past end of " + path_);
    }
    const RecordHeader h = ParseHeader(data, loc.offset);
    if (h.magic != kPageMagic || h.page_id != id ||
        h.payload_len != loc.length || !HeaderCrcOk(h, data, loc.offset)) {
      return util::Status::Internal("committed page " + std::to_string(id) +
                                    " unreadable in " + path_);
    }
    pages.emplace_back(
        id, std::string(data.substr(loc.offset + kPageHeaderSize, loc.length)));
  }
  std::sort(pages.begin(), pages.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  // Compact: rewrite the live pages densely into a fresh generation and
  // commit it.
  if (util::Status s = OpenFreshFile(); !s.ok()) return s;
  std::lock_guard<std::mutex> lock(mu_);
  next_id_ = next_id;
  free_ = std::move(free_list);
  table_.clear();
  for (auto& [id, payload] : pages) {
    std::uint64_t offset = 0;
    if (util::Status s = AppendRecordLocked(kPageMagic, id, payload, &offset);
        !s.ok()) {
      return s;
    }
    table_[id] = PageLocation{offset, static_cast<std::uint32_t>(payload.size())};
    ++stats_.page_writes;
    stats_.bytes_written += payload.size();
  }
  std::uint64_t offset = 0;
  if (util::Status s = AppendRecordLocked(kCommitMagic, 0,
                                          EncodeCommitLocked(), &offset);
      !s.ok()) {
    return s;
  }
  ++stats_.flushes;
  return SyncLocked();
}

util::Status DiskStorageManager::AppendRecordLocked(std::uint32_t magic,
                                                    PageId id,
                                                    std::string_view payload,
                                                    std::uint64_t* slot_offset) {
  if (!poison_.ok()) return poison_;
  const std::size_t slots = SlotsFor(payload.size(), options_.page_size);
  std::string record = EncodeHeader(magic, id, sequence_++, payload);
  record.append(payload);
  record.resize(slots * options_.page_size, '\0');
  if (util::Status s = file_->Append(record); !s.ok()) {
    // The physical file length is unknown after a failed/torn append;
    // every later append could land at a wrong offset. Poison writes.
    poison_ = util::Status(s.code(), "page file " + path_ +
                                         " append: " + s.message());
    return poison_;
  }
  *slot_offset = file_size_;
  file_size_ += record.size();
  return util::Status::Ok();
}

util::Status DiskStorageManager::SyncLocked() {
  if (!poison_.ok()) return poison_;
  if (util::Status s = file_->Sync(); !s.ok()) {
    return util::Status(s.code(),
                        "page file " + path_ + " sync: " + s.message());
  }
  unsynced_.clear();
  return util::Status::Ok();
}

util::Result<PageId> DiskStorageManager::AllocatePage() {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.page_allocs;
  if (!free_.empty()) {
    const PageId id = free_.back();
    free_.pop_back();
    return id;
  }
  return next_id_++;
}

util::Status DiskStorageManager::WritePage(PageId id,
                                           std::string_view payload) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id >= next_id_) {
    return util::Status::InvalidArgument("write of unallocated page " +
                                         std::to_string(id));
  }
  if (payload.size() > page_payload_size()) {
    return util::Status::InvalidArgument(
        "payload of " + std::to_string(payload.size()) +
        " bytes exceeds page payload size " +
        std::to_string(page_payload_size()));
  }
  std::uint64_t offset = 0;
  if (util::Status s = AppendRecordLocked(kPageMagic, id, payload, &offset);
      !s.ok()) {
    return s;
  }
  table_[id] = PageLocation{offset, static_cast<std::uint32_t>(payload.size())};
  unsynced_[id] = std::string(payload);
  ++stats_.page_writes;
  stats_.bytes_written += payload.size();
  if (unsynced_.size() >= options_.sync_watermark_pages) {
    return SyncLocked();
  }
  return util::Status::Ok();
}

util::Result<std::string> DiskStorageManager::ReadPage(PageId id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (auto it = unsynced_.find(id); it != unsynced_.end()) {
    ++stats_.page_reads;
    stats_.bytes_read += it->second.size();
    return it->second;
  }
  const auto it = table_.find(id);
  if (it == table_.end()) {
    return util::Status::NotFound("page " + std::to_string(id));
  }
  const PageLocation loc = it->second;
  std::ifstream in(path_, std::ios::binary);
  if (!in) {
    return util::Status::Internal("page file " + path_ + " unreadable");
  }
  std::string slot(kPageHeaderSize + loc.length, '\0');
  in.seekg(static_cast<std::streamoff>(loc.offset));
  in.read(slot.data(), static_cast<std::streamsize>(slot.size()));
  if (!in) {
    return util::Status::Internal("page " + std::to_string(id) +
                                  " short read in " + path_);
  }
  const RecordHeader h = ParseHeader(slot, 0);
  if (h.magic != kPageMagic || h.page_id != id ||
      h.payload_len != loc.length || !HeaderCrcOk(h, slot, 0)) {
    return util::Status::Internal("page " + std::to_string(id) +
                                  " corrupt at offset " +
                                  std::to_string(loc.offset) + " in " + path_);
  }
  ++stats_.page_reads;
  stats_.bytes_read += loc.length;
  return slot.substr(kPageHeaderSize);
}

util::Status DiskStorageManager::FreePage(PageId id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id >= next_id_) {
    return util::Status::InvalidArgument("free of unallocated page " +
                                         std::to_string(id));
  }
  table_.erase(id);
  unsynced_.erase(id);
  free_.push_back(id);
  ++stats_.page_frees;
  return util::Status::Ok();
}

util::Status DiskStorageManager::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t offset = 0;
  if (util::Status s = AppendRecordLocked(kCommitMagic, 0,
                                          EncodeCommitLocked(), &offset);
      !s.ok()) {
    return s;
  }
  if (util::Status s = SyncLocked(); !s.ok()) return s;
  ++stats_.flushes;
  return util::Status::Ok();
}

std::string DiskStorageManager::EncodeCommitLocked() const {
  // Sorted for deterministic commit bytes (hygiene, not a contract).
  std::vector<std::pair<PageId, PageLocation>> entries(table_.begin(),
                                                       table_.end());
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<PageId> free_sorted = free_;
  std::sort(free_sorted.begin(), free_sorted.end());

  std::string payload;
  payload.reserve(16 + entries.size() * 20 + 8 + free_sorted.size() * 8);
  PutU64(&payload, next_id_);
  PutU64(&payload, entries.size());
  for (const auto& [id, loc] : entries) {
    PutU64(&payload, id);
    PutU64(&payload, loc.offset);
    PutU32(&payload, loc.length);
  }
  PutU64(&payload, free_sorted.size());
  for (PageId id : free_sorted) PutU64(&payload, id);
  return payload;
}

util::Status DiskStorageManager::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) (void)file_->Close();
  table_.clear();
  free_.clear();
  next_id_ = 0;
  sequence_ = 0;
  return OpenFreshFile();
}

std::size_t DiskStorageManager::num_pages() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<std::size_t>(next_id_) - free_.size();
}

StorageStats DiskStorageManager::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::uint64_t DiskStorageManager::file_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return file_size_;
}

}  // namespace modb::storage
